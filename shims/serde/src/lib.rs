//! Offline stand-in for `serde`.
//!
//! The real serde separates data model and format; this workspace only
//! ever serializes into JSON for experiment records, so the shim
//! collapses both: [`Serialize`] converts a value straight into the
//! JSON tree [`Value`], and the `serde_json` shim renders that tree.
//! Types that the real code annotated with `#[derive(Serialize)]`
//! implement the trait by hand (they are few and small).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        // Match serde_json: whole floats print as "1.0".
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON document tree. Object keys keep insertion order so repeated
/// runs serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64 when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v as f64),
            Value::Number(Number::UInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as u64 when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(v)) if *v >= 0 => Some(*v as u64),
            Value::Number(Number::UInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as &str when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice when it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Compact JSON rendering — the same bytes `serde_json::to_string`
/// produces (the real `serde_json::Value` implements `Display` the
/// same way).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (key, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{item}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// JSON string escaping, byte-identical to the `serde_json` shim's
/// renderer (the two paths must agree so `Value::to_string` and
/// `serde_json::to_string` cannot drift apart).
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Conversion into the JSON tree (the shim's whole data model).
pub trait Serialize {
    /// Converts `self` into a JSON [`Value`].
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Number(Number::Int(v as i64))
                } else {
                    Value::Number(Number::UInt(v))
                }
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Sort for output determinism, as BTreeMap-backed objects get.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_keep_integer_identity() {
        assert_eq!(3u64.to_json_value(), Value::Number(Number::Int(3)));
        assert_eq!(
            u64::MAX.to_json_value(),
            Value::Number(Number::UInt(u64::MAX))
        );
        assert_eq!((-3i32).to_json_value(), Value::Number(Number::Int(-3)));
        assert_eq!(Number::Float(2.0).to_string(), "2.0");
        assert_eq!(Number::Float(2.5).to_string(), "2.5");
        assert_eq!(Number::Int(2).to_string(), "2");
    }

    #[test]
    fn containers_serialize_structurally() {
        let v = vec![1i64, 2, 3].to_json_value();
        assert_eq!(v.as_array().unwrap().len(), 3);
        let mut m = BTreeMap::new();
        m.insert("a", 1u32);
        let obj = m.to_json_value();
        assert_eq!(obj.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(None::<u8>.to_json_value(), Value::Null);
        assert_eq!("x".to_json_value(), Value::String("x".into()));
    }

    #[test]
    fn accessors_reject_mismatched_kinds() {
        assert!(Value::Bool(true).as_f64().is_none());
        assert!(Value::Null.get("k").is_none());
        assert_eq!(Value::String("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Number(Number::Float(1.5)).as_f64(), Some(1.5));
        assert!(Value::Number(Number::Int(-1)).as_u64().is_none());
    }
}
