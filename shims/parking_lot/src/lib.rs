//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, recovering the inner data if a
//! previous holder panicked (the workspace treats locks as plain
//! mutual exclusion, never as panic barriers).

use std::sync::{self, TryLockError};

/// Mutual exclusion lock with parking_lot's panic-transparent `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// Reader-writer lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock() must recover from poisoning");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
