//! Offline stand-in for `serde_json`.
//!
//! Renders the `serde` shim's [`Value`] tree as JSON text and provides
//! a `json!` literal macro covering the construction forms used in
//! this workspace (object/array literals with string keys, nested
//! literals, and arbitrary `Serialize` expressions).

use std::fmt;

pub use serde::{Number, Serialize, Value};

/// Serialization error. The shim's renderer is total over [`Value`],
/// so this is only ever constructed by future fallible paths; it
/// exists so call sites can keep using `?`.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Converts any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports `null`/`true`/`false`, nested `{...}`/`[...]` literals
/// with string-literal keys, and any Rust expression whose type
/// implements `Serialize`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_value!($($tt)+) };
}

/// Recursive worker behind [`json!`]. Not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_value {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_items!([] $($tt)+)) };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($tt:tt)+ }) => { $crate::Value::Object($crate::json_entries!([] $($tt)+)) };
    ($expr:expr) => { $crate::to_value(&$expr) };
}

/// Munches array elements for [`json!`]. Not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_items {
    // Terminal: emit accumulated elements.
    ([$($done:expr,)*]) => { vec![$($done,)*] };
    // Nested object / array literals (not valid Rust exprs, so they
    // need their own rules ahead of the generic expression one).
    ([$($done:expr,)*] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_items!([$($done,)* $crate::json_value!({ $($inner)* }),] $($rest)*)
    };
    ([$($done:expr,)*] { $($inner:tt)* }) => {
        $crate::json_items!([$($done,)* $crate::json_value!({ $($inner)* }),])
    };
    ([$($done:expr,)*] [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_items!([$($done,)* $crate::json_value!([ $($inner)* ]),] $($rest)*)
    };
    ([$($done:expr,)*] [ $($inner:tt)* ]) => {
        $crate::json_items!([$($done,)* $crate::json_value!([ $($inner)* ]),])
    };
    ([$($done:expr,)*] null , $($rest:tt)*) => {
        $crate::json_items!([$($done,)* $crate::Value::Null,] $($rest)*)
    };
    ([$($done:expr,)*] null) => {
        $crate::json_items!([$($done,)* $crate::Value::Null,])
    };
    // Plain expressions.
    ([$($done:expr,)*] $value:expr , $($rest:tt)*) => {
        $crate::json_items!([$($done,)* $crate::to_value(&$value),] $($rest)*)
    };
    ([$($done:expr,)*] $value:expr) => {
        $crate::json_items!([$($done,)* $crate::to_value(&$value),])
    };
}

/// Munches `"key": value` pairs for [`json!`]. Not part of the public
/// API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_entries {
    // Terminal: emit accumulated pairs.
    ([$($done:expr,)*]) => { vec![$($done,)*] };
    // Values that are nested literals.
    ([$($done:expr,)*] $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_entries!(
            [$($done,)* (($key).to_string(), $crate::json_value!({ $($inner)* })),] $($rest)*)
    };
    ([$($done:expr,)*] $key:literal : { $($inner:tt)* }) => {
        $crate::json_entries!(
            [$($done,)* (($key).to_string(), $crate::json_value!({ $($inner)* })),])
    };
    ([$($done:expr,)*] $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_entries!(
            [$($done,)* (($key).to_string(), $crate::json_value!([ $($inner)* ])),] $($rest)*)
    };
    ([$($done:expr,)*] $key:literal : [ $($inner:tt)* ]) => {
        $crate::json_entries!(
            [$($done,)* (($key).to_string(), $crate::json_value!([ $($inner)* ])),])
    };
    ([$($done:expr,)*] $key:literal : null , $($rest:tt)*) => {
        $crate::json_entries!(
            [$($done,)* (($key).to_string(), $crate::Value::Null),] $($rest)*)
    };
    ([$($done:expr,)*] $key:literal : null) => {
        $crate::json_entries!([$($done,)* (($key).to_string(), $crate::Value::Null),])
    };
    // Values that are plain expressions.
    ([$($done:expr,)*] $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_entries!(
            [$($done,)* (($key).to_string(), $crate::to_value(&$value)),] $($rest)*)
    };
    ([$($done:expr,)*] $key:literal : $value:expr) => {
        $crate::json_entries!([$($done,)* (($key).to_string(), $crate::to_value(&$value)),])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_trees() {
        let rows = vec![1u32, 2, 3];
        let v = json!({
            "name": "seco",
            "nested": { "k": 10, "list": rows, "flag": true },
            "inline": [1, null, "x"],
            "trailing": 4.5,
        });
        assert_eq!(v.get("name").and_then(Value::as_str), Some("seco"));
        let nested = v.get("nested").unwrap();
        assert_eq!(nested.get("k").and_then(Value::as_u64), Some(10));
        assert_eq!(
            nested.get("list").and_then(Value::as_array).unwrap().len(),
            3
        );
        assert_eq!(
            v.get("inline").and_then(Value::as_array).unwrap()[1],
            Value::Null
        );
        assert_eq!(v.get("trailing").and_then(Value::as_f64), Some(4.5));
    }

    #[test]
    fn compact_and_pretty_rendering() {
        let v = json!({ "a": 1, "b": [true, "q\"x"] });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,"q\"x"]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    \"q\\\"x\"\n  ]\n}"
        );
    }

    #[test]
    fn expression_form_serializes_collections() {
        let rows = vec![json!({ "n": 1 }), json!({ "n": 2 })];
        let v = json!(rows);
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(to_string(&json!([])).unwrap(), "[]");
        assert_eq!(to_string(&json!({})).unwrap(), "{}");
    }

    #[test]
    fn control_characters_escape() {
        let v = json!("line\nbreak\tand \u{1} ctrl");
        assert_eq!(
            to_string(&v).unwrap(),
            "\"line\\nbreak\\tand \\u0001 ctrl\""
        );
    }
}
