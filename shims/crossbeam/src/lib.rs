//! Offline stand-in for `crossbeam`.
//!
//! The engine's pipelined executor only needs bounded channels with
//! blocking send, iterator-style receive, and `Clone` on both halves;
//! `std::sync::mpsc::sync_channel` provides the transport and a
//! mutex shares the receiving half between clones. (Crossbeam's real
//! channels are lock-free MPMC — irrelevant here because every plan
//! arc has one producer and one consumer.)

/// Channel types and constructors (the `crossbeam::channel` module).
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Sender<T> {
        /// Blocks until the value is queued; errors when the receiver
        /// hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of a bounded channel. Clones share one queue:
    /// each message is delivered to exactly one clone.
    #[derive(Debug, Clone)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors when all senders hung up.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .try_recv()
        }

        /// Blocking iterator that ends when all senders hang up.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Borrowing iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning iterator over received values.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.iter()
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_receive_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        handle.join().unwrap();
    }

    #[test]
    fn hung_up_receiver_fails_send() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn cloned_senders_all_feed_the_receiver() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let mut got: Vec<i32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn cloned_receivers_share_one_queue() {
        let (tx, rx) = bounded(4);
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!((a, b), (1, 2));
        assert!(rx.recv().is_err());
    }
}
