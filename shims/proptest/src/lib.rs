//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the `proptest!` test macro, `prop_assert!` /
//! `prop_assert_eq!`, numeric range strategies, and string strategies
//! written as regex literals (a generation-oriented subset: literals,
//! `.`, character classes, alternation groups, and `{m,n}` / `?` /
//! `*` / `+` repetition).
//!
//! Unlike real proptest there is no shrinking: cases are generated
//! from a seed derived from the test name, so a failure replays
//! identically on every run and prints the generating inputs.

use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs.
pub const CASES: usize = 128;

/// Deterministic generator (splitmix64) used by all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; the `proptest!` macro derives the seed
    /// from the property's name so runs are reproducible.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Debiased multiply-shift (Lemire): reject the low product
        // when it falls in the biased remainder zone.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = (self.next_u64() as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives the per-property seed from its name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A source of generated values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let alternatives = regex::parse(self);
        regex::sample_alternation(&alternatives, rng)
    }
}

/// Generation-oriented regex subset used by string strategies.
mod regex {
    use super::TestRng;

    /// Upper bound substituted for unbounded `*` / `+` repetition.
    const UNBOUNDED_CAP: usize = 8;

    pub enum Node {
        Lit(char),
        /// `.` — an arbitrary character.
        Any,
        /// `[...]` — inclusive ranges; single chars are (c, c).
        Class(Vec<(char, char)>),
        /// `(a|b|...)` — each alternative is a sequence.
        Group(Vec<Vec<(Node, Repeat)>>),
    }

    pub struct Repeat {
        pub min: usize,
        pub max: usize,
    }

    /// Parses a whole pattern into its top-level alternatives.
    pub fn parse(pattern: &str) -> Vec<Vec<(Node, Repeat)>> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let alts = parse_alternation(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "unsupported regex strategy: {pattern:?}"
        );
        alts
    }

    fn parse_alternation(chars: &[char], pos: &mut usize) -> Vec<Vec<(Node, Repeat)>> {
        let mut alts = vec![parse_sequence(chars, pos)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alts.push(parse_sequence(chars, pos));
        }
        alts
    }

    fn parse_sequence(chars: &[char], pos: &mut usize) -> Vec<(Node, Repeat)> {
        let mut seq = Vec::new();
        while *pos < chars.len() {
            let node = match chars[*pos] {
                ')' | '|' => break,
                '(' => {
                    *pos += 1;
                    let alts = parse_alternation(chars, pos);
                    assert!(
                        *pos < chars.len() && chars[*pos] == ')',
                        "unclosed group in regex strategy"
                    );
                    *pos += 1;
                    Node::Group(alts)
                }
                '[' => {
                    *pos += 1;
                    Node::Class(parse_class(chars, pos))
                }
                '.' => {
                    *pos += 1;
                    Node::Any
                }
                '\\' => {
                    *pos += 1;
                    let c = chars[*pos];
                    *pos += 1;
                    Node::Lit(unescape(c))
                }
                c => {
                    *pos += 1;
                    Node::Lit(c)
                }
            };
            let rep = parse_repeat(chars, pos);
            seq.push((node, rep));
        }
        seq
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        while *pos < chars.len() && chars[*pos] != ']' {
            let lo = if chars[*pos] == '\\' {
                *pos += 1;
                let c = unescape(chars[*pos]);
                *pos += 1;
                c
            } else {
                let c = chars[*pos];
                *pos += 1;
                c
            };
            if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                *pos += 1;
                let hi = chars[*pos];
                *pos += 1;
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(*pos < chars.len(), "unclosed class in regex strategy");
        *pos += 1; // consume ']'
        ranges
    }

    fn parse_repeat(chars: &[char], pos: &mut usize) -> Repeat {
        if *pos >= chars.len() {
            return Repeat { min: 1, max: 1 };
        }
        match chars[*pos] {
            '?' => {
                *pos += 1;
                Repeat { min: 0, max: 1 }
            }
            '*' => {
                *pos += 1;
                Repeat {
                    min: 0,
                    max: UNBOUNDED_CAP,
                }
            }
            '+' => {
                *pos += 1;
                Repeat {
                    min: 1,
                    max: UNBOUNDED_CAP,
                }
            }
            '{' => {
                *pos += 1;
                let mut min = 0;
                while chars[*pos].is_ascii_digit() {
                    min = min * 10 + chars[*pos].to_digit(10).unwrap() as usize;
                    *pos += 1;
                }
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut max = 0;
                    while chars[*pos].is_ascii_digit() {
                        max = max * 10 + chars[*pos].to_digit(10).unwrap() as usize;
                        *pos += 1;
                    }
                    max
                } else {
                    min
                };
                assert!(chars[*pos] == '}', "malformed repetition in regex strategy");
                *pos += 1;
                Repeat { min, max }
            }
            _ => Repeat { min: 1, max: 1 },
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    pub fn sample_alternation(alts: &[Vec<(Node, Repeat)>], rng: &mut TestRng) -> String {
        let mut out = String::new();
        let pick = rng.below(alts.len() as u64) as usize;
        for (node, rep) in &alts[pick] {
            let count = rng.usize_in(rep.min, rep.max);
            for _ in 0..count {
                sample_node(node, rng, &mut out);
            }
        }
        out
    }

    fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Any => out.push(arbitrary_char(rng)),
            Node::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = (hi as u32) - (lo as u32);
                let code = lo as u32 + rng.below(u64::from(span) + 1) as u32;
                out.push(char::from_u32(code).unwrap_or(lo));
            }
            Node::Group(alts) => out.push_str(&sample_alternation(alts, rng)),
        }
    }

    /// `.` draws mostly printable ASCII with occasional whitespace and
    /// non-ASCII characters to exercise unicode handling.
    fn arbitrary_char(rng: &mut TestRng) -> char {
        const RARE: [char; 8] = ['\t', 'é', 'λ', '中', '\u{7f}', '€', '"', '\\'];
        match rng.below(10) {
            0 => RARE[rng.below(RARE.len() as u64) as usize],
            _ => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap(),
        }
    }
}

/// Runs one property's cases; on a panic, reports which generated
/// inputs triggered it before propagating.
pub fn report_failure(name: &str, case_index: usize, inputs: &str) {
    eprintln!("proptest shim: property `{name}` failed on case {case_index} with {inputs}");
}

/// Defines deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// that runs [`CASES`] generated cases. Seeds derive from the property
/// name, so failures reproduce exactly.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for case_index in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let case_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    move || $body,
                ));
                if let Err(panic) = outcome {
                    $crate::report_failure(stringify!($name), case_index, &case_inputs);
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )+};
}

/// Asserts inside a property body (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Asserts equality inside a property body (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Asserts inequality inside a property body (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

/// The conventional glob import surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (1usize..200).generate(&mut rng);
            assert!((1..200).contains(&v));
            let f = (0.1f64..10.0).generate(&mut rng);
            assert!((0.1..10.0).contains(&f));
            let m = (1u8..=12).generate(&mut rng);
            assert!((1..=12).contains(&m));
            let i = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn regex_strategies_match_their_own_shape() {
        let mut rng = TestRng::new(11);
        for _ in 0..500 {
            let s = "[abc]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8 && s.chars().all(|c| "abc".contains(c)));
            let p = "[abc%_]{0,6}".generate(&mut rng);
            assert!(p.len() <= 6 && p.chars().all(|c| "abc%_".contains(c)));
            let any = ".{0,120}".generate(&mut rng);
            assert!(any.chars().count() <= 120);
        }
    }

    #[test]
    fn alternation_groups_emit_only_listed_tokens() {
        let mut rng = TestRng::new(13);
        for _ in 0..200 {
            let s = r#"(on|off|[0-9]{1,2}|"[a-z]{0,2}")"#.generate(&mut rng);
            let ok = s == "on"
                || s == "off"
                || (!s.is_empty() && s.len() <= 2 && s.chars().all(|c| c.is_ascii_digit()))
                || (s.starts_with('"')
                    && s.ends_with('"')
                    && s.len() >= 2
                    && s[1..s.len() - 1].chars().all(|c| c.is_ascii_lowercase()));
            assert!(ok, "unexpected sample {s:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = TestRng::new(seed_from_name("prop"));
        let mut b = TestRng::new(seed_from_name("prop"));
        for _ in 0..100 {
            assert_eq!(".{0,40}".generate(&mut a), ".{0,40}".generate(&mut b));
            assert_eq!(
                (0usize..1000).generate(&mut a),
                (0usize..1000).generate(&mut b)
            );
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_runs_cases(x in 0usize..50, s in "[ab]{0,3}") {
            prop_assert!(x < 50);
            prop_assert!(s.len() <= 3);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
