//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] / [`Rng::gen_bool`] over primitive numeric
//! ranges. The generator is splitmix64 — statistically solid for the
//! simulation workloads here and fully deterministic from the seed,
//! which is all the synthetic-service substrate requires.

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value in the given range. Panics on empty ranges, like
    /// the real crate.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn next_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Multiply-shift bounded sampling (Lemire); bias is negligible for
    // the domain sizes used in the simulations and the method is
    // branch-free and deterministic.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + next_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + next_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator, standing in for rand's
    /// `StdRng`. Not cryptographic — neither is the original's use
    /// here (simulation only).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..=30);
            assert!((3..=30).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!(
                (800..1200).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }
}
