//! Offline stand-in for the `bytes` crate.
//!
//! Backs [`BytesMut`] with a plain `Vec<u8>` and provides the
//! big-endian `put_*` writers of the real crate's `BufMut` that the
//! wire encoder uses. Only the accounting path needs these types, so
//! zero-copy reference counting is intentionally not reproduced.

use std::ops::Deref;

/// Immutable byte buffer (frozen form of [`BytesMut`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Big-endian append-only writer interface (the used subset of the
/// real `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian i32.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_big_endian_and_sized() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_i64(-1);
        b.put_f64(1.5);
        b.put_i32(-2);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 8 + 4 + 2);
        assert_eq!(&frozen[0..3], &[1, 2, 3]);
        assert_eq!(&frozen[7..15], &[0xFF; 8]);
    }

    #[test]
    fn freeze_preserves_equality() {
        let mut a = BytesMut::default();
        let mut b = BytesMut::with_capacity(4);
        a.put_u32(42);
        b.put_u32(42);
        assert_eq!(a.clone().freeze(), b.freeze());
        assert!(!a.is_empty());
        assert!(Bytes::default().is_empty());
    }
}
