//! Offline stand-in for `criterion`.
//!
//! Keeps the registration surface (`criterion_group!`,
//! `criterion_main!`, groups, `bench_with_input`, `BenchmarkId`) so
//! the bench targets compile and run, but replaces the statistical
//! machinery with a plain mean-of-N wall-clock measurement printed to
//! stdout. Good enough to eyeball relative costs; not a substitute
//! for real criterion numbers.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Runs the routine once to warm up, then `samples` timed
    /// iterations, recording the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        let total = start.elapsed();
        let mean_ns = total.as_nanos() as f64 / self.samples.max(1) as f64;
        println!(
            "    mean {:>12.1} ns over {} iterations",
            mean_ns, self.samples
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("  {}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: self.samples,
        };
        f(&mut bencher);
        self
    }

    /// Registers and immediately runs a parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  {}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: self.samples,
        };
        f(&mut bencher, input);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("  {id}");
        let mut bencher = Bencher { samples: 10 };
        f(&mut bencher);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more group-runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("plain", |b| b.iter(|| 1 + 1));
            group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &n| b.iter(|| n * 2));
            group.finish();
        }
        c.bench_function("standalone", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 1);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("bnb", 4).to_string(), "bnb/4");
        assert_eq!(
            BenchmarkId::from_parameter("ms-rect").to_string(),
            "ms-rect"
        );
    }

    criterion_group!(sample_group, noop_bench);
    criterion_main!(sample_group);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn generated_main_is_callable() {
        main();
    }
}
