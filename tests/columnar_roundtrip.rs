//! Seeded property test for the columnar chunk plane: decomposing any
//! chunk of rows into typed columns and materializing it back must be
//! bit-exact, including the awkward corners of IEEE-754 (`NaN`,
//! `-0.0`, infinities), explicit nulls, repeating groups, and columns
//! that degrade to `Mixed` storage because the rows disagree on a
//! type. Bit-exactness is asserted on the `Debug` render (which
//! distinguishes `-0.0` from `0.0`) plus raw `to_bits` comparison for
//! float cells.

use search_computing::model::tuple::{FieldSlot, GroupTuple, Tuple};
use search_computing::model::{ChunkColumns, Date, Value};
use search_computing::services::invocation::ChunkBody;

/// Deterministic 64-bit LCG (Knuth MMIX constants); no external crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A random value of one flavor. `flavor` pins the column type so a
/// whole column can stay typed; `255` means "any", which forces the
/// column into `Mixed` storage most of the time.
fn random_value(rng: &mut Lcg, flavor: u8) -> Value {
    let flavor = if flavor == 255 {
        rng.below(6) as u8
    } else {
        flavor
    };
    if rng.chance(20) {
        return Value::Null;
    }
    match flavor {
        0 => Value::Int(rng.next() as i64 % 1000 - 500),
        1 => match rng.below(5) {
            0 => Value::Float(-0.0),
            1 => Value::Float(f64::NAN),
            2 => Value::Float(f64::INFINITY),
            3 => Value::Float(f64::NEG_INFINITY),
            _ => Value::Float((rng.next() as i64 % 1000) as f64 / 8.0),
        },
        2 => Value::Bool(rng.chance(50)),
        3 => Value::Text(format!("t-{}", rng.below(40))),
        4 => Value::Date(Date::new(
            2000 + rng.below(20) as i32,
            1 + rng.below(12) as u8,
            1 + rng.below(28) as u8,
        )),
        _ => Value::Null,
    }
}

/// A random chunk: every row has the same slot layout (the columnar
/// plane's precondition), with a mix of typed, mixed, and group slots.
fn random_chunk(rng: &mut Lcg, rows: usize, slots: usize) -> Vec<Tuple> {
    // Per-slot layout decided once per chunk.
    let layout: Vec<(bool, u8)> = (0..slots)
        .map(|_| {
            let group = rng.chance(20);
            let flavor = if rng.chance(25) {
                255 // mixed column
            } else {
                rng.below(5) as u8
            };
            (group, flavor)
        })
        .collect();
    (0..rows)
        .map(|i| Tuple {
            fields: layout
                .iter()
                .map(|&(group, flavor)| {
                    if group {
                        FieldSlot::Group(
                            (0..rng.below(3))
                                .map(|_| {
                                    GroupTuple::new(vec![
                                        random_value(rng, 3),
                                        random_value(rng, 0),
                                    ])
                                })
                                .collect(),
                        )
                    } else {
                        FieldSlot::Atomic(random_value(rng, flavor))
                    }
                })
                .collect(),
            score: 1.0 - i as f64 / rows.max(1) as f64,
            source_rank: i,
        })
        .collect()
}

/// Bit-exact render of a row set. `Debug` on `f64` distinguishes
/// `-0.0`, `NaN`, and infinities, so equal renders mean equal bits for
/// every case the generator produces.
fn render(rows: &[Tuple]) -> String {
    rows.iter()
        .map(|t| format!("{:?}|{}|{};", t, t.score.to_bits(), t.source_rank))
        .collect()
}

#[test]
fn columnar_round_trip_is_bit_exact_for_seeded_random_chunks() {
    let mut rng = Lcg(0x5ec0_c0de);
    let mut columnar_chunks = 0usize;
    for trial in 0..200 {
        let rows = rng.below(18) as usize;
        let slots = 1 + rng.below(5) as usize;
        let chunk = random_chunk(&mut rng, rows, slots);

        // Direct decomposition round trip.
        let cols = ChunkColumns::from_tuples(&chunk)
            .unwrap_or_else(|| panic!("uniform layout must columnarize (trial {trial})"));
        assert_eq!(cols.len(), chunk.len());
        assert_eq!(render(&cols.materialize_rows()), render(&chunk));

        // Per-cell spot checks through the typed handles: null masks
        // and value_at must agree with the original rows, bit for bit.
        for f in 0..slots {
            if let Some(col) = cols.column(f) {
                for (i, t) in chunk.iter().enumerate() {
                    let FieldSlot::Atomic(original) = &t.fields[f] else {
                        panic!("column() must be None for group slots");
                    };
                    assert_eq!(col.is_null(i), original.is_null());
                    match (&col.value_at(i), original) {
                        (Value::Float(a), Value::Float(b)) => {
                            assert_eq!(a.to_bits(), b.to_bits(), "trial {trial} slot {f} row {i}")
                        }
                        (a, b) => {
                            assert_eq!(format!("{a:?}"), format!("{b:?}"))
                        }
                    }
                }
            }
        }

        // Chunk-body round trip: the lazily materialized row view of a
        // columnar body must reproduce the input rows exactly.
        let body = ChunkBody::new(chunk.clone(), rng.chance(50));
        if body.is_columnar() {
            columnar_chunks += 1;
            assert!(
                body.is_empty() || !body.rows_ready(),
                "row view must be lazy until first use (trial {trial})"
            );
        }
        let view: Vec<Tuple> = body.tuples().iter().map(|t| (**t).clone()).collect();
        assert_eq!(render(&view), render(&chunk));
        assert_eq!(body.len(), chunk.len());
    }
    assert!(
        columnar_chunks > 100,
        "the generator must actually exercise the columnar plane ({columnar_chunks})"
    );
}

/// Rows that disagree on slot count cannot be columnarized; the body
/// must fall back to row storage and still serve the same tuples.
#[test]
fn ragged_chunks_fall_back_to_rows() {
    let a = Tuple {
        fields: vec![FieldSlot::Atomic(Value::Int(1))],
        score: 0.9,
        source_rank: 0,
    };
    let b = Tuple {
        fields: vec![
            FieldSlot::Atomic(Value::Int(2)),
            FieldSlot::Atomic(Value::text("x")),
        ],
        score: 0.8,
        source_rank: 1,
    };
    assert!(ChunkColumns::from_tuples(&[a.clone(), b.clone()]).is_none());
    let body = ChunkBody::new(vec![a.clone(), b.clone()], false);
    assert!(!body.is_columnar());
    assert!(body.rows_ready());
    assert_eq!(render(&[a, b]), {
        let rows: Vec<Tuple> = body.tuples().iter().map(|t| (**t).clone()).collect();
        render(&rows)
    });
}
