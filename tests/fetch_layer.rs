//! End-to-end tests of the fetch layer: singleflight coalescing under
//! real thread races, the cache/breaker interaction, and speculative
//! prefetch staying invisible in the results.

use std::sync::{Arc, Barrier};

use search_computing::plan::{PlanNode, QueryPlan};
use search_computing::prelude::*;
use search_computing::services::synthetic::{DomainMap, SyntheticService};
use search_computing::services::{
    CachingService, CallRecorder, Request, ServiceError, VirtualClock,
};
use seco_bench::chain_scenario;
use seco_model::{Adornment, AttributeDef, DataType, ServiceKind, ServiceSchema, ServiceStats};

fn service(faults: FaultProfile) -> Arc<SyntheticService> {
    let schema = ServiceSchema::new(
        "F1",
        vec![
            AttributeDef::atomic("K", DataType::Text, Adornment::Input),
            AttributeDef::atomic("V", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
        ],
    )
    .unwrap();
    let iface = ServiceInterface::new(
        "F1",
        "F",
        schema,
        ServiceKind::Search,
        ServiceStats::new(20.0, 10, 40.0, 1.0).unwrap(),
        ScoreDecay::Linear,
    )
    .unwrap();
    Arc::new(SyntheticService::new(iface, DomainMap::new(), 11).with_fault_profile(faults))
}

fn req(k: &str) -> Request {
    Request::unbound().bind(AttributePath::atomic("K"), Value::text(k))
}

/// Bumps every service node to a multi-chunk budget so the prefetcher
/// has something to run ahead of.
fn widen_fetches(plan: &mut QueryPlan) {
    for id in plan.node_ids().collect::<Vec<_>>() {
        if let Ok(PlanNode::Service(s)) = plan.node_mut(id) {
            s.fetches = 3;
        }
    }
}

#[test]
fn racing_threads_coalesce_to_one_underlying_call() {
    let inner = service(FaultProfile::none());
    let cache = Arc::new(CachingService::sharded(inner.clone(), 64, 8));
    let k = 8;
    let barrier = Barrier::new(k);
    std::thread::scope(|scope| {
        for _ in 0..k {
            let cache = &cache;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                cache.fetch(&req("contested")).unwrap();
            });
        }
    });
    assert_eq!(
        inner.calls_served(),
        1,
        "singleflight must admit exactly one call to the provider"
    );
    assert_eq!(cache.misses(), 1);
    assert_eq!(
        cache.hits() + cache.coalesced(),
        k as u64 - 1,
        "every racer either joined the flight or hit the fresh entry"
    );
}

#[test]
fn cache_hit_after_breaker_opens_issues_no_service_call() {
    // Healthy for the first three calls, hard-down forever after.
    let faults = FaultProfile {
        outage: Some((3, u64::MAX)),
        ..FaultProfile::none()
    };
    let rec = CallRecorder::new(service(faults));
    let client = ServiceClient::for_recorded(rec.clone())
        .retries(0)
        .breaker(2, 1_000_000.0)
        .virtual_clock(VirtualClock::new())
        .build();
    let cache = CachingService::new(Arc::new(client), 64).with_recorder(rec.clone());

    // Warm three keys while the provider is healthy.
    for k in ["warm-a", "warm-b", "warm-c"] {
        cache.fetch(&req(k)).unwrap();
    }
    assert_eq!(rec.stats().calls, 3);

    // Two cold keys reach the down provider and trip the breaker.
    cache.fetch(&req("down-a")).unwrap_err();
    cache.fetch(&req("down-b")).unwrap_err();
    assert_eq!(rec.stats().breaker_trips, 1);
    let calls_before = rec.stats().calls;

    // A cold key now short-circuits without touching the provider…
    let err = cache.fetch(&req("cold")).unwrap_err();
    assert!(matches!(err, ServiceError::CircuitOpen { .. }));
    assert_eq!(rec.stats().short_circuits, 1);
    assert_eq!(rec.stats().calls, calls_before);

    // …but warm keys still answer from the cache, above the breaker,
    // costing no service call at all.
    let resp = cache.fetch(&req("warm-a")).unwrap();
    assert_eq!(resp.elapsed_ms, 0.0, "hits are free");
    assert_eq!(rec.stats().calls, calls_before);
    assert_eq!(rec.stats().cache_hits, 1);
}

#[test]
fn prefetch_is_invisible_in_deterministic_results() {
    let (reg, query) = chain_scenario(3, 7);
    let best = optimize(&query, &reg, CostMetric::RequestCount).unwrap();
    let mut plan = best.plan;
    widen_fetches(&mut plan);
    let run = |fetch: FetchOptions| {
        reg.reset_stats();
        execute_plan(
            &plan,
            &reg,
            EngineConfig {
                fetch,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let off = run(FetchOptions::cached(4));
    let on = run(FetchOptions::cached(4).with_prefetch());
    assert_eq!(
        format!("{:?}", off.results),
        format!("{:?}", on.results),
        "identical seeds must yield byte-identical results, prefetch on or off"
    );
    assert!(
        reg.total_stats().prefetches > 0,
        "speculation must actually have engaged"
    );
}

#[test]
fn parallel_prefetch_agrees_with_deterministic_results() {
    let (reg, query) = chain_scenario(3, 7);
    let best = optimize(&query, &reg, CostMetric::RequestCount).unwrap();
    let mut plan = best.plan;
    widen_fetches(&mut plan);
    let det = execute_plan(
        &plan,
        &reg,
        EngineConfig {
            fetch: FetchOptions::cached(4),
            ..Default::default()
        },
    )
    .unwrap();
    let par = execute_parallel(
        &plan,
        &reg,
        EngineConfig {
            fetch: FetchOptions::cached(4).with_prefetch(),
            ..Default::default()
        },
    )
    .unwrap();
    let sorted = |v: &[CompositeTuple]| {
        let mut s: Vec<String> = v.iter().map(|t| format!("{t:?}")).collect();
        s.sort();
        s
    };
    assert_eq!(
        sorted(&det.results),
        sorted(&par),
        "the pipelined executor with background prefetch must produce the same set"
    );
}
