//! Two §3.1 features exercised end to end:
//!
//! * **renaming** — "the same service can occur several times with a
//!   different renaming for each different use";
//! * **opaque rankings** (footnote 3) — position-derived scores keep
//!   the whole pipeline working when a service publishes no scores.

use std::sync::Arc;

use search_computing::model::{
    Adornment, AttributeDef, AttributePath, Comparator, DataType, ScoreDecay, ServiceInterface,
    ServiceKind, ServiceSchema, ServiceStats, Value,
};
use search_computing::prelude::*;
use search_computing::services::opaque::{OpaqueRanking, PositionScored};
use search_computing::services::synthetic::{DomainMap, SyntheticService, ValueDomain};

fn movie_like_interface(name: &str) -> ServiceInterface {
    let schema = ServiceSchema::new(
        name,
        vec![
            AttributeDef::atomic("Genre", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Title", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Director", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
        ],
    )
    .unwrap();
    ServiceInterface::new(
        name,
        "Pictures",
        schema,
        ServiceKind::Search,
        ServiceStats::new(30.0, 10, 50.0, 1.0).unwrap(),
        ScoreDecay::Linear,
    )
    .unwrap()
}

fn registry() -> ServiceRegistry {
    let mut reg = ServiceRegistry::new();
    let directors = ValueDomain::new("director", 6);
    reg.register_service(Arc::new(SyntheticService::new(
        movie_like_interface("Pictures1"),
        DomainMap::new().with(AttributePath::atomic("Director"), directors),
        1,
    )))
    .unwrap();
    reg
}

#[test]
fn the_same_service_joins_with_itself_under_two_renamings() {
    // "Find a comedy and a drama by the same director" — one service,
    // two atoms.
    let reg = registry();
    let query = QueryBuilder::new()
        .atom("C", "Pictures1")
        .atom("D", "Pictures1")
        .select_const("C", "Genre", Comparator::Eq, Value::text("comedy"))
        .select_const("D", "Genre", Comparator::Eq, Value::text("drama"))
        .join("C", "Director", Comparator::Eq, "D", "Director")
        .k(5)
        .build()
        .unwrap();
    let oracle = evaluate_oracle(&query, &reg).unwrap();
    assert!(
        !oracle.is_empty(),
        "the shared director domain guarantees matches"
    );
    // Both components come from the same interface but different
    // binding sets.
    for a in &oracle {
        let c = a.component("C").unwrap();
        let d = a.component("D").unwrap();
        assert_eq!(c.atomic_at(0), &Value::text("comedy"));
        assert_eq!(d.atomic_at(0), &Value::text("drama"));
        assert_eq!(c.atomic_at(2), d.atomic_at(2), "directors must match");
    }

    // The optimizer handles the self-join too.
    let best = optimize(&query, &reg, CostMetric::RequestCount).unwrap();
    let outcome = execute_plan(&best.plan, &reg, EngineConfig::default()).unwrap();
    for combo in &outcome.results {
        assert!(oracle.iter().any(|o| {
            o.component("C") == combo.component("C") && o.component("D") == combo.component("D")
        }));
    }
}

#[test]
fn opaque_services_work_once_position_scored() {
    // The same pipeline with the service's scores hidden and re-derived
    // from positions.
    let directors = ValueDomain::new("director", 6);
    let raw = Arc::new(SyntheticService::new(
        movie_like_interface("Pictures1"),
        DomainMap::new().with(AttributePath::atomic("Director"), directors),
        1,
    ));
    let opaque: Arc<dyn search_computing::services::Service> = Arc::new(OpaqueRanking::new(raw));
    let scored = Arc::new(PositionScored::new(opaque));
    let mut reg = ServiceRegistry::new();
    reg.register_service(scored).unwrap();

    let query = QueryBuilder::new()
        .atom("P", "Pictures1")
        .select_const("P", "Genre", Comparator::Eq, Value::text("noir"))
        .k(5)
        .build()
        .unwrap();
    let answers = evaluate_oracle(&query, &reg).unwrap();
    assert_eq!(answers.len(), 30);
    // Scores are strictly informative again: non-increasing in rank
    // order, spanning (0, 1].
    let scores: Vec<f64> = answers.iter().map(|a| a.components[0].score).collect();
    for w in scores.windows(2) {
        assert!(w[0] >= w[1] - 1e-12);
    }
    assert!(
        scores[0] > scores[scores.len() - 1],
        "position scoring must discriminate"
    );
}
