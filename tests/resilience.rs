//! End-to-end tests of the resilience layer: deterministic retry
//! schedules, breaker short-circuits on the virtual clock, and graceful
//! degradation of pipe and parallel joins.

use std::sync::Arc;

use search_computing::prelude::*;
use search_computing::query::builder::running_example;
use search_computing::services::domains::{entertainment, travel};
use search_computing::services::synthetic::{DomainMap, SyntheticService};
use search_computing::services::{Request, VirtualClock};

#[test]
fn identical_seeds_reproduce_identical_resilient_runs() {
    let q = running_example();
    let clean = entertainment::build_registry(1).unwrap();
    let best = optimize(&q, &clean, CostMetric::RequestCount).unwrap();
    let opts = EngineConfig {
        failure_mode: FailureMode::Degrade,
        client: Some(ClientConfig {
            deadline_ms: Some(200.0),
            retries: 3,
            seed: 42,
            ..Default::default()
        }),
        ..Default::default()
    };
    let run = || {
        let reg = entertainment::build_registry_with_faults(1, FaultProfile::flaky().with_seed(7))
            .unwrap();
        let out = execute_plan(&best.plan, &reg, opts).unwrap();
        (
            out.results,
            out.degraded,
            out.critical_ms,
            out.total_calls,
            reg.total_stats(),
        )
    };
    let (res_a, deg_a, crit_a, calls_a, stats_a) = run();
    let (res_b, deg_b, crit_b, calls_b, stats_b) = run();
    assert_eq!(res_a, res_b, "same seeds must give identical answers");
    assert_eq!(deg_a, deg_b);
    assert_eq!(
        crit_a, crit_b,
        "same seeds must give identical virtual schedules"
    );
    assert_eq!(calls_a, calls_b);
    assert_eq!(
        (
            stats_a.calls,
            stats_a.failures,
            stats_a.retries,
            stats_a.timeouts
        ),
        (
            stats_b.calls,
            stats_b.failures,
            stats_b.retries,
            stats_b.timeouts
        ),
    );
    assert_eq!(
        (stats_a.breaker_trips, stats_a.short_circuits),
        (stats_b.breaker_trips, stats_b.short_circuits),
    );
    // The flaky profile really exercised the middleware.
    assert!(
        stats_a.retries > 0,
        "expected retries under the flaky profile"
    );
    assert!(
        stats_a.timeouts > 0,
        "expected deadline timeouts under the flaky profile"
    );
}

fn tiny_interface() -> ServiceInterface {
    use search_computing::model::{AttributeDef, DataType, ServiceSchema, ServiceStats};
    let schema = ServiceSchema::new(
        "Tiny1",
        vec![
            AttributeDef::atomic("K", DataType::Text, Adornment::Input),
            AttributeDef::atomic("V", DataType::Text, Adornment::Output),
        ],
    )
    .unwrap();
    ServiceInterface::new(
        "Tiny1",
        "Tiny",
        schema,
        ServiceKind::Exact { chunked: true },
        ServiceStats::new(25.0, 10, 40.0, 1.0).unwrap(),
        ScoreDecay::Constant(0.0),
    )
    .unwrap()
}

#[test]
fn tripped_breaker_short_circuits_without_consuming_virtual_time() {
    // A permanently downed service behind a hair-trigger breaker.
    let svc = SyntheticService::new(tiny_interface(), DomainMap::new(), 1).with_fault_profile(
        FaultProfile {
            outage: Some((0, u64::MAX)),
            ..FaultProfile::none()
        },
    );
    let clock = VirtualClock::new();
    let client = ServiceClient::for_service(Arc::new(svc))
        .retries(0)
        .breaker(1, 1_000.0)
        .virtual_clock(clock.clone())
        .build();
    let req = Request::unbound().bind(AttributePath::atomic("K"), Value::text("k"));

    let first = client.fetch(&req).unwrap_err();
    assert!(
        first.is_retryable(),
        "the outage surfaces as a transient transport error"
    );
    assert!(client.breaker_is_open());
    let after_trip = clock.now_ms();

    // Short-circuits are instantaneous: no request, no virtual time.
    for _ in 0..5 {
        let err = client.fetch(&req).unwrap_err();
        assert!(matches!(
            err,
            search_computing::services::ServiceError::CircuitOpen { .. }
        ));
        assert!(!SecoError::from(err).is_retryable());
    }
    assert_eq!(
        clock.now_ms(),
        after_trip,
        "short-circuits must not consume virtual time"
    );
}

#[test]
fn clean_run_is_a_rank_ordered_superset_of_the_degraded_run() {
    let q = running_example();
    let clean = entertainment::build_registry(1).unwrap();
    let best = optimize(&q, &clean, CostMetric::RequestCount).unwrap();
    let baseline = execute_plan(&best.plan, &clean, EngineConfig::default()).unwrap();
    assert!(baseline.degraded.is_empty());

    // An outage profile knocks services out over a call window; the
    // degraded answer keeps whatever was extracted before the window.
    let reg =
        entertainment::build_registry_with_faults(1, FaultProfile::outage().with_seed(3)).unwrap();
    let opts = EngineConfig {
        failure_mode: FailureMode::Degrade,
        client: Some(ClientConfig {
            retries: 1,
            seed: 1,
            ..Default::default()
        }),
        ..Default::default()
    };
    let degraded = execute_plan(&best.plan, &reg, opts).unwrap();
    assert!(
        degraded.is_degraded(),
        "the outage window must degrade the run"
    );
    assert!(
        degraded.results.len() < baseline.results.len(),
        "the degraded answer must be a strict subset"
    );

    // Every degraded answer appears in the clean run, in the same
    // relative (rank) order — degradation truncates, it never reorders.
    let mut clean_iter = baseline.results.iter();
    for combo in &degraded.results {
        assert!(
            clean_iter.any(|c| c == combo),
            "degraded answer missing from the clean run or out of order: {combo}"
        );
    }
}

#[test]
fn degraded_parallel_join_emits_the_surviving_branch_top_k_in_rank_order() {
    use search_computing::model::Comparator;
    use search_computing::plan::{JoinSpec, PlanNode, ServiceNode};

    // Diamond plan: Conference fans out to Flight and Hotel, joined by
    // SameTrip. Flight is hard down.
    let mut reg = ServiceRegistry::new();
    let city = search_computing::services::ValueDomain::new("city", 12);
    let conf_domains = DomainMap::new().with(AttributePath::atomic("City"), city);
    reg.register_service(Arc::new(SyntheticService::new(
        travel::conference_interface(),
        conf_domains,
        5 ^ 0x11,
    )))
    .unwrap();
    reg.register_service(Arc::new(
        SyntheticService::new(travel::flight_interface(), DomainMap::new(), 5 ^ 0x13)
            .with_fault_profile(FaultProfile {
                outage: Some((0, u64::MAX)),
                ..FaultProfile::none()
            }),
    ))
    .unwrap();
    reg.register_service(Arc::new(SyntheticService::new(
        travel::hotel_interface(),
        DomainMap::new(),
        5 ^ 0x14,
    )))
    .unwrap();
    reg.register_pattern(travel::reached_by_pattern()).unwrap();
    reg.register_pattern(travel::stay_at_pattern()).unwrap();
    reg.register_pattern(travel::same_trip_pattern()).unwrap();

    let q = QueryBuilder::new()
        .atom("C", "Conference1")
        .atom("F", "Flight1")
        .atom("H", "Hotel1")
        .pattern("ReachedBy", "C", "F")
        .pattern("StayAt", "C", "H")
        .pattern("SameTrip", "F", "H")
        .select_const("C", "Topic", Comparator::Eq, Value::text("ai"))
        .k(5)
        .build()
        .unwrap();
    let joins = q.expanded_joins(&reg).unwrap();
    let same_trip: Vec<_> = joins
        .iter()
        .filter(|j| j.connects("F", "H"))
        .cloned()
        .collect();
    let mut p = QueryPlan::new(q);
    let c = p.add(PlanNode::Service(ServiceNode::new("C", "Conference1")));
    let f = p.add(PlanNode::Service(ServiceNode::new("F", "Flight1")));
    let h = p.add(PlanNode::Service(ServiceNode::new("H", "Hotel1")));
    let j = p.add(PlanNode::ParallelJoin(JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Triangular,
        predicates: same_trip,
        selectivity: 1.0,
    }));
    p.connect(p.input(), c).unwrap();
    p.connect(c, f).unwrap();
    p.connect(c, h).unwrap();
    p.connect(f, j).unwrap();
    p.connect(h, j).unwrap();
    p.connect(j, p.output()).unwrap();

    let opts = EngineConfig {
        join_k: 5,
        failure_mode: FailureMode::Degrade,
        ..Default::default()
    };
    let out = execute_plan(&p, &reg, opts).unwrap();
    assert_eq!(out.degraded, vec!["Flight1".to_string()]);
    assert!(!out.results.is_empty(), "the hotel branch must survive");
    assert!(out.results.len() <= 5, "k-answer termination still holds");
    // Surviving-branch passthrough: hotel-only composites, emitted in
    // non-increasing score order (the branch's rank order).
    let mut last = f64::INFINITY;
    for combo in &out.results {
        assert!(combo.component("F").is_none());
        let hotel = combo.component("H").expect("hotel component");
        assert!(
            hotel.score <= last + 1e-12,
            "passthrough must preserve rank order"
        );
        last = hotel.score;
    }
}
