//! Exactness of the hash-accelerated join kernel: for every join
//! method, decay model, chunk size, and `k`, the indexed executor must
//! be *byte-identical* to the nested-loop baseline — same combinations
//! in the same emission order, same tiles, same tile representatives,
//! same call counts. The index may only change how much work is done,
//! never what is produced.

use search_computing::join::executor::{JoinOutcome, MemoryStream, ParallelJoinExecutor};
use search_computing::join::{ColumnarOptions, JoinIndexMode, JoinIndexOptions};
use search_computing::plan::{JoinSpec, PlanNode, SelectionNode, ServiceNode};
use search_computing::prelude::*;
use search_computing::query::predicate::{ResolvedPredicate, SchemaMap};
use search_computing::query::{JoinPredicate, QualifiedPath};
use search_computing::services::domains::travel;
use search_computing::services::invocation::Request;
use seco_bench::join_pair_with_width;
use seco_model::{Adornment, AttributeDef, AttributePath, DataType, ServiceSchema, Tuple};

const OFF: JoinIndexOptions = JoinIndexOptions {
    mode: JoinIndexMode::Off,
    tile_prune: false,
};
const HASH: JoinIndexOptions = JoinIndexOptions {
    mode: JoinIndexMode::Hash,
    tile_prune: false,
};
const HASH_PRUNED: JoinIndexOptions = JoinIndexOptions {
    mode: JoinIndexMode::Hash,
    tile_prune: true,
};

/// The three data-plane configurations: full columnar (the default),
/// columnar access without batch kernels, and the row-at-a-time
/// baseline. All three must be byte-identical.
const COL: ColumnarOptions = ColumnarOptions {
    columnar: true,
    batch_eval: true,
};
const COL_NO_BATCH: ColumnarOptions = ColumnarOptions {
    columnar: true,
    batch_eval: false,
};
const ROW: ColumnarOptions = ColumnarOptions {
    columnar: false,
    batch_eval: false,
};

/// Owned render of the full outcome; two runs are byte-identical iff
/// these strings are equal.
fn render(out: &JoinOutcome) -> String {
    let rows: String = out
        .results
        .iter()
        .map(|c| format!("{:?};", c.materialize()))
        .collect();
    format!(
        "{rows}|tiles={:?}|reps={:?}|calls={}/{}|exhausted={}",
        out.tiles, out.tile_representatives, out.calls_x, out.calls_y, out.exhausted
    )
}

/// Runs one join method over a seeded synthetic service pair.
fn run_method(
    decay_x: ScoreDecay,
    decay_y: ScoreDecay,
    invocation: Invocation,
    completion: Completion,
    chunk: usize,
    k: usize,
    options: JoinIndexOptions,
    columnar: ColumnarOptions,
) -> JoinOutcome {
    let (sx, sy) = join_pair_with_width(decay_x, decay_y, 40, chunk, 23, 10);
    let req = Request::unbound().bind(AttributePath::atomic("Key"), Value::text("q"));
    let mut x = search_computing::join::executor::ServiceStream::new("X", sx.as_ref(), req.clone());
    let mut y = search_computing::join::executor::ServiceStream::new("Y", sy.as_ref(), req);
    let predicates = vec![ResolvedPredicate::Join(JoinPredicate {
        left: QualifiedPath::new("X", AttributePath::atomic("Link")),
        op: Comparator::Eq,
        right: QualifiedPath::new("Y", AttributePath::atomic("Link")),
    })];
    let mut schemas = SchemaMap::new();
    schemas.insert("X".into(), &sx.interface().schema);
    schemas.insert("Y".into(), &sy.interface().schema);
    let exec = ParallelJoinExecutor {
        predicates: &predicates,
        schemas: &schemas,
        invocation,
        completion,
        h: decay_x.step_chunks().unwrap_or(1),
        k,
        options,
        columnar,
        pool: None,
    };
    exec.run(&mut x, &mut y).expect("join runs")
}

#[test]
fn hash_kernel_is_byte_identical_across_join_methods() {
    let decays = [
        (ScoreDecay::Linear, ScoreDecay::Quadratic),
        (
            ScoreDecay::Step {
                h: 2,
                high: 0.9,
                low: 0.1,
            },
            ScoreDecay::Linear,
        ),
    ];
    let invocations = [
        Invocation::NestedLoop,
        Invocation::merge_scan_even(),
        Invocation::MergeScan { r1: 1, r2: 3 },
    ];
    let completions = [Completion::Rectangular, Completion::Triangular];
    let mut nested_evals = 0u64;
    let mut hashed_evals = 0u64;
    for &(dx, dy) in &decays {
        for &inv in &invocations {
            for &comp in &completions {
                for &k in &[0usize, 7] {
                    for &chunk in &[3usize, 5] {
                        let base = run_method(dx, dy, inv, comp, chunk, k, OFF, ROW);
                        // Every (kernel, data-plane) combination must
                        // reproduce the row-plane nested loop byte for
                        // byte.
                        for opts in [OFF, HASH, HASH_PRUNED] {
                            for plane in [COL, COL_NO_BATCH, ROW] {
                                let accel = run_method(dx, dy, inv, comp, chunk, k, opts, plane);
                                assert_eq!(
                                    render(&base),
                                    render(&accel),
                                    "divergence at {dx:?}/{dy:?} {inv:?} {comp:?} k={k} \
                                     chunk={chunk} opts={opts:?} plane={plane:?}"
                                );
                                // The data plane may move work between
                                // scalar and batch kernels, but never
                                // change how many candidates are judged.
                                let row = run_method(dx, dy, inv, comp, chunk, k, opts, ROW);
                                assert_eq!(
                                    accel.stats.predicate_evals, row.stats.predicate_evals,
                                    "plane {plane:?} changed predicate_evals under {opts:?}"
                                );
                                if !plane.batch_eval {
                                    assert_eq!(accel.stats.batch_evals, 0);
                                }
                                if !plane.columnar && !plane.batch_eval {
                                    assert_eq!(accel.stats.columns_scanned, 0);
                                    assert_eq!(accel.stats.batch_evals, 0);
                                }
                            }
                        }
                        let hashed = run_method(dx, dy, inv, comp, chunk, k, HASH, COL);
                        nested_evals += base.stats.predicate_evals;
                        hashed_evals += hashed.stats.predicate_evals;
                    }
                }
            }
        }
    }
    // At the pair's ~0.1 selectivity the index must pay for itself.
    assert!(
        hashed_evals * 3 <= nested_evals,
        "expected ≥3x fewer predicate evaluations, got {nested_evals} vs {hashed_evals}"
    );
}

/// Composites with clustered text keys: chunk `c` carries only the key
/// `city-<c/base>`, so whole tiles have no key overlap and the indexed
/// kernel can prove them empty without touching a single pair.
fn clustered(
    atom: &str,
    schema: &ServiceSchema,
    n: usize,
    first_city: usize,
) -> Vec<CompositeTuple> {
    (0..n)
        .map(|i| {
            CompositeTuple::single(
                atom,
                Tuple::builder(schema)
                    .set("L", Value::Text(format!("city-{}", first_city + i / 10)))
                    .score(1.0 - i as f64 / n as f64)
                    .source_rank(i)
                    .build()
                    .unwrap(),
            )
        })
        .collect()
}

#[test]
fn empty_key_tiles_are_pruned_without_changing_the_answer() {
    let schema = ServiceSchema::new(
        "S",
        vec![AttributeDef::atomic("L", DataType::Text, Adornment::Output)],
    )
    .unwrap();
    let predicates = vec![ResolvedPredicate::Join(JoinPredicate {
        left: QualifiedPath::new("X", AttributePath::atomic("L")),
        op: Comparator::Eq,
        right: QualifiedPath::new("Y", AttributePath::atomic("L")),
    })];
    let mut schemas = SchemaMap::new();
    schemas.insert("X".into(), &schema);
    schemas.insert("Y".into(), &schema);
    let run = |options: JoinIndexOptions| -> JoinOutcome {
        let exec = ParallelJoinExecutor {
            predicates: &predicates,
            schemas: &schemas,
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            h: 1,
            k: 0,
            options,
            columnar: ColumnarOptions::default(),
            pool: None,
        };
        // X covers city-0..3, Y covers city-2..5: tiles between the
        // disjoint chunks share no key.
        let mut x = MemoryStream::new(clustered("X", &schema, 40, 0), 10);
        let mut y = MemoryStream::new(clustered("Y", &schema, 40, 2), 10);
        exec.run(&mut x, &mut y).expect("join runs")
    };
    let base = run(OFF);
    let accel = run(HASH_PRUNED);
    assert_eq!(render(&base), render(&accel));
    assert!(
        !accel.results.is_empty(),
        "the overlapping cities must match"
    );
    assert!(
        accel.stats.tiles_pruned > 0,
        "disjoint-key tiles must be pruned: {:?}",
        accel.stats
    );
    assert!(accel.stats.pairs_skipped > 0);
    assert!(accel.stats.predicate_evals < base.stats.predicate_evals);
    assert_eq!(base.stats.index_builds, 0);
    assert!(accel.stats.index_builds > 0);
}

/// The E1 travel plan (Fig. 2/3), used to compare whole-engine runs
/// with the kernel on and off.
fn e1_plan(seed: u64) -> (QueryPlan, ServiceRegistry) {
    let registry = travel::build_registry(seed).unwrap();
    let query = QueryBuilder::new()
        .atom("C", "Conference1")
        .atom("W", "Weather1")
        .atom("F", "Flight1")
        .atom("H", "Hotel1")
        .pattern("Forecast", "C", "W")
        .pattern("ReachedBy", "C", "F")
        .pattern("StayAt", "C", "H")
        .pattern("SameTrip", "F", "H")
        .select_const("C", "Topic", Comparator::Eq, Value::text("databases"))
        .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(26))
        .build()
        .unwrap();
    let joins = query.expanded_joins(&registry).unwrap();
    let same_trip: Vec<_> = joins
        .iter()
        .filter(|j| j.connects("F", "H"))
        .cloned()
        .collect();
    let mut plan = QueryPlan::new(query.clone());
    let c = plan.add(PlanNode::Service(ServiceNode::new("C", "Conference1")));
    let w = plan.add(PlanNode::Service(ServiceNode::new("W", "Weather1")));
    let sel = plan.add(PlanNode::Selection(
        SelectionNode::new(vec![query.selections[1].clone()]).with_selectivity(0.25),
    ));
    let f = plan.add(PlanNode::Service(
        ServiceNode::new("F", "Flight1").with_fetches(2),
    ));
    let h = plan.add(PlanNode::Service(
        ServiceNode::new("H", "Hotel1").with_fetches(2),
    ));
    let j = plan.add(PlanNode::ParallelJoin(JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        predicates: same_trip,
        selectivity: 1.0,
    }));
    plan.connect(plan.input(), c).unwrap();
    plan.connect(c, w).unwrap();
    plan.connect(w, sel).unwrap();
    plan.connect(sel, f).unwrap();
    plan.connect(sel, h).unwrap();
    plan.connect(f, j).unwrap();
    plan.connect(h, j).unwrap();
    plan.connect(j, plan.output()).unwrap();
    (plan, registry)
}

#[test]
fn both_executors_agree_with_and_without_the_index() {
    let opts_of = |join_index: JoinIndexOptions| EngineConfig {
        join_k: 10,
        join_index,
        ..Default::default()
    };
    // Deterministic executor: identical emission order and counters,
    // and the hash run must actually have built indexes.
    let (plan, registry) = e1_plan(5);
    let base = execute_plan(&plan, &registry, opts_of(OFF)).unwrap();
    for opts in [HASH, HASH_PRUNED] {
        let (plan, registry) = e1_plan(5);
        let accel = execute_plan(&plan, &registry, opts_of(opts)).unwrap();
        assert_eq!(base.results, accel.results, "under {opts:?}");
        assert_eq!(base.total_calls, accel.total_calls);
        assert_eq!(base.critical_ms, accel.critical_ms);
        assert!(accel.join_stats.index_builds > 0);
        // This plan's branches are cluster-aligned per conference (the
        // probed bucket spans the whole chunk), so the index changes
        // nothing about the work done — only byte-identity and the
        // counters can be asserted.
        assert!(accel.join_stats.probes > 0);
        assert!(accel.join_stats.predicate_evals <= base.join_stats.predicate_evals);
    }
    assert_eq!(base.join_stats.index_builds, 0);
    assert_eq!(base.join_stats.probes, 0);
    assert!(base.join_stats.predicate_evals > 0);

    // The columnar data plane must not change whole-engine results,
    // calls, virtual time, or how many candidates are judged.
    let (plan, registry) = e1_plan(5);
    let mut row_cfg = opts_of(OFF);
    row_cfg.columnar = ROW;
    let row_plane = execute_plan(&plan, &registry, row_cfg).unwrap();
    assert_eq!(base.results, row_plane.results);
    assert_eq!(base.total_calls, row_plane.total_calls);
    assert_eq!(base.critical_ms, row_plane.critical_ms);
    assert_eq!(
        base.join_stats.predicate_evals,
        row_plane.join_stats.predicate_evals
    );
    assert_eq!(row_plane.join_stats.batch_evals, 0);
    assert_eq!(row_plane.join_stats.columns_scanned, 0);

    // Pipelined executor: same combinations either way.
    let (plan, registry) = e1_plan(5);
    let par_base = execute_parallel_with(&plan, &registry, opts_of(OFF)).unwrap();
    let (plan, registry) = e1_plan(5);
    let par_accel = execute_parallel_with(&plan, &registry, opts_of(HASH)).unwrap();
    assert_eq!(par_base.results, par_accel.results);
    assert!(par_accel.join_stats.index_builds > 0);
    // The recorders saw the counters too (CLI `join:` line source).
    assert!(registry.total_stats().predicate_evals > 0);
}
