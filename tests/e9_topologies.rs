//! E9: the Fig. 9 topology enumeration for the running example.
//!
//! The chapter draws four alternative topologies (a)–(d), all with
//! Theatre preceding Restaurant, and continues with (d) — the plan with
//! a parallel join between Movie and Theatre. Our enumerator finds five
//! admissible structures: the figure's four plus the `M ∥ (T→R)`
//! variant the chapter does not draw (it satisfies exactly the same
//! precedence constraints).

use search_computing::optimizer::phase2::enumerate_topologies;
use search_computing::optimizer::Phase2Heuristic;
use search_computing::plan::{PlanNode, QueryPlan};
use search_computing::query::builder::running_example;
use search_computing::query::feasibility::analyze;
use search_computing::services::domains::entertainment;

fn atom_positions(plan: &QueryPlan) -> Vec<(String, usize)> {
    let order = plan.topo_order().unwrap();
    let mut out = Vec::new();
    for (pos, id) in order.iter().enumerate() {
        if let Some(atom) = plan.node(*id).unwrap().atom() {
            out.push((atom.to_owned(), pos));
        }
    }
    out
}

fn has_join(plan: &QueryPlan) -> bool {
    plan.node_ids()
        .any(|id| matches!(plan.node(id), Ok(PlanNode::ParallelJoin(_))))
}

#[test]
fn enumerates_the_fig9_topologies() {
    let registry = entertainment::build_registry(1).unwrap();
    let query = running_example();
    let report = analyze(&query, &registry).unwrap();
    let plans = enumerate_topologies(
        &query,
        &registry,
        &report,
        Phase2Heuristic::ParallelIsBetter,
        64,
    )
    .unwrap();

    // The enumeration yields exactly five structures.
    assert_eq!(
        plans.len(),
        5,
        "expected the 4 drawn topologies + the undrawn M∥(T→R)"
    );

    // Classify them.
    let chains: Vec<&QueryPlan> = plans.iter().filter(|p| !has_join(p)).collect();
    let parallel: Vec<&QueryPlan> = plans.iter().filter(|p| has_join(p)).collect();
    assert_eq!(
        chains.len(),
        3,
        "the three all-sequential orders: M·T·R, T·M·R, T·R·M"
    );
    assert_eq!(parallel.len(), 2, "(M ∥ T)→R and M ∥ (T→R)");

    // All three admissible chain orders are present.
    let mut chain_orders: Vec<Vec<String>> = chains
        .iter()
        .map(|p| {
            let mut atoms = atom_positions(p);
            atoms.sort_by_key(|(_, pos)| *pos);
            atoms.into_iter().map(|(a, _)| a).collect()
        })
        .collect();
    chain_orders.sort();
    assert_eq!(
        chain_orders,
        vec![
            vec!["M".to_owned(), "T".to_owned(), "R".to_owned()],
            vec!["T".to_owned(), "M".to_owned(), "R".to_owned()],
            vec!["T".to_owned(), "R".to_owned(), "M".to_owned()],
        ]
    );

    // Every topology honours the I/O dependency: T before R.
    for p in &plans {
        let atoms = atom_positions(p);
        let pos = |a: &str| atoms.iter().find(|(x, _)| x == a).unwrap().1;
        assert!(pos("T") < pos("R"), "T must precede R");
        p.validate().unwrap();
    }

    // The chapter's chosen topology (d): Movie and Theatre joined in
    // parallel, Restaurant piped after the join.
    let fig9d = parallel.iter().any(|p| {
        let join_id = p
            .node_ids()
            .find(|id| matches!(p.node(*id), Ok(PlanNode::ParallelJoin(_))))
            .unwrap();
        let upstream = p.atoms_at(join_id);
        upstream.contains("M") && upstream.contains("T") && !upstream.contains("R")
    });
    assert!(
        fig9d,
        "the (M ∥ T)→R topology of Fig. 9(d) must be enumerated"
    );
}

#[test]
fn both_heuristics_enumerate_the_same_set() {
    let registry = entertainment::build_registry(1).unwrap();
    let query = running_example();
    let report = analyze(&query, &registry).unwrap();
    let a = enumerate_topologies(
        &query,
        &registry,
        &report,
        Phase2Heuristic::ParallelIsBetter,
        64,
    )
    .unwrap();
    let b = enumerate_topologies(
        &query,
        &registry,
        &report,
        Phase2Heuristic::SelectiveFirst,
        64,
    )
    .unwrap();
    assert_eq!(
        a.len(),
        b.len(),
        "heuristics order the space, they do not shrink it"
    );
}
