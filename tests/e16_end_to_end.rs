//! E16: end-to-end soundness — optimized plans, both executors, and the
//! declarative oracle agree.

use search_computing::prelude::*;
use search_computing::query::builder::running_example;
use search_computing::services::domains::{entertainment, travel};

/// Two composites describe the same answer when every atom's component
/// matches.
fn same_answer(q: &Query, a: &CompositeTuple, b: &CompositeTuple) -> bool {
    q.atoms
        .iter()
        .all(|atom| a.component(&atom.alias) == b.component(&atom.alias))
}

#[test]
fn running_example_engine_is_sound_wrt_oracle() {
    let registry = entertainment::build_registry(9).unwrap();
    let query = running_example();
    let oracle = evaluate_oracle(&query, &registry).unwrap();
    for metric in [CostMetric::RequestCount, CostMetric::ExecutionTime] {
        let best = optimize(&query, &registry, metric).unwrap();
        let outcome = execute_plan(&best.plan, &registry, EngineConfig::default()).unwrap();
        for combo in &outcome.results {
            assert!(
                oracle.iter().any(|o| same_answer(&query, o, combo)),
                "{metric}: engine emitted non-answer {combo}"
            );
        }
    }
}

#[test]
fn travel_query_engine_is_sound_wrt_oracle() {
    let registry = travel::build_registry(13).unwrap();
    let query = QueryBuilder::new()
        .atom("C", "Conference1")
        .atom("W", "Weather1")
        .atom("H", "Hotel1")
        .pattern("Forecast", "C", "W")
        .pattern("StayAt", "C", "H")
        .select_const("C", "Topic", Comparator::Eq, Value::text("ml"))
        .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(20))
        .k(5)
        .build()
        .unwrap();
    let oracle = evaluate_oracle(&query, &registry).unwrap();
    let best = optimize(&query, &registry, CostMetric::Sum).unwrap();
    let outcome = execute_plan(&best.plan, &registry, EngineConfig::default()).unwrap();
    assert!(!outcome.results.is_empty());
    for combo in &outcome.results {
        assert!(oracle.iter().any(|o| same_answer(&query, o, combo)));
    }
}

#[test]
fn parallel_and_sequential_executors_agree() {
    let registry = entertainment::build_registry(21).unwrap();
    let query = running_example();
    let best = optimize(&query, &registry, CostMetric::RequestCount).unwrap();
    let sequential = execute_plan(&best.plan, &registry, EngineConfig::default()).unwrap();
    let parallel = execute_parallel(&best.plan, &registry, EngineConfig::default()).unwrap();
    assert_eq!(sequential.results.len(), parallel.len());
    for combo in &parallel {
        assert!(sequential
            .results
            .iter()
            .any(|s| same_answer(&query, s, combo)));
    }
}

#[test]
fn parsed_query_round_trips_through_the_whole_stack() {
    let registry = entertainment::build_registry(5).unwrap();
    let query = parse_query(
        "Select Movie1 As M, Theatre1 as T \
         where Shows(M,T) and \
         M.Genres.Genre=\"drama\" and M.Openings.Country=\"country-1\" and \
         M.Openings.Date>=2009-01-01 and M.Language=\"it\" and \
         T.UAddress=\"piazza Leonardo 32\" and T.UCity=\"Milano\" and \
         T.UCountry=\"country-1\" \
         ranking (0.5, 0.5) top 5",
    )
    .unwrap();
    let best = optimize(&query, &registry, CostMetric::ExecutionTime).unwrap();
    let outcome = execute_plan(&best.plan, &registry, EngineConfig::default()).unwrap();
    let oracle = evaluate_oracle(&query, &registry).unwrap();
    for combo in &outcome.results {
        assert!(oracle.iter().any(|o| same_answer(&query, o, combo)));
    }
    // The ranked view is sorted.
    let rs = ResultSet::new(outcome.results, query.ranking.clone());
    let top = rs.top_k(5);
    for w in top.windows(2) {
        assert!(query.ranking.score(&w[0]) >= query.ranking.score(&w[1]) - 1e-12);
    }
}

#[test]
fn continuation_fetches_more_results() {
    // §3.2: "a plan execution can be continued, after an explicit user
    // request, thereby producing more tuples". Model the continuation
    // by raising the fetch factors of the chosen plan and re-executing:
    // the result set must grow monotonically (same prefix semantics).
    let registry = entertainment::build_registry(33).unwrap();
    let query = running_example();
    let best = optimize(&query, &registry, CostMetric::RequestCount).unwrap();
    let first = execute_plan(&best.plan, &registry, EngineConfig::default()).unwrap();

    let mut more_plan = best.plan.clone();
    for id in more_plan.node_ids().collect::<Vec<_>>() {
        if let search_computing::plan::PlanNode::Service(s) = more_plan.node_mut(id).unwrap() {
            if !s.keep_first {
                s.fetches += 1;
            }
        }
    }
    let second = execute_plan(&more_plan, &registry, EngineConfig::default()).unwrap();
    assert!(
        second.results.len() >= first.results.len(),
        "continuation must not lose answers: {} -> {}",
        first.results.len(),
        second.results.len()
    );
    assert!(second.total_calls > first.total_calls);
}
