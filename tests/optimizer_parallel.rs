//! Determinism and anytime guarantees of the parallel branch-and-bound,
//! plus the incremental-annotation equivalence property.

use search_computing::plan::{annotate, AnnotationConfig, DeltaAnnotator, PlanNode};
use search_computing::prelude::*;
use seco_bench::star_scenario;
use seco_query::builder::running_example;
use seco_services::domains::entertainment;

/// The winner must be byte-identical across worker counts: same cost
/// bits, same canonical plan key, same fetch vector — for every metric.
#[test]
fn winner_is_identical_across_worker_counts_for_all_metrics() {
    let reg = entertainment::build_registry(1).unwrap();
    let q = running_example();
    for metric in CostMetric::all() {
        let mut reference: Option<(u64, String, String)> = None;
        for workers in [1usize, 2, 4, 8] {
            let mut opt = Optimizer::new(&reg, metric);
            opt.workers = workers;
            let best = opt.optimize(&q).unwrap();
            let ascii =
                search_computing::plan::display::ascii(&best.plan, Some(&best.annotated)).unwrap();
            let got = (best.cost.to_bits(), best.plan.canonical_key(), ascii);
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(
                        got.0, want.0,
                        "{metric} workers={workers}: cost bits differ"
                    );
                    assert_eq!(
                        got.1, want.1,
                        "{metric} workers={workers}: plan key differs"
                    );
                    assert_eq!(
                        got.2, want.2,
                        "{metric} workers={workers}: rendering differs"
                    );
                }
            }
        }
    }
}

/// Serial and parallel searches must agree with the exhaustive oracle.
#[test]
fn parallel_search_matches_exhaustive() {
    use search_computing::optimizer::exhaustive::optimize_exhaustive;
    let reg = entertainment::build_registry(1).unwrap();
    let q = running_example();
    for metric in CostMetric::all() {
        let ex = optimize_exhaustive(&q, &reg, metric).unwrap();
        let mut opt = Optimizer::new(&reg, metric);
        opt.workers = 4;
        let par = opt.optimize(&q).unwrap();
        assert!(
            (par.cost - ex.cost).abs() < 1e-9,
            "{metric}: parallel={} exhaustive={}",
            par.cost,
            ex.cost
        );
    }
}

/// Anytime semantics under parallelism: a budget of 1 still returns a
/// feasible plan, and the global instantiation counter overshoots by at
/// most the worker count.
#[test]
fn budget_is_global_and_returns_a_feasible_plan() {
    let (reg, q) = star_scenario(3, 11);
    for workers in [1usize, 2, 4, 8] {
        let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
        opt.workers = workers;
        opt.budget = Some(1);
        let anytime = opt.optimize(&q).unwrap();
        anytime.plan.validate().unwrap();
        assert!(
            anytime.annotated.output_tuples >= q.k as f64,
            "workers={workers}: budgeted plan must still be feasible"
        );
        assert!(
            anytime.stats.instantiated >= 1,
            "workers={workers}: budget=1 must instantiate at least one plan"
        );
        assert!(
            anytime.stats.instantiated <= 1 + workers,
            "workers={workers}: overshoot {} exceeds worker count",
            anytime.stats.instantiated
        );
    }
}

/// Seeded property test: starting from ⟨1,…,1⟩ and applying a random
/// walk of fetch-factor changes, the incremental annotator's state must
/// equal a from-scratch `annotate()` node for node (bit-exact tin/tout/
/// calls), with matching per-service call totals — at every step.
#[test]
fn incremental_annotation_matches_full_reannotation_node_for_node() {
    let reg = entertainment::build_registry(1).unwrap();
    let config = AnnotationConfig::default();
    let base = {
        let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
        opt.workers = 2;
        opt.optimize(&running_example()).unwrap().plan
    };
    for seed in [3u64, 17, 4242] {
        let mut plan = base.clone();
        // Reset to the minimal vector, the annotator's starting point.
        for id in plan.node_ids().collect::<Vec<_>>() {
            if let PlanNode::Service(s) = plan.node_mut(id).unwrap() {
                s.fetches = 1;
            }
        }
        let services: Vec<_> = plan
            .node_ids()
            .filter(|id| matches!(plan.node(*id), Ok(PlanNode::Service(_))))
            .collect();
        let mut annotator = DeltaAnnotator::new(&plan, &reg, &config).unwrap();
        // xorshift64* walk, fully determined by the seed.
        let mut state = seed.wrapping_mul(2685821657736338717).max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..40 {
            let id = services[(next() % services.len() as u64) as usize];
            let fetches = (next() % 8 + 1) as u32;
            annotator.set_fetches(id, fetches).unwrap();
            if let PlanNode::Service(s) = plan.node_mut(id).unwrap() {
                s.fetches = fetches;
            }
            let full = annotate(&plan, &reg, &config).unwrap();
            let incremental = annotator.annotated();
            for node in plan.node_ids() {
                let a = incremental.annotation(node);
                let b = full.annotation(node);
                assert_eq!(
                    a.tin.to_bits(),
                    b.tin.to_bits(),
                    "seed={seed} step={step} node={node:?}: tin diverged"
                );
                assert_eq!(
                    a.tout.to_bits(),
                    b.tout.to_bits(),
                    "seed={seed} step={step} node={node:?}: tout diverged"
                );
                assert_eq!(
                    a.calls.to_bits(),
                    b.calls.to_bits(),
                    "seed={seed} step={step} node={node:?}: calls diverged"
                );
            }
            assert_eq!(
                incremental.output_tuples.to_bits(),
                full.output_tuples.to_bits(),
                "seed={seed} step={step}: output estimate diverged"
            );
            assert_eq!(
                incremental.calls_by_service, full.calls_by_service,
                "seed={seed} step={step}: per-service call totals diverged"
            );
        }
    }
}

/// The full-annotation baseline and the incremental path must pick the
/// same winner while the incremental path does strictly fewer full
/// annotations.
#[test]
fn incremental_mode_saves_full_annotations_without_changing_the_winner() {
    use search_computing::optimizer::Phase3Heuristic;
    let reg = entertainment::build_registry(1).unwrap();
    let q = running_example();
    // Greedy phase 3 probes every candidate per round, where full
    // re-annotation is most expensive.
    let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
    opt.heuristics.phase3 = Phase3Heuristic::Greedy;
    let incremental = opt.optimize(&q).unwrap();
    let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
    opt.heuristics.phase3 = Phase3Heuristic::Greedy;
    opt.incremental = false;
    let full = opt.optimize(&q).unwrap();
    assert_eq!(incremental.cost.to_bits(), full.cost.to_bits());
    assert_eq!(incremental.plan.canonical_key(), full.plan.canonical_key());
    assert!(
        incremental.stats.annotate_full * 5 <= full.stats.annotate_full,
        "incremental must do at least 5x fewer full annotations ({} vs {})",
        incremental.stats.annotate_full,
        full.stats.annotate_full
    );
}
