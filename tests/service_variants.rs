//! Coverage for the service-kind variants of Fig. 1 that the two main
//! scenarios do not exercise: *chunked exact* services and `like`
//! predicates that make a service selective in context.

use std::sync::Arc;

use search_computing::model::{
    Adornment, AttributeDef, AttributePath, Comparator, DataType, ScoreDecay, ServiceInterface,
    ServiceKind, ServiceSchema, ServiceStats, Value,
};
use search_computing::plan::{annotate, AnnotationConfig, PlanNode, QueryPlan, ServiceNode};
use search_computing::prelude::*;
use search_computing::services::invocation::Request;
use search_computing::services::synthetic::{DomainMap, SyntheticService, ValueDomain};

/// An exact *chunked* catalogue: unranked, relational behaviour, but
/// results are delivered in pages (Fig. 1: "exact services […] may be
/// chunked").
fn chunked_catalogue() -> ServiceInterface {
    let schema = ServiceSchema::new(
        "Catalogue1",
        vec![
            AttributeDef::atomic("Category", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Product", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Price", DataType::Float, Adornment::Output),
        ],
    )
    .unwrap();
    ServiceInterface::new(
        "Catalogue1",
        "Catalogue",
        schema,
        ServiceKind::Exact { chunked: true },
        ServiceStats::new(23.0, 10, 20.0, 1.0).unwrap(),
        ScoreDecay::Constant(1.0),
    )
    .unwrap()
}

fn registry() -> ServiceRegistry {
    let mut reg = ServiceRegistry::new();
    reg.register_service(Arc::new(SyntheticService::new(
        chunked_catalogue(),
        DomainMap::new().with(
            AttributePath::atomic("Product"),
            ValueDomain::new("prod", 40),
        ),
        5,
    )))
    .unwrap();
    reg
}

#[test]
fn chunked_exact_services_page_without_ranking() {
    let reg = registry();
    let svc = reg.service("Catalogue1").unwrap();
    let req = Request::unbound().bind(AttributePath::atomic("Category"), Value::text("books"));
    let c0 = svc.fetch(&req).unwrap();
    let c1 = svc.fetch(&req.at_chunk(1)).unwrap();
    let c2 = svc.fetch(&req.at_chunk(2)).unwrap();
    assert_eq!((c0.len(), c1.len(), c2.len()), (10, 10, 3));
    assert!(c0.has_more() && c1.has_more() && !c2.has_more());
    // Exact ⇒ constant scores everywhere (no relevance order claimed).
    for t in c0.tuples().iter().chain(c1.tuples()).chain(c2.tuples()) {
        assert_eq!(t.score, 1.0);
    }
}

#[test]
fn annotation_handles_chunked_exact_fetch_factors() {
    let reg = registry();
    let query = QueryBuilder::new()
        .atom("C", "Catalogue1")
        .select_const("C", "Category", Comparator::Eq, Value::text("books"))
        .k(15)
        .build()
        .unwrap();
    let mut plan = QueryPlan::new(query);
    let c = plan.add(PlanNode::Service(
        ServiceNode::new("C", "Catalogue1").with_fetches(2),
    ));
    plan.connect(plan.input(), c).unwrap();
    plan.connect(c, plan.output()).unwrap();
    let ann = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
    // Two fetches of chunk 10, capped by the expected 23 → 20.
    assert_eq!(ann.annotation(c).tout, 20.0);
    assert_eq!(ann.annotation(c).calls, 2.0);
    // Execution agrees with the page arithmetic.
    let outcome = execute_plan(&plan, &reg, EngineConfig::default()).unwrap();
    assert_eq!(outcome.results.len(), 20);
    assert_eq!(outcome.total_calls, 2);
}

#[test]
fn optimizer_grows_fetches_on_chunked_exact_services() {
    let reg = registry();
    let mut query = QueryBuilder::new()
        .atom("C", "Catalogue1")
        .select_const("C", "Category", Comparator::Eq, Value::text("books"))
        .build()
        .unwrap();
    query.k = 15;
    let best = optimize(&query, &reg, CostMetric::RequestCount).unwrap();
    assert!(best.annotated.output_tuples >= 15.0);
    let c = best.plan.service_node_of("C").unwrap();
    if let Ok(PlanNode::Service(s)) = best.plan.node(c) {
        assert!(s.fetches >= 2, "k=15 needs at least two pages of 10");
    }
}

#[test]
fn like_predicates_make_services_selective_in_context() {
    // `Product like "prod-1%"` matches prod-1 and prod-10..19 — 11 of
    // the 40 domain values. The service cannot absorb `like`, so it is
    // filtered downstream and the service becomes selective in context.
    let reg = registry();
    let query = QueryBuilder::new()
        .atom("C", "Catalogue1")
        .select_const("C", "Category", Comparator::Eq, Value::text("books"))
        .select_const("C", "Product", Comparator::Like, Value::text("prod-1%"))
        .build()
        .unwrap();
    let answers = evaluate_oracle(&query, &reg).unwrap();
    assert!(!answers.is_empty());
    assert!(answers.len() < 23, "the like filter must discard products");
    for a in &answers {
        match a.components[0].atomic_at(1) {
            Value::Text(p) => assert!(p.starts_with("prod-1"), "{p} escaped the filter"),
            other => panic!("unexpected product {other:?}"),
        }
    }
}
