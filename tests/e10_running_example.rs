//! E10: the §5.6 instantiation arithmetic of Fig. 10, end to end.
//!
//! Paper: "We then set K = 10 […] K = 10 implies tRestaurant_out = 10.
//! […] tRestaurant_in = 25, by virtue of the selectivity of the pipe
//! join. This in turn implies tMS_out = 25, and therefore that the
//! parallel join has to process 1250 candidate combinations overall.
//! […] restricting to the first 100 movies, corresponding to 5 fetches
//! of chunks of 20 movies, and to the first 25 theatres […] 5 chunks of
//! size 5 […] multiplying tMovie_out = 100 by tTheatre_out = 25 we
//! obtain 2500, but choosing a triangular completion strategy assures
//! that only the half of the most promising combinations are
//! considered, thus obtaining [1250 candidates]."

use search_computing::plan::{
    annotate, AnnotationConfig, Completion, Invocation, JoinSpec, PlanNode, QueryPlan, ServiceNode,
};
use search_computing::prelude::*;
use search_computing::query::builder::running_example;
use search_computing::services::domains::entertainment;

/// Builds the Fig. 10 plan exactly as the chapter instantiates it.
fn fig10_plan(registry: &ServiceRegistry) -> QueryPlan {
    let query = running_example();
    let joins = query.expanded_joins(registry).unwrap();
    let shows: Vec<_> = joins
        .iter()
        .filter(|j| j.connects("M", "T"))
        .cloned()
        .collect();
    let mut p = QueryPlan::new(query);
    let m = p.add(PlanNode::Service(
        ServiceNode::new("M", "Movie1").with_fetches(5),
    ));
    let t = p.add(PlanNode::Service(
        ServiceNode::new("T", "Theatre1").with_fetches(5),
    ));
    let j = p.add(PlanNode::ParallelJoin(JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Triangular,
        predicates: shows,
        selectivity: entertainment::SHOWS_SELECTIVITY,
    }));
    let r = p.add(PlanNode::Service(
        ServiceNode::new("R", "Restaurant1").with_keep_first(),
    ));
    p.connect(p.input(), m).unwrap();
    p.connect(p.input(), t).unwrap();
    p.connect(m, j).unwrap();
    p.connect(t, j).unwrap();
    p.connect(j, r).unwrap();
    p.connect(r, p.output()).unwrap();
    p
}

#[test]
fn fig10_annotation_reproduces_every_number_in_the_chapter() {
    let registry = entertainment::build_registry(1).unwrap();
    let plan = fig10_plan(&registry);
    let ann = annotate(&plan, &registry, &AnnotationConfig::default()).unwrap();

    let m = plan.service_node_of("M").unwrap();
    let t = plan.service_node_of("T").unwrap();
    let r = plan.service_node_of("R").unwrap();
    let j = plan
        .node_ids()
        .find(|id| matches!(plan.node(*id).unwrap(), PlanNode::ParallelJoin(_)))
        .unwrap();

    // "restricting to the first 100 movies, corresponding to 5 fetches
    // of chunks of 20 movies"
    assert_eq!(ann.annotation(m).tout, 100.0);
    assert_eq!(ann.annotation(m).calls, 5.0);
    // "the first 25 theatres in order of distance […] 5 chunks of size 5"
    assert_eq!(ann.annotation(t).tout, 25.0);
    assert_eq!(ann.annotation(t).calls, 5.0);
    // "multiplying 100 by 25 we obtain 2500, but […] triangular […]
    // only the half […] 1250 candidate combinations"
    assert_eq!(ann.annotation(j).tin, 1250.0);
    // "tMS_out = 25" (2% Shows selectivity on 1250 candidates)
    assert_eq!(ann.annotation(j).tout, 25.0);
    // "tRestaurant_in = 25" and "tRestaurant_out = 10 = K" (DinnerPlace
    // at 40%, keeping the first restaurant per location)
    assert_eq!(ann.annotation(r).tin, 25.0);
    assert_eq!(ann.annotation(r).tout, 10.0);
    assert_eq!(ann.output_tuples, 10.0);
}

#[test]
fn fig10_plan_executes_and_produces_complete_combinations() {
    let registry = entertainment::build_registry(1).unwrap();
    let plan = fig10_plan(&registry);
    let outcome = execute_plan(&plan, &registry, EngineConfig::default()).unwrap();
    // The synthetic substrate realises the declared selectivities only
    // approximately, so we check shape, not the exact count: some
    // combinations exist and each carries all three atoms.
    assert!(
        !outcome.results.is_empty(),
        "the night-out query should have answers"
    );
    for combo in &outcome.results {
        assert_eq!(combo.arity(), 3);
    }
    // Movie and Theatre were each fetched 5 times; Restaurant once per
    // surviving MS combination.
    let m_calls = outcome
        .trace
        .event(plan.service_node_of("M").unwrap())
        .unwrap()
        .calls;
    let t_calls = outcome
        .trace
        .event(plan.service_node_of("T").unwrap())
        .unwrap()
        .calls;
    assert_eq!(m_calls, 5);
    assert_eq!(t_calls, 5);
}

#[test]
fn optimizer_reaches_k_10_like_the_chapter() {
    let registry = entertainment::build_registry(1).unwrap();
    let query = running_example();
    assert_eq!(query.k, 10, "the chapter sets K = 10");
    let best = optimize(&query, &registry, CostMetric::RequestCount).unwrap();
    assert!(best.annotated.output_tuples >= 10.0);
    // The optimizer's plan, like the chapter's, pipes Theatre into
    // Restaurant (never the other way round).
    let order = best.plan.topo_order().unwrap();
    let pos = |atom: &str| {
        order
            .iter()
            .position(|id| best.plan.node(*id).unwrap().atom() == Some(atom))
            .unwrap()
    };
    assert!(pos("T") < pos("R"));
}
