//! Property-based tests over the core invariants of the system.

use proptest::prelude::*;

use search_computing::join::completion::explore;
use search_computing::join::optimality::{is_locally_extraction_optimal, score_product_inversions};
use search_computing::join::tile::TileSpace;
use search_computing::model::value::like_match;
use search_computing::model::{Comparator, ScoreDecay, ScoringFunction, Value};
use search_computing::plan::{Completion, Invocation};

/// A slow but obviously-correct LIKE matcher used as the oracle.
fn like_oracle(s: &[char], p: &[char]) -> bool {
    match (s.split_first(), p.split_first()) {
        (_, None) => s.is_empty(),
        (_, Some(('%', rest))) => {
            like_oracle(s, rest) || (!s.is_empty() && like_oracle(&s[1..], p))
        }
        (None, Some(_)) => false,
        (Some((c, s_rest)), Some((pc, p_rest))) => {
            (*pc == '_' || pc == c) && like_oracle(s_rest, p_rest)
        }
    }
}

proptest! {
    #[test]
    fn like_match_agrees_with_the_oracle(
        s in "[abc]{0,8}",
        p in "[abc%_]{0,6}",
    ) {
        let sc: Vec<char> = s.chars().collect();
        let pc: Vec<char> = p.chars().collect();
        prop_assert_eq!(like_match(&s, &p), like_oracle(&sc, &pc));
    }

    #[test]
    fn scoring_functions_are_monotone_and_bounded(
        total in 1usize..200,
        chunk in 1usize..50,
        decay_idx in 0usize..4,
        h in 1usize..10,
        lambda in 0.1f64..10.0,
    ) {
        let decay = match decay_idx {
            0 => ScoreDecay::Step { h, high: 0.95, low: 0.05 },
            1 => ScoreDecay::Linear,
            2 => ScoreDecay::Quadratic,
            _ => ScoreDecay::Exponential { lambda },
        };
        let f = ScoringFunction::new(decay, total, chunk).unwrap();
        let mut prev = f64::INFINITY;
        for i in 0..total {
            let s = f.score_at(i);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s <= prev + 1e-12, "rank {} scored {} after {}", i, s, prev);
            prev = s;
        }
    }

    #[test]
    fn every_strategy_covers_the_tile_space_exactly_once(
        nx in 1usize..8,
        ny in 1usize..8,
        h in 1usize..6,
        r1 in 1u32..4,
        r2 in 1u32..4,
        inv_idx in 0usize..2,
        comp_idx in 0usize..2,
    ) {
        let invocation = if inv_idx == 0 {
            Invocation::NestedLoop
        } else {
            Invocation::MergeScan { r1, r2 }
        };
        let completion =
            if comp_idx == 0 { Completion::Rectangular } else { Completion::Triangular };
        let e = explore(invocation, completion, h, nx, ny).unwrap();
        prop_assert_eq!(e.order.len(), nx * ny);
        let distinct: std::collections::BTreeSet<_> = e.order.iter().collect();
        prop_assert_eq!(distinct.len(), nx * ny, "every tile exactly once");
        // Exactly one call per chunk on each axis.
        let (cx, cy) = e.call_counts();
        prop_assert_eq!(cx, nx);
        prop_assert_eq!(cy, ny);
        // Tiles-per-call sums to the space size.
        prop_assert_eq!(e.tiles_per_call.iter().sum::<usize>(), nx * ny);
    }

    #[test]
    fn merge_scan_triangular_is_locally_extraction_optimal(
        total in 10usize..80,
        chunk in 2usize..10,
    ) {
        let fx = ScoringFunction::new(ScoreDecay::Linear, total, chunk).unwrap();
        let fy = ScoringFunction::new(ScoreDecay::Linear, total, chunk).unwrap();
        let space = TileSpace::new(fx, fy);
        let e = explore(
            Invocation::merge_scan_even(),
            Completion::Triangular,
            1,
            space.nx,
            space.ny,
        )
        .unwrap();
        prop_assert!(is_locally_extraction_optimal(&e.calls, &e.order, &space));
    }

    #[test]
    fn comparator_eval_is_consistent_with_compare(
        a in -50i64..50,
        b in -50i64..50,
    ) {
        let va = Value::Int(a);
        let vb = Value::Int(b);
        prop_assert_eq!(Comparator::Eq.eval(&va, &vb).unwrap(), a == b);
        prop_assert_eq!(Comparator::Lt.eval(&va, &vb).unwrap(), a < b);
        prop_assert_eq!(Comparator::Le.eval(&va, &vb).unwrap(), a <= b);
        prop_assert_eq!(Comparator::Gt.eval(&va, &vb).unwrap(), a > b);
        prop_assert_eq!(Comparator::Ge.eval(&va, &vb).unwrap(), a >= b);
    }

    #[test]
    fn the_optimal_tile_order_has_zero_inversions(
        total in 10usize..60,
        chunk in 2usize..10,
        decay_idx in 0usize..3,
    ) {
        use search_computing::model::{Adornment, AttributeDef, DataType, ServiceSchema, Tuple};
        use search_computing::model::CompositeTuple;
        let decay = match decay_idx {
            0 => ScoreDecay::Linear,
            1 => ScoreDecay::Quadratic,
            _ => ScoreDecay::Step { h: 2, high: 0.9, low: 0.1 },
        };
        let fx = ScoringFunction::new(decay, total, chunk).unwrap();
        let fy = ScoringFunction::new(ScoreDecay::Linear, total, chunk).unwrap();
        let space = TileSpace::new(fx, fy);
        // Emit one representative composite per tile, in optimal order:
        // the sequence must have no score-product inversions.
        let schema = ServiceSchema::new(
            "S",
            vec![AttributeDef::atomic("A", DataType::Int, Adornment::Output)],
        )
        .unwrap();
        let results: Vec<CompositeTuple> = space
            .optimal_order()
            .into_iter()
            .map(|t| {
                let x = Tuple::builder(&schema).score(fx.chunk_head_score(t.x)).build().unwrap();
                let y = Tuple::builder(&schema).score(fy.chunk_head_score(t.y)).build().unwrap();
                CompositeTuple::single("X", x).extend_with("Y", y)
            })
            .collect();
        prop_assert_eq!(score_product_inversions(&results), 0);
    }
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_input(src in ".{0,120}") {
        // Errors are fine; panics are not.
        let _ = search_computing::query::parse_query(&src);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        src in r#"(Select|where|and|as|ranking|top|[A-Za-z]{1,4}|[0-9]{1,4}|"[a-z]{0,3}"|[.,()<>=%]| ){0,40}"#
    ) {
        let _ = search_computing::query::parse_query(&src);
    }

    #[test]
    fn date_ordinal_round_trips(year in 1900i32..2100, month in 1u8..=12, day in 1u8..=31) {
        use search_computing::model::Date;
        let d = Date::new(year, month, day);
        prop_assert_eq!(Date::from_ordinal(d.ordinal()), d);
    }

    #[test]
    fn composite_merge_is_commutative_on_agreement(
        sa in 0.0f64..1.0,
        sb in 0.0f64..1.0,
    ) {
        use search_computing::model::{Adornment, AttributeDef, DataType, ServiceSchema, Tuple};
        use search_computing::model::CompositeTuple;
        let schema = ServiceSchema::new(
            "S",
            vec![AttributeDef::atomic("A", DataType::Int, Adornment::Output)],
        ).unwrap();
        let shared = Tuple::builder(&schema).score(0.5).build().unwrap();
        let ta = Tuple::builder(&schema).score(sa).build().unwrap();
        let tb = Tuple::builder(&schema).score(sb).build().unwrap();
        let left = CompositeTuple::single("C", shared.clone()).extend_with("A", ta);
        let right = CompositeTuple::single("C", shared).extend_with("B", tb);
        let lr = left.merge(&right).unwrap();
        let rl = right.merge(&left).unwrap();
        // Same atoms and components either way (order differs).
        for atom in ["C", "A", "B"] {
            prop_assert_eq!(lr.component(atom), rl.component(atom));
        }
        prop_assert!((lr.score_product() - rl.score_product()).abs() < 1e-12);
    }
}

#[test]
fn parser_accepts_what_display_prints() {
    // Display → parse round-trip on a query with every construct.
    use search_computing::prelude::*;
    let q = QueryBuilder::new()
        .atom("A", "SvcA")
        .atom("B", "SvcB")
        .pattern("Links", "A", "B")
        .select_const("A", "X", Comparator::Eq, Value::text("v"))
        .select_const("A", "G.S", Comparator::Gt, Value::Int(3))
        .join("A", "Y", Comparator::Eq, "B", "Z")
        .build()
        .unwrap();
    let printed = q.to_string();
    let reparsed = parse_query(&printed).unwrap();
    assert_eq!(reparsed.atoms, q.atoms);
    assert_eq!(reparsed.patterns, q.patterns);
    assert_eq!(reparsed.selections.len(), q.selections.len());
    assert_eq!(reparsed.joins.len(), q.joins.len());
}
