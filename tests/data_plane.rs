//! Zero-copy data plane invariants: identical seeds must produce
//! identical ranked output regardless of executor, and repeated seeded
//! runs must be byte-identical.
//!
//! These are the determinism guards for the shared-tuple refactor: if
//! interned symbols or `Arc`-shared chunks ever perturbed hashing,
//! iteration order, or score arithmetic, the ranked combinations would
//! drift and these tests would catch it.

use search_computing::plan::{JoinSpec, PlanNode, SelectionNode, ServiceNode};
use search_computing::prelude::*;
use search_computing::services::domains::travel;

/// The E1 travel plan of the bench harness (Fig. 2/3): Conference →
/// Weather → selection → (Flight ∥ Hotel) → parallel join.
fn e1_plan(seed: u64) -> (QueryPlan, ServiceRegistry) {
    let registry = travel::build_registry(seed).unwrap();
    let query = QueryBuilder::new()
        .atom("C", "Conference1")
        .atom("W", "Weather1")
        .atom("F", "Flight1")
        .atom("H", "Hotel1")
        .pattern("Forecast", "C", "W")
        .pattern("ReachedBy", "C", "F")
        .pattern("StayAt", "C", "H")
        .pattern("SameTrip", "F", "H")
        .select_const("C", "Topic", Comparator::Eq, Value::text("databases"))
        .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(26))
        .build()
        .unwrap();
    let joins = query.expanded_joins(&registry).unwrap();
    let same_trip: Vec<_> = joins
        .iter()
        .filter(|j| j.connects("F", "H"))
        .cloned()
        .collect();
    let mut plan = QueryPlan::new(query.clone());
    let c = plan.add(PlanNode::Service(ServiceNode::new("C", "Conference1")));
    let w = plan.add(PlanNode::Service(ServiceNode::new("W", "Weather1")));
    let sel = plan.add(PlanNode::Selection(
        SelectionNode::new(vec![query.selections[1].clone()]).with_selectivity(0.25),
    ));
    let f = plan.add(PlanNode::Service(
        ServiceNode::new("F", "Flight1").with_fetches(2),
    ));
    let h = plan.add(PlanNode::Service(
        ServiceNode::new("H", "Hotel1").with_fetches(2),
    ));
    let j = plan.add(PlanNode::ParallelJoin(JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        predicates: same_trip,
        selectivity: 1.0,
    }));
    plan.connect(plan.input(), c).unwrap();
    plan.connect(c, w).unwrap();
    plan.connect(w, sel).unwrap();
    plan.connect(sel, f).unwrap();
    plan.connect(sel, h).unwrap();
    plan.connect(f, j).unwrap();
    plan.connect(h, j).unwrap();
    plan.connect(j, plan.output()).unwrap();
    (plan, registry)
}

/// Canonically ranked, fully materialized output: score-descending with
/// the components' source ranks as a deterministic tiebreak, rendered
/// to owned rows. Two runs agree iff these byte-render identically.
fn ranked_render(query: &Query, results: &[CompositeTuple]) -> Vec<String> {
    let weights = query.ranking.weights();
    let mut ranked: Vec<&CompositeTuple> = results.iter().collect();
    ranked.sort_by(|a, b| {
        b.global_score(weights)
            .partial_cmp(&a.global_score(weights))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                let ka: Vec<usize> = a.components.iter().map(|t| t.source_rank).collect();
                let kb: Vec<usize> = b.components.iter().map(|t| t.source_rank).collect();
                ka.cmp(&kb)
            })
    });
    ranked
        .iter()
        .map(|c| format!("{:.12}|{:?}", c.global_score(weights), c.materialize()))
        .collect()
}

#[test]
fn deterministic_and_parallel_executors_rank_identically_on_e1() {
    let (plan, registry) = e1_plan(5);
    let opts = EngineConfig {
        join_k: 10,
        ..Default::default()
    };
    let sequential = execute_plan(&plan, &registry, opts).unwrap();
    let (plan2, registry2) = e1_plan(5);
    let parallel = execute_parallel(&plan2, &registry2, opts).unwrap();
    let seq_render = ranked_render(&plan.query, &sequential.results);
    let par_render = ranked_render(&plan2.query, &parallel);
    assert!(!seq_render.is_empty(), "E1 must produce combinations");
    assert_eq!(
        seq_render, par_render,
        "same seeds must yield identical ranked combinations on both executors"
    );
}

#[test]
fn seeded_e1_runs_are_byte_identical() {
    let opts = EngineConfig {
        join_k: 10,
        ..Default::default()
    };
    let (plan_a, reg_a) = e1_plan(5);
    let (plan_b, reg_b) = e1_plan(5);
    let a = execute_plan(&plan_a, &reg_a, opts).unwrap();
    let b = execute_plan(&plan_b, &reg_b, opts).unwrap();
    // Emission order itself is deterministic for the sequential
    // executor, not just the ranked view.
    let render = |o: &[CompositeTuple]| -> Vec<String> {
        o.iter().map(|c| format!("{:?}", c.materialize())).collect()
    };
    assert_eq!(render(&a.results), render(&b.results));
    assert_eq!(
        ranked_render(&plan_a.query, &a.results),
        ranked_render(&plan_b.query, &b.results)
    );
    // A different seed genuinely changes the data (the guard is not
    // vacuous).
    let (plan_c, reg_c) = e1_plan(7);
    let c = execute_plan(&plan_c, &reg_c, opts).unwrap();
    assert_ne!(render(&a.results), render(&c.results));
}

#[test]
fn columnar_and_row_planes_are_byte_identical_on_e1() {
    // The columnar chunk plane (typed columns + vectorized predicate
    // kernels) must reproduce the row-at-a-time baseline exactly:
    // same emission order, same calls, same virtual time, and the
    // same number of judged candidates — on both executors.
    let render = |o: &[CompositeTuple]| -> Vec<String> {
        o.iter().map(|c| format!("{:?}", c.materialize())).collect()
    };
    let col_cfg = EngineConfig::default().join_k(10);
    let row_cfg = col_cfg.columnar(false).batch_eval(false);
    let (plan_a, reg_a) = e1_plan(5);
    let (plan_b, reg_b) = e1_plan(5);
    let col = execute_plan(&plan_a, &reg_a, col_cfg).unwrap();
    let row = execute_plan(&plan_b, &reg_b, row_cfg).unwrap();
    assert_eq!(render(&col.results), render(&row.results));
    assert_eq!(col.total_calls, row.total_calls);
    assert_eq!(col.critical_ms, row.critical_ms);
    assert_eq!(
        col.join_stats.predicate_evals,
        row.join_stats.predicate_evals
    );
    // The default plane actually exercises the batch kernels and the
    // row plane never touches them.
    assert!(col.join_stats.batch_evals > 0, "{:?}", col.join_stats);
    assert!(col.join_stats.columns_scanned > 0);
    assert_eq!(row.join_stats.batch_evals, 0);
    assert_eq!(row.join_stats.columns_scanned, 0);

    // Pipelined executor: same combinations under either plane.
    let (plan_c, reg_c) = e1_plan(5);
    let (plan_d, reg_d) = e1_plan(5);
    let par_col = execute_parallel(&plan_c, &reg_c, col_cfg).unwrap();
    let par_row = execute_parallel(&plan_d, &reg_d, row_cfg).unwrap();
    assert_eq!(
        ranked_render(&plan_c.query, &par_col),
        ranked_render(&plan_d.query, &par_row)
    );
}
