//! Correctness of the two top-k kernels added to the join layer:
//!
//! * the **rank join** must return exactly the first `k` entries of the
//!   score-sorted full enumeration (not just "k good tuples"), for any
//!   invocation, completion, decay, chunking, and index mode;
//! * the **n-ary kernel** must be *byte-identical* to the binary
//!   cascade it replaces — same combinations in the same emission
//!   order — across the same grid of join methods the hash-index suite
//!   uses, while materializing no intermediate composites;
//! * both engine executors must honor the `rank_join` / `nary_join`
//!   configuration flags end to end.

use search_computing::join::executor::{MemoryStream, ParallelJoinExecutor};
use search_computing::join::{
    score_order, ColumnarOptions, JoinIndexMode, JoinIndexOptions, NaryJoin, NaryStage, RankJoin,
};
use search_computing::plan::{JoinSpec, PlanNode, ServiceNode};
use search_computing::prelude::*;
use search_computing::query::predicate::{ResolvedPredicate, SchemaMap};
use search_computing::query::{JoinPredicate, QualifiedPath};
use seco_bench::star_scenario;
use seco_model::{
    Adornment, AttributeDef, AttributePath, DataType, ScoringFunction, ServiceSchema, Tuple,
};

const OFF: JoinIndexOptions = JoinIndexOptions {
    mode: JoinIndexMode::Off,
    tile_prune: false,
};
const HASH: JoinIndexOptions = JoinIndexOptions {
    mode: JoinIndexMode::Hash,
    tile_prune: false,
};
const HASH_PRUNED: JoinIndexOptions = JoinIndexOptions {
    mode: JoinIndexMode::Hash,
    tile_prune: true,
};

fn schema(name: &str) -> ServiceSchema {
    ServiceSchema::new(
        name,
        vec![
            AttributeDef::atomic("City", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
        ],
    )
    .unwrap()
}

/// A ranked stream of `n` single-atom composites: scores follow the
/// decay model (non-increasing, as search services emit), join keys
/// cycle through `modulus` cities shifted by `phase`.
fn stream_data(
    atom: &str,
    schema: &ServiceSchema,
    n: usize,
    decay: ScoreDecay,
    modulus: usize,
    phase: usize,
) -> Vec<CompositeTuple> {
    let f = ScoringFunction::new(decay, n, 2).unwrap();
    (0..n)
        .map(|i| {
            let t = Tuple::builder(schema)
                .set(
                    "City",
                    Value::Text(format!("city-{}", (i + phase) % modulus)),
                )
                .set("Score", Value::float(f.score_at(i)))
                .score(f.score_at(i))
                .source_rank(i)
                .build()
                .unwrap();
            CompositeTuple::single(atom, t)
        })
        .collect()
}

fn eq_pred(la: &str, ra: &str) -> ResolvedPredicate {
    ResolvedPredicate::Join(JoinPredicate {
        left: QualifiedPath::new(la, AttributePath::atomic("City")),
        op: Comparator::Eq,
        right: QualifiedPath::new(ra, AttributePath::atomic("City")),
    })
}

/// Seeded property test: for random decays, sizes, chunkings, join
/// methods, and index modes, the rank join's output at k ∈ {1, 5, 20}
/// equals the first k entries of the full enumeration sorted by the
/// canonical score order — ties included, bound checks performed.
#[test]
fn rank_join_top_k_is_the_sorted_enumeration_prefix() {
    let sa = schema("A1");
    let sb = schema("B1");
    let preds = vec![eq_pred("A", "B")];
    let mut schemas = SchemaMap::new();
    schemas.insert("A".into(), &sa);
    schemas.insert("B".into(), &sb);

    // xorshift64*, fully determined by the seed.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let decays = [
        ScoreDecay::Linear,
        ScoreDecay::Quadratic,
        ScoreDecay::Step {
            h: 2,
            high: 0.9,
            low: 0.1,
        },
    ];
    let invocations = [
        Invocation::NestedLoop,
        Invocation::merge_scan_even(),
        Invocation::MergeScan { r1: 1, r2: 3 },
    ];
    let completions = [Completion::Rectangular, Completion::Triangular];

    for trial in 0..12 {
        let dx = decays[(next() % 3) as usize];
        let dy = decays[(next() % 3) as usize];
        let na = 16 + (next() % 32) as usize;
        let nb = 16 + (next() % 32) as usize;
        let modulus = 2 + (next() % 5) as usize;
        let chunk = 2 + (next() % 5) as usize;
        let inv = invocations[(next() % 3) as usize];
        let comp = completions[(next() % 2) as usize];
        let options = if next() % 2 == 0 { OFF } else { HASH };
        let a = stream_data("A", &sa, na, dx, modulus, 0);
        let b = stream_data("B", &sb, nb, dy, modulus, (next() % 3) as usize);

        // The reference: exhaustive enumeration, canonically sorted.
        let full = ParallelJoinExecutor {
            predicates: &preds,
            schemas: &schemas,
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            h: 1,
            k: 0,
            options: OFF,
            columnar: ColumnarOptions::default(),
            pool: None,
        };
        let mut sx = MemoryStream::new(a.clone(), chunk);
        let mut sy = MemoryStream::new(b.clone(), chunk);
        let mut baseline = full.run(&mut sx, &mut sy).unwrap().results;
        baseline.sort_by(score_order);

        for k in [1usize, 5, 20] {
            let rj = RankJoin {
                join: ParallelJoinExecutor {
                    invocation: inv,
                    completion: comp,
                    k,
                    options,
                    pool: None,
                    ..full
                },
                space: None,
            };
            let mut sx = MemoryStream::new(a.clone(), chunk);
            let mut sy = MemoryStream::new(b.clone(), chunk);
            let out = rj.run(&mut sx, &mut sy).unwrap();
            let want: Vec<_> = baseline.iter().take(k).cloned().collect();
            assert_eq!(
                out.results, want,
                "trial {trial}: k={k} na={na} nb={nb} modulus={modulus} \
                 chunk={chunk} inv={inv:?} comp={comp:?}"
            );
            assert!(out.stats.bound_checks > 0, "trial {trial}: no bound checks");
            assert_eq!(out.stats.chunks_fetched, (out.calls_x + out.calls_y) as u64);
        }
    }
}

/// The reference for the n-ary kernel: two chained binary runs with
/// identical parameters, the middle materialized as usual.
#[allow(clippy::too_many_arguments)]
fn cascade(
    schemas: &SchemaMap<'_>,
    groups: (&[CompositeTuple], &[CompositeTuple], &[CompositeTuple]),
    p1: &[ResolvedPredicate],
    p2: &[ResolvedPredicate],
    invocation: Invocation,
    completion: Completion,
    k: usize,
    chunk: usize,
    options: JoinIndexOptions,
) -> Vec<CompositeTuple> {
    let e1 = ParallelJoinExecutor {
        predicates: p1,
        schemas,
        invocation,
        completion,
        h: 1,
        k,
        options,
        columnar: ColumnarOptions::default(),
        pool: None,
    };
    let mut sa = MemoryStream::new(groups.0.to_vec(), chunk);
    let mut sb = MemoryStream::new(groups.1.to_vec(), chunk);
    let mid = e1.run(&mut sa, &mut sb).unwrap().results;
    let e2 = ParallelJoinExecutor {
        predicates: p2,
        ..e1
    };
    let mut sm = MemoryStream::new(mid, chunk);
    let mut sc = MemoryStream::new(groups.2.to_vec(), chunk);
    e2.run(&mut sm, &mut sc).unwrap().results
}

/// Across the hash-index suite's grid of decays × invocations ×
/// completions × k × chunk sizes — with and without tile pruning — the
/// n-ary kernel must emit exactly what the binary cascade emits, while
/// eliding the intermediate composites the cascade materializes.
#[test]
fn nary_kernel_is_byte_identical_to_the_cascade_across_the_grid() {
    let sa = schema("A1");
    let sb = schema("B1");
    let sc = schema("C1");
    let mut schemas = SchemaMap::new();
    schemas.insert("A".into(), &sa);
    schemas.insert("B".into(), &sb);
    schemas.insert("C".into(), &sc);
    let p1 = vec![eq_pred("A", "B")];
    let p2 = vec![eq_pred("B", "C")];

    let decays = [
        (ScoreDecay::Linear, ScoreDecay::Quadratic),
        (
            ScoreDecay::Step {
                h: 2,
                high: 0.9,
                low: 0.1,
            },
            ScoreDecay::Linear,
        ),
    ];
    let invocations = [
        Invocation::NestedLoop,
        Invocation::merge_scan_even(),
        Invocation::MergeScan { r1: 1, r2: 3 },
    ];
    let completions = [Completion::Rectangular, Completion::Triangular];

    for &(da, db) in &decays {
        let a = stream_data("A", &sa, 18, da, 3, 0);
        let b = stream_data("B", &sb, 15, db, 3, 1);
        let c = stream_data("C", &sc, 21, ScoreDecay::Linear, 4, 2);
        for &inv in &invocations {
            for &comp in &completions {
                for &k in &[0usize, 7] {
                    for &chunk in &[3usize, 5] {
                        for &(options, prune) in &[(HASH, false), (HASH_PRUNED, true)] {
                            let want = cascade(
                                &schemas,
                                (&a, &b, &c),
                                &p1,
                                &p2,
                                inv,
                                comp,
                                k,
                                chunk,
                                options,
                            );
                            let stage = |preds| NaryStage {
                                predicates: preds,
                                invocation: inv,
                                completion: comp,
                                h: 1,
                                k,
                                left_chunk: chunk,
                                right_chunk: chunk,
                            };
                            let nj = NaryJoin {
                                schemas: &schemas,
                                tile_prune: prune,
                                pool: None,
                            };
                            let out = nj
                                .run(
                                    &[a.clone(), b.clone(), c.clone()],
                                    &[stage(&p1), stage(&p2)],
                                )
                                .unwrap()
                                .expect("disjoint 3-way chain is eligible");
                            assert_eq!(
                                out.results, want,
                                "da={da:?} db={db:?} inv={inv:?} comp={comp:?} \
                                 k={k} chunk={chunk} prune={prune}"
                            );
                            if k == 0 && !want.is_empty() {
                                assert!(
                                    out.stats.intermediates_elided > 0,
                                    "a non-empty full run must elide intermediates"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// A left-deep chain over three independently reachable star services:
/// `(A1 ⋈ A2) ⋈ A3`, the shape the engine's fusion pass recognizes.
fn star_chain_plan(seed: u64) -> (QueryPlan, ServiceRegistry) {
    let (registry, query) = star_scenario(3, seed);
    let joins = query.expanded_joins(&registry).unwrap();
    let pick = |x: &str, y: &str| -> Vec<_> {
        joins.iter().filter(|j| j.connects(x, y)).cloned().collect()
    };
    let mut plan = QueryPlan::new(query.clone());
    let s1 = plan.add(PlanNode::Service(
        ServiceNode::new("A1", "Star1").with_fetches(3),
    ));
    let s2 = plan.add(PlanNode::Service(
        ServiceNode::new("A2", "Star2").with_fetches(3),
    ));
    let s3 = plan.add(PlanNode::Service(
        ServiceNode::new("A3", "Star3").with_fetches(3),
    ));
    let j1 = plan.add(PlanNode::ParallelJoin(JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        predicates: pick("A1", "A2"),
        selectivity: 1.0,
    }));
    let j2 = plan.add(PlanNode::ParallelJoin(JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        predicates: pick("A1", "A3"),
        selectivity: 1.0,
    }));
    plan.connect(plan.input(), s1).unwrap();
    plan.connect(plan.input(), s2).unwrap();
    plan.connect(plan.input(), s3).unwrap();
    plan.connect(s1, j1).unwrap();
    plan.connect(s2, j1).unwrap();
    plan.connect(j1, j2).unwrap();
    plan.connect(s3, j2).unwrap();
    plan.connect(j2, plan.output()).unwrap();
    (plan, registry)
}

/// Both engine executors must produce byte-identical results with the
/// n-ary fusion on, with the same service-call totals, while actually
/// eliding the chain's intermediate composites.
#[test]
fn engine_fuses_left_deep_chains_byte_identically() {
    let cfg = |nary: bool| EngineConfig {
        join_k: 10,
        nary_join: nary,
        ..Default::default()
    };
    let (plan, registry) = star_chain_plan(11);
    let base = execute_plan(&plan, &registry, cfg(false)).unwrap();
    let (plan, registry) = star_chain_plan(11);
    let fused = execute_plan(&plan, &registry, cfg(true)).unwrap();
    assert!(!base.results.is_empty(), "chain must produce combinations");
    assert_eq!(base.results, fused.results);
    assert_eq!(base.total_calls, fused.total_calls);
    assert_eq!(base.join_stats.intermediates_elided, 0);
    assert!(fused.join_stats.intermediates_elided > 0);

    let (plan, registry) = star_chain_plan(11);
    let par_base = execute_parallel_with(&plan, &registry, cfg(false)).unwrap();
    let (plan, registry) = star_chain_plan(11);
    let par_fused = execute_parallel_with(&plan, &registry, cfg(true)).unwrap();
    // The two executors chunk their buffered branches differently, so
    // they are only compared against themselves, never each other —
    // the same contract the hash-index suite checks.
    assert_eq!(par_base.results, par_fused.results);
    assert!(!par_base.results.is_empty());
    assert!(par_fused.join_stats.intermediates_elided > 0);
}

/// With `rank_join` on, both executors must return the true top-k of
/// the join — the prefix of the full enumeration under the canonical
/// score order — not the first k emitted.
#[test]
fn engine_rank_join_returns_the_true_top_k() {
    let star_pair_plan = |seed: u64| -> (QueryPlan, ServiceRegistry) {
        let (registry, query) = star_scenario(2, seed);
        let joins = query.expanded_joins(&registry).unwrap();
        let mut plan = QueryPlan::new(query.clone());
        let s1 = plan.add(PlanNode::Service(
            ServiceNode::new("A1", "Star1").with_fetches(4),
        ));
        let s2 = plan.add(PlanNode::Service(
            ServiceNode::new("A2", "Star2").with_fetches(4),
        ));
        let j = plan.add(PlanNode::ParallelJoin(JoinSpec {
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Rectangular,
            predicates: joins,
            selectivity: 1.0,
        }));
        plan.connect(plan.input(), s1).unwrap();
        plan.connect(plan.input(), s2).unwrap();
        plan.connect(s1, j).unwrap();
        plan.connect(s2, j).unwrap();
        plan.connect(j, plan.output()).unwrap();
        (plan, registry)
    };

    // The reference: exhaustive run, canonically sorted.
    let (plan, registry) = star_pair_plan(7);
    let full = execute_plan(
        &plan,
        &registry,
        EngineConfig {
            join_k: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let mut want = full.results.clone();
    want.sort_by(score_order);
    let k = 5usize;
    assert!(want.len() > k, "reference must overfill k");
    want.truncate(k);

    let cfg = EngineConfig {
        join_k: k,
        rank_join: true,
        ..Default::default()
    };
    let (plan, registry) = star_pair_plan(7);
    let ranked = execute_plan(&plan, &registry, cfg.clone()).unwrap();
    assert_eq!(ranked.results, want);
    assert!(ranked.join_stats.bound_checks > 0);
    assert!(
        ranked.join_stats.chunks_fetched > 0,
        "rank join must report its chunk pulls"
    );

    let (plan, registry) = star_pair_plan(7);
    let par_ranked = execute_parallel_with(&plan, &registry, cfg).unwrap();
    assert_eq!(par_ranked.results, want);
    assert!(par_ranked.join_stats.bound_checks > 0);
}
