//! Adaptive re-optimization, end to end: runtime observations bump the
//! registry statistics epoch, the epoch invalidates cached plans, and
//! the engine's mid-flight suffix re-plan converges to the plan an
//! informed optimizer would have chosen from the start.
//!
//! The workload is [`seco_bench::adaptive_registry`]: a hub whose
//! declared cardinality understates the truth by 10×, plus a `Leaf`
//! mart with a cheap-per-call pipe access path (optimal under the lie)
//! and a bulk scan (optimal under the truth).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use search_computing::prelude::*;
use seco_bench::{adaptive_query, adaptive_registry};
use seco_optimizer::PlanCache;
use seco_services::DeviationPolicy;

const SEED: u64 = 7;
const MISESTIMATE: f64 = 10.0;

/// A promotion rolls the statistics epoch, so a cached plan stops
/// matching: the next optimization misses, re-searches under the
/// observed statistics, and re-caches under the new epoch.
#[test]
fn stats_epoch_bump_invalidates_the_plan_cache() {
    let registry = adaptive_registry(SEED, MISESTIMATE);
    let query = adaptive_query();
    let cache = Arc::new(PlanCache::new());
    let mut optimizer = Optimizer::new(&registry, CostMetric::ExecutionTime);
    optimizer.cache = Some(cache.clone());

    let first = optimizer.optimize(&query).expect("misled optimize");
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(cache.len(), 1);
    let hit = optimizer.optimize(&query).expect("cached optimize");
    assert_eq!(hit.stats.cache_hits, 1, "same epoch must hit the cache");
    assert_eq!(hit.plan.canonical_key(), first.plan.canonical_key());

    // Run the bad plan, observe the hub's true cardinality, promote.
    let epoch_before = registry.stats_epoch();
    execute_plan(&first.plan, &registry, EngineConfig::default()).expect("baseline run");
    let promoted = registry.promote_deviations(&DeviationPolicy {
        threshold: 5.0,
        min_samples: 1,
    });
    assert!(
        promoted.iter().any(|s| s == "Hub1"),
        "the 10x-misdeclared hub must be promoted, got {promoted:?}"
    );
    assert_ne!(
        registry.stats_epoch(),
        epoch_before,
        "promotion rolls the epoch"
    );

    // The old entry is stale: miss, re-search, re-cache under the new
    // epoch — and the re-search lands on the scan plan.
    let replanned = optimizer.optimize(&query).expect("post-promotion optimize");
    assert_eq!(replanned.stats.cache_hits, 0, "stale epoch must miss");
    assert_eq!(replanned.stats.cache_inserts, 1);
    assert_eq!(cache.len(), 2, "both epochs keep their entries");
    assert_ne!(
        replanned.plan.canonical_key(),
        first.plan.canonical_key(),
        "promoted statistics must change the winning plan"
    );

    let informed = optimize(
        &query,
        &adaptive_registry(SEED, 1.0),
        CostMetric::ExecutionTime,
    )
    .expect("informed optimize");
    assert_eq!(
        replanned.plan.canonical_key(),
        informed.plan.canonical_key()
    );
}

/// With no observation past the threshold, `replan_suffix` returns the
/// original plan byte-identically — no search, no replan counted.
#[test]
fn replan_suffix_without_deviation_is_byte_identical() {
    let registry = adaptive_registry(SEED, MISESTIMATE);
    let query = adaptive_query();
    let optimizer = Optimizer::new(&registry, CostMetric::ExecutionTime);
    let best = optimizer.optimize(&query).expect("optimize");

    let executed: BTreeSet<String> = ["H".to_owned()].into();
    let observed: BTreeMap<String, (f64, f64)> = [("H".to_owned(), (2.0, 2.0))].into();
    let same = optimizer
        .replan_suffix(&best.plan, &executed, &observed)
        .expect("replan_suffix");
    assert_eq!(
        same.plan, best.plan,
        "unchanged observations: byte-identical plan"
    );
    assert_eq!(same.stats.replans, 0);
    assert_eq!(same.stats.topologies, 0, "no search may have run");
}

/// The adaptive engine executing the misled plan re-plans mid-flight
/// and finishes on the informed plan at the informed cost.
#[test]
fn adaptive_engine_converges_to_the_informed_plan() {
    let query = adaptive_query();
    let metric = CostMetric::ExecutionTime;

    let informed_reg = adaptive_registry(SEED, 1.0);
    let informed = optimize(&query, &informed_reg, metric).expect("informed optimize");
    let informed_run =
        execute_plan(&informed.plan, &informed_reg, EngineConfig::default()).expect("informed run");

    let adaptive_reg = adaptive_registry(SEED, MISESTIMATE);
    let misled = optimize(&query, &adaptive_reg, metric).expect("misled optimize");
    assert_ne!(misled.plan.canonical_key(), informed.plan.canonical_key());

    let config = EngineConfig::default()
        .adaptive(true)
        .adaptive_metric(metric);
    let run = execute_plan(&misled.plan, &adaptive_reg, config).expect("adaptive run");
    assert!(run.replans >= 1, "the deviation checkpoint must fire");
    let final_plan = run.replanned.as_ref().expect("replanned plan recorded");
    assert_eq!(final_plan.canonical_key(), informed.plan.canonical_key());
    assert_eq!(
        run.results, informed_run.results,
        "same answers as the informed run"
    );
    assert!(
        run.critical_ms <= informed_run.critical_ms * 1.2,
        "adaptive {} ms vs informed {} ms",
        run.critical_ms,
        informed_run.critical_ms
    );
    assert!(adaptive_reg.epoch_invalidations() >= 1);
}
