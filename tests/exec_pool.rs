//! Morsel-executor determinism, end to end.
//!
//! The scheduler contract is byte-identity: at any `--exec-workers`
//! count, both executors must produce exactly the output of the serial
//! path — same tuples, same order, same join counters — because tile
//! decomposition only fans out each tile's row loop and a deterministic
//! ordered reducer stitches the segments back in row order. These tests
//! pin that contract on the two flagship experiments (E1's travel plan
//! and E10's running example) and prove that no pool thread outlives
//! the [`SharedState`] that owns it.

use search_computing::prelude::*;
use search_computing::query::builder::running_example;
use search_computing::services::domains::{entertainment, travel};

/// The E1 query (Fig. 2/3): Conference × Weather × Flight × Hotel.
fn e1_query() -> Query {
    QueryBuilder::new()
        .atom("C", "Conference1")
        .atom("W", "Weather1")
        .atom("F", "Flight1")
        .atom("H", "Hotel1")
        .pattern("Forecast", "C", "W")
        .pattern("ReachedBy", "C", "F")
        .pattern("StayAt", "C", "H")
        .pattern("SameTrip", "F", "H")
        .select_const("C", "Topic", Comparator::Eq, Value::text("databases"))
        .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(26))
        .build()
        .unwrap()
}

/// Runs `query` through both executors at each worker count and
/// asserts every output is byte-identical to the serial (`workers=1`)
/// reference — results, degradations, and join counters alike.
fn assert_identical_across_workers(registry: &ServiceRegistry, query: &Query) {
    let best = optimize(query, registry, CostMetric::RequestCount).unwrap();
    let config = |w: usize| EngineConfig::default().exec_workers(w);

    let det_ref = execute_plan(&best.plan, registry, config(1)).unwrap();
    let par_ref = execute_parallel_with(&best.plan, registry, config(1)).unwrap();
    assert!(!det_ref.results.is_empty(), "reference run must answer");

    for workers in [2usize, 8] {
        let det = execute_plan(&best.plan, registry, config(workers)).unwrap();
        assert_eq!(
            det.results, det_ref.results,
            "deterministic executor diverged at {workers} workers"
        );
        assert_eq!(
            det.join_stats, det_ref.join_stats,
            "deterministic join counters diverged at {workers} workers"
        );
        let par = execute_parallel_with(&best.plan, registry, config(workers)).unwrap();
        assert_eq!(
            par.results, par_ref.results,
            "pipelined executor diverged at {workers} workers"
        );
        assert_eq!(
            par.join_stats, par_ref.join_stats,
            "pipelined join counters diverged at {workers} workers"
        );
    }
}

#[test]
fn e1_travel_plan_is_byte_identical_across_exec_workers() {
    let registry = travel::build_registry(5).unwrap();
    assert_identical_across_workers(&registry, &e1_query());
}

#[test]
fn e10_running_example_is_byte_identical_across_exec_workers() {
    let registry = entertainment::build_registry(1).unwrap();
    assert_identical_across_workers(&registry, &running_example());
}

#[test]
fn no_worker_threads_outlive_shared_state_shutdown() {
    let registry = entertainment::build_registry(1).unwrap();
    let query = running_example();
    let best = optimize(&query, &registry, CostMetric::RequestCount).unwrap();
    let shared = SharedState::for_daemon(4);
    let pool = shared
        .exec_pool()
        .expect("daemon state owns a pool")
        .clone();
    assert_eq!(pool.threads_alive(), 4);
    // A full pipelined session exercises every pool tier: plan-node
    // tasks on the blocking tier, morsels and detached prefetch
    // speculation on the compute tier.
    let opts = EngineConfig::default()
        .exec_workers(4)
        .cache_shards(4)
        .prefetch(true);
    let out = execute_parallel_session(&best.plan, &registry, opts, Some(&shared), None).unwrap();
    assert!(!out.results.is_empty());
    shared.shutdown();
    assert_eq!(
        pool.threads_alive(),
        0,
        "compute and blocking tiers must both join on shutdown"
    );
    // Idempotent: a second shutdown (or the drop) is a no-op.
    shared.shutdown();
    assert_eq!(pool.threads_alive(), 0);
}
