//! Stress test: the pipelined executor's bounded channels (capacity
//! 256 per arc) must sustain volumes far above capacity without
//! deadlock, and agree with the deterministic executor.

use std::sync::Arc;

use search_computing::model::{
    Adornment, AttributeDef, AttributePath, Comparator, DataType, ScoreDecay, ServiceInterface,
    ServiceKind, ServiceSchema, ServiceStats, Value,
};
use search_computing::plan::{PlanNode, QueryPlan, ServiceNode};
use search_computing::prelude::*;
use search_computing::services::synthetic::{DomainMap, SyntheticService, ValueDomain};

/// A wide source (2000 tuples) piped into a per-tuple lookup: more than
/// seven channel-capacities of composites flow through every arc.
fn registry() -> ServiceRegistry {
    let mut reg = ServiceRegistry::new();
    let keys = ValueDomain::new("key", 32);

    let src_schema = ServiceSchema::new(
        "Wide1",
        vec![
            AttributeDef::atomic("Seed", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Key", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Rank", DataType::Float, Adornment::Ranked),
        ],
    )
    .unwrap();
    let src = ServiceInterface::new(
        "Wide1",
        "Wide",
        src_schema,
        ServiceKind::Search,
        ServiceStats::new(2000.0, 500, 1.0, 1.0).unwrap(),
        ScoreDecay::Linear,
    )
    .unwrap();
    reg.register_service(Arc::new(SyntheticService::new(
        src,
        DomainMap::new().with(AttributePath::atomic("Key"), keys.clone()),
        3,
    )))
    .unwrap();

    let look_schema = ServiceSchema::new(
        "Lookup1",
        vec![
            AttributeDef::atomic("Key", DataType::Text, Adornment::Input),
            AttributeDef::atomic("Payload", DataType::Text, Adornment::Output),
        ],
    )
    .unwrap();
    let lookup = ServiceInterface::new(
        "Lookup1",
        "Lookup",
        look_schema,
        ServiceKind::Exact { chunked: false },
        ServiceStats::new(1.0, 1, 0.1, 1.0).unwrap(),
        ScoreDecay::Constant(1.0),
    )
    .unwrap();
    reg.register_service(Arc::new(SyntheticService::new(lookup, DomainMap::new(), 4)))
        .unwrap();
    reg
}

#[test]
fn pipelined_executor_survives_volumes_beyond_channel_capacity() {
    let reg = registry();
    let query = QueryBuilder::new()
        .atom("W", "Wide1")
        .atom("L", "Lookup1")
        .select_const("W", "Seed", Comparator::Eq, Value::text("s"))
        .join("W", "Key", Comparator::Eq, "L", "Key")
        .build()
        .unwrap();
    let mut plan = QueryPlan::new(query);
    let w = plan.add(PlanNode::Service(
        ServiceNode::new("W", "Wide1").with_fetches(4),
    ));
    let l = plan.add(PlanNode::Service(ServiceNode::new("L", "Lookup1")));
    plan.connect(plan.input(), w).unwrap();
    plan.connect(w, l).unwrap();
    plan.connect(l, plan.output()).unwrap();

    let sequential = execute_plan(&plan, &reg, EngineConfig::default()).unwrap();
    assert_eq!(
        sequential.results.len(),
        2000,
        "every wide tuple finds its lookup (echoed key)"
    );

    let parallel = execute_parallel(&plan, &reg, EngineConfig::default()).unwrap();
    assert_eq!(parallel.len(), sequential.results.len());
}
