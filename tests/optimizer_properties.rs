//! Property-style invariants of the optimizer stack, exercised over the
//! parameterized chain/star workload generators.

use search_computing::optimizer::exhaustive::optimize_exhaustive_with_costs;
use search_computing::plan::{annotate, AnnotationConfig, PlanNode};
use search_computing::prelude::*;
use seco_bench::{chain_scenario, star_scenario};

#[test]
fn bnb_matches_exhaustive_on_every_generated_scenario() {
    // §5.2: run to exhaustion, the returned plan is the optimal one —
    // so pruning must never change the optimum.
    for seed in [1u64, 7, 23] {
        for n in 2..=3 {
            for (label, scenario) in [
                ("chain", chain_scenario(n, seed)),
                ("star", star_scenario(n, seed)),
            ] {
                let (reg, query) = scenario;
                for metric in [CostMetric::RequestCount, CostMetric::ExecutionTime] {
                    let bnb = optimize(&query, &reg, metric)
                        .unwrap_or_else(|e| panic!("{label} n={n} seed={seed}: {e}"));
                    let (ex, costs) = optimize_exhaustive_with_costs(&query, &reg, metric).unwrap();
                    assert!(
                        (bnb.cost - ex.cost).abs() < 1e-9,
                        "{label} n={n} seed={seed} {metric}: bnb={} exhaustive={}",
                        bnb.cost,
                        ex.cost
                    );
                    // The optimum really is the minimum of all costed plans.
                    let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
                    assert!((min - ex.cost).abs() < 1e-9);
                }
            }
        }
    }
}

#[test]
fn annotation_is_monotone_in_every_fetch_factor() {
    // The bounding step's soundness rests on this (§5.2 monotonicity).
    let (reg, query) = star_scenario(3, 5);
    let best = optimize(&query, &reg, CostMetric::RequestCount).unwrap();
    let base = annotate(&best.plan, &reg, &AnnotationConfig::default()).unwrap();
    let base_cost = CostMetric::RequestCount
        .evaluate(&best.plan, &base, &reg)
        .unwrap();
    let base_time = CostMetric::ExecutionTime
        .evaluate(&best.plan, &base, &reg)
        .unwrap();
    for id in best.plan.node_ids().collect::<Vec<_>>() {
        let mut bumped = best.plan.clone();
        let is_service = matches!(bumped.node(id), Ok(PlanNode::Service(_)));
        if !is_service {
            continue;
        }
        if let PlanNode::Service(s) = bumped.node_mut(id).unwrap() {
            s.fetches += 2;
        }
        let ann = annotate(&bumped, &reg, &AnnotationConfig::default()).unwrap();
        assert!(
            ann.output_tuples >= base.output_tuples - 1e-9,
            "more fetches must never lose estimated answers"
        );
        let cost = CostMetric::RequestCount
            .evaluate(&bumped, &ann, &reg)
            .unwrap();
        let time = CostMetric::ExecutionTime
            .evaluate(&bumped, &ann, &reg)
            .unwrap();
        assert!(
            cost >= base_cost - 1e-9,
            "request count must be monotone in F"
        );
        assert!(
            time >= base_time - 1e-9,
            "execution time must be monotone in F"
        );
    }
}

#[test]
fn optimized_plans_meet_k_or_the_whole_space_fails() {
    for seed in [2u64, 9] {
        let (reg, mut query) = star_scenario(3, seed);
        for k in [1usize, 5, 20] {
            query.k = k;
            match optimize(&query, &reg, CostMetric::RequestCount) {
                Ok(best) => assert!(
                    best.annotated.output_tuples >= k as f64,
                    "seed={seed} k={k}: plan estimates {} answers",
                    best.annotated.output_tuples
                ),
                Err(search_computing::optimizer::OptError::Unreachable {
                    best_estimate, ..
                }) => {
                    assert!(best_estimate < k as f64)
                }
                Err(e) => panic!("unexpected optimizer error: {e}"),
            }
        }
    }
}

#[test]
fn star_queries_execute_end_to_end() {
    // Star plans contain nested parallel joins; execution must still
    // produce full-arity composites agreeing between both executors.
    let (reg, query) = star_scenario(3, 11);
    let best = optimize(&query, &reg, CostMetric::ExecutionTime).unwrap();
    let outcome = execute_plan(&best.plan, &reg, EngineConfig::default()).unwrap();
    for combo in &outcome.results {
        assert_eq!(combo.arity(), 3);
    }
    let par = execute_parallel(&best.plan, &reg, EngineConfig::default()).unwrap();
    assert_eq!(par.len(), outcome.results.len());
    // Soundness against the oracle.
    let oracle = evaluate_oracle(&query, &reg).unwrap();
    for combo in &outcome.results {
        assert!(oracle.iter().any(|o| {
            query
                .atoms
                .iter()
                .all(|a| o.component(&a.alias) == combo.component(&a.alias))
        }));
    }
}

#[test]
fn chain_queries_execute_end_to_end() {
    // The piped chain actually produces composites covering all atoms.
    for n in 2..=4 {
        let (reg, query) = chain_scenario(n, 11);
        let best = optimize(&query, &reg, CostMetric::Sum).unwrap();
        let outcome = execute_plan(&best.plan, &reg, EngineConfig::default()).unwrap();
        assert!(
            !outcome.results.is_empty(),
            "chain n={n} should produce results (link domain 16, 50% pattern selectivity)"
        );
        for combo in &outcome.results {
            assert_eq!(combo.arity(), n);
        }
        // The pipelined executor agrees.
        let par = execute_parallel(&best.plan, &reg, EngineConfig::default()).unwrap();
        assert_eq!(par.len(), outcome.results.len());
    }
}
