//! The Fig. 2 scenario: conferences, weather, flights, hotels.
//!
//! Builds the chapter's example plan (exact proliferative Conference,
//! Weather made selective in context by the `AvgTemp > 26` condition,
//! Flight and Hotel joined by merge-scan), annotates it (Fig. 3), and
//! executes it both deterministically and with the pipelined
//! multi-threaded executor.
//!
//! Run with: `cargo run --example conference_trip`

use search_computing::plan::{display, PlanNode, SelectionNode, ServiceNode};
use search_computing::prelude::*;
use search_computing::services::domains::travel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = travel::build_registry(11)?;

    let query = QueryBuilder::new()
        .atom("C", "Conference1")
        .atom("W", "Weather1")
        .atom("F", "Flight1")
        .atom("H", "Hotel1")
        .pattern("Forecast", "C", "W")
        .pattern("ReachedBy", "C", "F")
        .pattern("StayAt", "C", "H")
        .pattern("SameTrip", "F", "H")
        .select_const("C", "Topic", Comparator::Eq, Value::text("databases"))
        .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(26))
        .k(10)
        .build()?;
    println!("== The Fig. 2 trip-planning query ==\n{query}\n");

    // Build the Fig. 2 plan by hand (the optimizer would find an
    // equivalent one; the point here is to reproduce the figure).
    let joins = query.expanded_joins(&registry)?;
    let same_trip: Vec<_> = joins
        .iter()
        .filter(|j| j.connects("F", "H"))
        .cloned()
        .collect();
    let mut plan = QueryPlan::new(query.clone());
    let c = plan.add(PlanNode::Service(ServiceNode::new("C", "Conference1")));
    let w = plan.add(PlanNode::Service(ServiceNode::new("W", "Weather1")));
    let sel = plan.add(PlanNode::Selection(
        SelectionNode::new(vec![query.selections[1].clone()]).with_selectivity(0.25),
    ));
    let f = plan.add(PlanNode::Service(
        ServiceNode::new("F", "Flight1").with_fetches(2),
    ));
    let h = plan.add(PlanNode::Service(
        ServiceNode::new("H", "Hotel1").with_fetches(2),
    ));
    let j = plan.add(PlanNode::ParallelJoin(search_computing::plan::JoinSpec {
        invocation: Invocation::merge_scan_even(),
        completion: Completion::Rectangular,
        predicates: same_trip,
        selectivity: 1.0,
    }));
    plan.connect(plan.input(), c)?;
    plan.connect(c, w)?;
    plan.connect(w, sel)?;
    plan.connect(sel, f)?;
    plan.connect(sel, h)?;
    plan.connect(f, j)?;
    plan.connect(h, j)?;
    plan.connect(j, plan.output())?;

    // Fig. 3: the fully instantiated (annotated) plan.
    let annotated = annotate(&plan, &registry, &AnnotationConfig::default())?;
    println!("== Fig. 3: fully instantiated plan ==");
    println!("{}", display::ascii(&plan, Some(&annotated))?);

    // Deterministic execution.
    let outcome = execute_plan(&plan, &registry, EngineConfig::default().join_k(10))?;
    println!(
        "deterministic executor: {} combinations, {} calls, {:.0} virtual ms",
        outcome.results.len(),
        outcome.total_calls,
        outcome.critical_ms
    );
    println!("{}", outcome.trace);

    // Pipelined execution on real threads.
    let parallel = execute_parallel(&plan, &registry, EngineConfig::default().join_k(10))?;
    println!(
        "pipelined executor: {} combinations (same set)",
        parallel.len()
    );

    for combo in outcome.results.iter().take(5) {
        println!("  {combo}");
    }
    Ok(())
}
