//! The running example in full: Fig. 9 topologies, Fig. 10 annotations,
//! optimization under every metric, execution against the oracle.
//!
//! Run with: `cargo run --example night_out`

use search_computing::optimizer::exhaustive::optimize_exhaustive_with_costs;
use search_computing::plan::display;
use search_computing::prelude::*;
use search_computing::query::builder::running_example;
use search_computing::query::feasibility::analyze;
use search_computing::services::domains::entertainment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = entertainment::build_registry(7)?;
    let query = running_example();
    println!("== The §3.1 running example ==\n{query}\n");

    // Feasibility: which atom feeds which (§5.6's "I/O dependency from
    // Theatre to Restaurant").
    let report = analyze(&query, &registry)?;
    println!("invocation order: {:?}", report.order);
    println!("pipe edges: {:?}\n", report.pipe_edges);

    // Fig. 9: the admissible topologies.
    let topologies = search_computing::optimizer::phase2::enumerate_topologies(
        &query,
        &registry,
        &report,
        search_computing::optimizer::Phase2Heuristic::ParallelIsBetter,
        64,
    )?;
    println!("== Fig. 9: {} admissible topologies ==", topologies.len());
    for (i, t) in topologies.iter().enumerate() {
        println!(
            "  ({}) {}",
            (b'a' + i as u8) as char,
            display::summary_line(t)?
        );
    }
    println!();

    // Optimize under each of the five §5.1 metrics.
    println!("== §5.1: the best plan under each cost metric ==");
    for metric in CostMetric::all() {
        let best = optimize(&query, &registry, metric)?;
        println!(
            "  {metric:<15} cost={:<10.1} plan: {}",
            best.cost,
            display::summary_line(&best.plan)?
        );
    }
    println!();

    // The request-count winner, fully instantiated (Fig. 10's role).
    let best = optimize(&query, &registry, CostMetric::RequestCount)?;
    println!("== Fully instantiated best plan (request-count) ==");
    println!("{}", display::ascii(&best.plan, Some(&best.annotated))?);

    // How much did branch-and-bound save against exhaustive search?
    let (_, all_costs) =
        optimize_exhaustive_with_costs(&query, &registry, CostMetric::RequestCount)?;
    println!(
        "branch-and-bound instantiated {} of {} plans (pruned {}), exhaustive costed {}",
        best.stats.instantiated,
        best.stats.topologies,
        best.stats.pruned,
        all_costs.len()
    );

    // Execute and compare with the oracle.
    let outcome = execute_plan(&best.plan, &registry, EngineConfig::default())?;
    let oracle = evaluate_oracle(&query, &registry)?;
    println!(
        "\nexecution: {} combinations ({} in the oracle), {} calls, {:.0} virtual ms",
        outcome.results.len(),
        oracle.len(),
        outcome.total_calls,
        outcome.critical_ms
    );
    let results = ResultSet::new(outcome.results, query.ranking.clone());
    println!(
        "emission inversion rate: {:.3}",
        results.ranking_inversion_rate()
    );
    for combo in results.top_k(5) {
        println!("  score={:.3}  {combo}", query.ranking.score(&combo));
    }
    Ok(())
}
