//! Explores the optimizer's behaviour: the branch-and-bound statistics
//! of Fig. 8, the heuristic ablations of §5.3–§5.5, and the anytime
//! property ("the search can be stopped at any time and will
//! nevertheless return a valid solution").
//!
//! Run with: `cargo run --example optimizer_lab`

use search_computing::optimizer::exhaustive::optimize_exhaustive_with_costs;
use search_computing::optimizer::{HeuristicSet, Phase2Heuristic, Phase3Heuristic};
use search_computing::plan::display;
use search_computing::prelude::*;
use search_computing::query::builder::running_example;
use search_computing::services::domains::entertainment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = entertainment::build_registry(3)?;
    let query = running_example();

    println!("== Branch-and-bound vs exhaustive (Fig. 8 / E8) ==");
    for metric in CostMetric::all() {
        let bnb = optimize(&query, &registry, metric)?;
        let (ex, costs) = optimize_exhaustive_with_costs(&query, &registry, metric)?;
        println!(
            "  {metric:<15} optimum={:<10.1} bnb: instantiated {} / pruned {}  exhaustive: {} plans (same optimum: {})",
            bnb.cost,
            bnb.stats.instantiated,
            bnb.stats.pruned,
            costs.len(),
            (bnb.cost - ex.cost).abs() < 1e-9,
        );
    }

    println!("\n== Heuristic ablation (§5.4/§5.5, E12/E13) ==");
    for p2 in [
        Phase2Heuristic::ParallelIsBetter,
        Phase2Heuristic::SelectiveFirst,
    ] {
        for p3 in [Phase3Heuristic::Greedy, Phase3Heuristic::SquareIsBetter] {
            for metric in [CostMetric::RequestCount, CostMetric::ExecutionTime] {
                let mut opt = Optimizer::new(&registry, metric);
                opt.heuristics = HeuristicSet {
                    phase2: p2,
                    phase3: p3,
                    ..HeuristicSet::default()
                };
                // Anytime: only the first fully instantiated plan.
                opt.budget = Some(1);
                let first = opt.optimize(&query)?;
                opt.budget = None;
                let full = opt.optimize(&query)?;
                println!(
                    "  {p2:<18}/{p3:<16} {metric:<15} first-plan={:<9.1} optimum={:<9.1} gap={:.1}%",
                    first.cost,
                    full.cost,
                    (first.cost / full.cost - 1.0) * 100.0
                );
            }
        }
    }

    println!("\n== The winning plan under the execution-time metric ==");
    let best = optimize(&query, &registry, CostMetric::ExecutionTime)?;
    println!("{}", display::ascii(&best.plan, Some(&best.annotated))?);
    println!("estimated execution time: {:.0} ms", best.cost);

    let outcome = execute_plan(&best.plan, &registry, EngineConfig::default())?;
    println!(
        "measured (virtual) critical path: {:.0} ms with {} calls",
        outcome.critical_ms, outcome.total_calls
    );
    Ok(())
}
