//! Quickstart: parse a multi-domain query, optimize it, execute it.
//!
//! Run with: `cargo run --example quickstart`

use search_computing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A registry with the chapter's running-example services: Movie1
    // and Theatre1 (search services) and Restaurant1 (search, piped
    // from the theatre's address), plus the Shows and DinnerPlace
    // connection patterns.
    let registry = search_computing::services::domains::entertainment::build_registry(42)?;

    // The §3.1 running example in the chapter's concrete syntax, with
    // constants in place of INPUT variables.
    let query = parse_query(
        "Select Movie1 As M, Theatre1 as T, Restaurant1 as R \
         where Shows(M,T) and DinnerPlace(T,R) and \
         M.Genres.Genre=\"comedy\" and M.Openings.Country=\"country-0\" and \
         M.Openings.Date>2009-03-01 and M.Language=\"en\" and \
         T.UAddress=\"via Golgi 42\" and T.UCity=\"Milano\" and \
         T.UCountry=\"country-0\" and T.TCountry=\"country-0\" and \
         R.Category.Name=\"pizzeria\" ranking (0.3, 0.5, 0.2) top 10",
    )?;
    println!("query: {query}\n");

    // Optimize under the request-count metric (§5.1): the plan that
    // needs the fewest service calls to produce k = 10 combinations.
    let best = optimize(&query, &registry, CostMetric::RequestCount)?;
    println!(
        "optimizer explored {} topologies ({} instantiated, {} pruned), best cost = {:.0} calls",
        best.stats.topologies, best.stats.instantiated, best.stats.pruned, best.cost
    );
    println!(
        "{}",
        search_computing::plan::display::ascii(&best.plan, Some(&best.annotated))?
    );

    // Execute deterministically and rank the combinations.
    let outcome = execute_plan(&best.plan, &registry, EngineConfig::default())?;
    let results = ResultSet::new(outcome.results, query.ranking.clone());
    println!(
        "executed with {} request-responses, critical path {:.0} ms (virtual), {} combinations",
        outcome.total_calls,
        outcome.critical_ms,
        results.len()
    );
    for (i, combo) in results.top_k(10).iter().enumerate() {
        println!(
            "  #{:<2} score={:.3}  {combo}",
            i + 1,
            query.ranking.score(combo)
        );
    }
    Ok(())
}
