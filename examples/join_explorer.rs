//! Visualizes the §4 join strategies on the tile space of Fig. 4:
//! nested-loop vs merge-scan (Fig. 5), rectangular completions
//! including the degenerate thin rectangle (Fig. 6), and the square
//! growth of even merge-scan (Fig. 7).
//!
//! Run with: `cargo run --example join_explorer`

use search_computing::join::completion::explore;
use search_computing::join::optimality::{
    is_globally_extraction_optimal, is_locally_extraction_optimal,
};
use search_computing::join::tile::TileSpace;
use search_computing::model::{ScoreDecay, ScoringFunction};
use search_computing::prelude::*;

/// Renders the processing order of an `nx × ny` exploration as a grid
/// of per-tile ranks (0 = first processed).
fn grid(order: &[search_computing::join::Tile], nx: usize, ny: usize) -> String {
    let mut cells = vec![vec![usize::MAX; ny]; nx];
    for (rank, t) in order.iter().enumerate() {
        cells[t.x][t.y] = rank;
    }
    let mut out = String::new();
    for y in 0..ny {
        for column in cells.iter().take(nx) {
            out.push_str(&format!("{:>4}", column[y]));
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 5a: nested-loop (h = 3) on a 6×6 space ==");
    let nl = explore(Invocation::NestedLoop, Completion::Rectangular, 3, 6, 6)?;
    println!("{}", grid(&nl.order, 6, 6));

    println!("== Fig. 5b: merge-scan with triangular completion ==");
    let ms = explore(
        Invocation::merge_scan_even(),
        Completion::Triangular,
        1,
        6,
        6,
    )?;
    println!("{}", grid(&ms.order, 6, 6));

    println!("== Fig. 7: merge-scan (r = 1/1), rectangular — squares of growing size ==");
    let sq = explore(
        Invocation::merge_scan_even(),
        Completion::Rectangular,
        1,
        4,
        4,
    )?;
    println!("{}", grid(&sq.order, 4, 4));

    println!("== Fig. 6: the degenerate thin rectangle (every call adds one tile) ==");
    let thin = explore(Invocation::NestedLoop, Completion::Rectangular, 8, 8, 1)?;
    println!("tiles gained per call: {:?}\n", thin.tiles_per_call);

    println!("== §4.4: extraction-optimality of each strategy ==");
    let header = format!(
        "{:<34} {:>7} {:>7}  {}",
        "scoring (X axis)", "local", "global", "strategy"
    );
    println!("{header}");
    for (label, decay) in [
        (
            "step(h=2, 1→0) — the ideal step",
            ScoreDecay::Step {
                h: 2,
                high: 1.0,
                low: 0.0,
            },
        ),
        (
            "step(h=2, 0.95→0.1)",
            ScoreDecay::Step {
                h: 2,
                high: 0.95,
                low: 0.1,
            },
        ),
        ("linear (progressive)", ScoreDecay::Linear),
    ] {
        let fx = ScoringFunction::new(decay, 60, 10)?;
        let fy = ScoringFunction::new(ScoreDecay::Linear, 60, 10)?;
        let space = TileSpace::new(fx, fy);
        for (name, inv, comp, h) in [
            (
                "NL/rect",
                Invocation::NestedLoop,
                Completion::Rectangular,
                2,
            ),
            (
                "MS/rect",
                Invocation::merge_scan_even(),
                Completion::Rectangular,
                1,
            ),
            (
                "MS/tri",
                Invocation::merge_scan_even(),
                Completion::Triangular,
                1,
            ),
        ] {
            let e = explore(inv, comp, h, space.nx, space.ny)?;
            let local = is_locally_extraction_optimal(&e.calls, &e.order, &space);
            let global = is_globally_extraction_optimal(&e.order, &space);
            println!("{label:<34} {local:>7} {global:>7}  {name}");
        }
    }
    Ok(())
}
