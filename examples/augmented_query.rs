//! Query augmentation (§2.3): repairing an infeasible query with
//! off-query services, then executing the approximation.
//!
//! Run with: `cargo run --example augmented_query`

use std::sync::Arc;

use search_computing::model::{
    Adornment, AttributeDef, AttributePath, Comparator, DataType, Date, ScoreDecay,
    ServiceInterface, ServiceKind, ServiceSchema, ServiceStats, Value,
};
use search_computing::prelude::*;
use search_computing::query::augment::{augment_query, AugmentOptions};
use search_computing::query::feasibility::analyze;
use search_computing::services::synthetic::{DomainMap, SyntheticService, ValueDomain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A registry with a Flight search (destination city is a mandatory
    // input, tagged with the abstract domain `city`) and an off-query
    // CityDirectory whose output carries the same domain.
    let mut registry = ServiceRegistry::new();
    let city = ValueDomain::new("city", 12);

    let flight_schema = ServiceSchema::new(
        "Flight1",
        vec![
            AttributeDef::atomic("To", DataType::Text, Adornment::Input).with_domain("city"),
            AttributeDef::atomic("Date", DataType::Date, Adornment::Input).with_domain("date"),
            AttributeDef::atomic("Airline", DataType::Text, Adornment::Output),
            AttributeDef::atomic("Price", DataType::Float, Adornment::Output),
            AttributeDef::atomic("Convenience", DataType::Float, Adornment::Ranked),
        ],
    )?;
    let flight = ServiceInterface::new(
        "Flight1",
        "Flight",
        flight_schema,
        ServiceKind::Search,
        ServiceStats::new(30.0, 10, 100.0, 1.0)?,
        ScoreDecay::Step {
            h: 1,
            high: 0.9,
            low: 0.1,
        },
    )?;
    registry.register_service(Arc::new(SyntheticService::new(
        flight,
        DomainMap::new().with(AttributePath::atomic("To"), city.clone()),
        1,
    )))?;

    let dir_schema = ServiceSchema::new(
        "CityDirectory1",
        vec![
            AttributeDef::atomic("City", DataType::Text, Adornment::Output).with_domain("city"),
            AttributeDef::atomic("Country", DataType::Text, Adornment::Output),
        ],
    )?;
    let dir = ServiceInterface::new(
        "CityDirectory1",
        "CityDirectory",
        dir_schema,
        ServiceKind::Exact { chunked: false },
        ServiceStats::new(12.0, 12, 30.0, 1.0)?,
        ScoreDecay::Constant(1.0),
    )?;
    registry.register_service(Arc::new(SyntheticService::new(
        dir,
        DomainMap::new().with(AttributePath::atomic("City"), city),
        2,
    )))?;

    // "Flights on July 1st" — destination unbound: infeasible.
    let query = QueryBuilder::new()
        .atom("F", "Flight1")
        .select_const(
            "F",
            "Date",
            Comparator::Eq,
            Value::Date(Date::new(2009, 7, 1)),
        )
        .k(8)
        .build()?;
    println!("original query:  {query}");
    println!("feasible:        {}\n", analyze(&query, &registry).is_ok());

    // §2.3: repair with an off-query service of the same abstract domain.
    let augmented = augment_query(&query, &registry, AugmentOptions::default())?;
    println!("augmented query: {}", augmented.query);
    println!("off-query atoms: {:?}\n", augmented.added);

    // Optimize and execute the approximation.
    let best = optimize(&augmented.query, &registry, CostMetric::RequestCount)?;
    println!(
        "{}",
        search_computing::plan::display::ascii(&best.plan, Some(&best.annotated))?
    );
    let outcome = execute_plan(&best.plan, &registry, EngineConfig::default())?;
    println!(
        "{} flight combinations via {} calls (an approximation: only flights to\n\
         directory cities, as the chapter warns)",
        outcome.results.len(),
        outcome.total_calls
    );
    for combo in outcome.results.iter().take(5) {
        println!("  {combo}");
    }
    Ok(())
}
