#!/usr/bin/env bash
# Full local CI gate: release build, tests, lints, formatting.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> fetch_bench --smoke"
cargo run --release -q -p seco-bench --bin fetch_bench -- --smoke
cp results/BENCH_fetch.json BENCH_fetch.json

echo "==> join_bench --smoke"
cargo run --release -q -p seco-bench --bin join_bench -- --smoke
cp results/BENCH_join.json BENCH_join.json
echo "==> rank join smoke summary (chunks fetched / time-to-kth)"
grep -E '"(chunks_fetched|chunks_saved|time_to_kth_us|chunk_fetch_reduction|time_to_kth_speedup)"' \
  BENCH_join.json

echo "==> optimizer_bench --smoke"
cargo run --release -q -p seco-bench --bin optimizer_bench -- --smoke
cp results/BENCH_optimizer.json BENCH_optimizer.json

echo "==> adaptive_bench --smoke"
cargo run --release -q -p seco-bench --bin adaptive_bench -- --smoke
cp results/BENCH_adaptive.json BENCH_adaptive.json
echo "==> adaptive smoke summary (convergence / ratio / replans)"
grep -E '"(converged|ratio_vs_informed|replans|epoch_invalidations)"' BENCH_adaptive.json
grep -q '"converged": true' BENCH_adaptive.json

echo "==> serve_bench --smoke"
cargo run --release -q -p seco-server --bin bencher -- --smoke
cp results/BENCH_serve.json BENCH_serve.json
echo "==> serving smoke summary (aggregate cold vs warm p50, identity)"
grep -E '"(aggregate_cold_p50_ms|aggregate_warm_p50_ms|warm_faster|concurrent_identical_to_serial)"' \
  BENCH_serve.json
# The bencher itself asserts both gates and exits non-zero otherwise;
# these greps pin the report format.
grep -q '"warm_faster": true' BENCH_serve.json
grep -q '"concurrent_identical_to_serial": true' BENCH_serve.json

echo "CI OK"
