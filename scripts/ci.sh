#!/usr/bin/env bash
# Full local CI gate: release build, tests, lints, formatting.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

# results/ is the single canonical home for benchmark reports; smoke
# runs overwrite them in place and the greps below gate on those files.
echo "==> fetch_bench --smoke"
cargo run --release -q -p seco-bench --bin fetch_bench -- --smoke

echo "==> join_bench --smoke"
cargo run --release -q -p seco-bench --bin join_bench -- --smoke
echo "==> rank join smoke summary (chunks fetched / time-to-kth)"
grep -E '"(chunks_fetched|chunks_saved|time_to_kth_us|chunk_fetch_reduction|time_to_kth_speedup)"' \
  results/BENCH_join.json
echo "==> parallel-vs-serial smoke gate (modeled speedup at 4 workers >= 1.3x)"
grep -E '"(modeled_speedup_at_4_workers|target|pass)"' results/BENCH_join.json
grep -q '"pass": true' results/BENCH_join.json

echo "==> optimizer_bench --smoke"
cargo run --release -q -p seco-bench --bin optimizer_bench -- --smoke

echo "==> adaptive_bench --smoke"
cargo run --release -q -p seco-bench --bin adaptive_bench -- --smoke
echo "==> adaptive smoke summary (convergence / ratio / replans)"
grep -E '"(converged|ratio_vs_informed|replans|epoch_invalidations)"' results/BENCH_adaptive.json
grep -q '"converged": true' results/BENCH_adaptive.json

echo "==> serve_bench --smoke"
cargo run --release -q -p seco-server --bin bencher -- --smoke
echo "==> serving smoke summary (aggregate cold vs warm p50, identity, p95 flatness)"
grep -E '"(aggregate_cold_p50_ms|aggregate_warm_p50_ms|warm_faster|concurrent_identical_to_serial|p95_flat_at_4x)"' \
  results/BENCH_serve.json
# The bencher itself asserts all three gates and exits non-zero
# otherwise; these greps pin the report format.
grep -q '"warm_faster": true' results/BENCH_serve.json
grep -q '"concurrent_identical_to_serial": true' results/BENCH_serve.json
grep -q '"p95_flat_at_4x": true' results/BENCH_serve.json

echo "CI OK"
