#!/usr/bin/env bash
# Full local CI gate: release build, tests, lints, formatting.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> fetch_bench --smoke"
cargo run --release -q -p seco-bench --bin fetch_bench -- --smoke
cp results/BENCH_fetch.json BENCH_fetch.json

echo "==> join_bench --smoke"
cargo run --release -q -p seco-bench --bin join_bench -- --smoke
cp results/BENCH_join.json BENCH_join.json
echo "==> rank join smoke summary (chunks fetched / time-to-kth)"
grep -E '"(chunks_fetched|chunks_saved|time_to_kth_us|chunk_fetch_reduction|time_to_kth_speedup)"' \
  BENCH_join.json

echo "==> optimizer_bench --smoke"
cargo run --release -q -p seco-bench --bin optimizer_bench -- --smoke
cp results/BENCH_optimizer.json BENCH_optimizer.json

echo "==> adaptive_bench --smoke"
cargo run --release -q -p seco-bench --bin adaptive_bench -- --smoke
cp results/BENCH_adaptive.json BENCH_adaptive.json
echo "==> adaptive smoke summary (convergence / ratio / replans)"
grep -E '"(converged|ratio_vs_informed|replans|epoch_invalidations)"' BENCH_adaptive.json
grep -q '"converged": true' BENCH_adaptive.json

echo "CI OK"
