//! Daemon-wide shared state: one registry, one plan cache, one set of
//! warm fetch stacks — and the admission gate in front of them.
//!
//! This is the tentpole inversion of the one-shot CLI: instead of
//! building every cache from scratch per invocation, the daemon keeps
//! [`SharedState`] (fetch caches, breaker state, the speculation pool),
//! a [`PlanCache`] (optimized plans keyed by structural fingerprint ×
//! statistics epoch), and the registry's adaptive accumulators alive
//! across requests. The first session pays the cold cost; every later
//! session planning the same query or touching the same service chunks
//! rides the warm state.
//!
//! Admission control is deliberately simple and deterministic: a hard
//! cap on concurrently executing queries (back-pressure, HTTP 429), a
//! cap on open sessions, and a per-tenant service-call budget. Budgets
//! are charged with the *observed* call delta of each execution — a
//! cache hit costs nothing, which gives tenants a direct incentive to
//! re-use warm state. Under concurrent executions the per-request call
//! attribution is approximate (the counters are daemon-wide); the
//! budget is a fairness rail, not an audit trail.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use seco_engine::{
    execute_parallel_session, execute_plan_shared, BatchSink, EngineConfig, SharedState,
};
use seco_model::{CompositeTuple, Symbol};
use seco_optimizer::{CostMetric, Optimized, Optimizer, PlanCache};
use seco_plan::QueryPlan;
use seco_query::Query;
use seco_services::{DeviationPolicy, ServiceRegistry};

use crate::session::Session;

/// Serving-layer configuration (engine knobs plus admission limits).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Engine configuration every session executes under (one config
    /// per daemon: shared fetch stacks are built from it on first use).
    pub engine: EngineConfig,
    /// Cost metric the shared planner optimizes.
    pub metric: CostMetric,
    /// Maximum concurrently open sessions (0 = unlimited).
    pub max_sessions: usize,
    /// Maximum concurrently *executing* queries; excess requests are
    /// refused with HTTP 429 rather than queued (0 = unlimited).
    pub max_concurrent: usize,
    /// Service-call budget per tenant (0 = unlimited).
    pub tenant_budget: u64,
    /// Worker threads of the shared executor pool: one work-stealing
    /// pool per daemon runs every session's join morsels, prefetch
    /// speculation, optimizer fan-out, and plan-node tasks. Fairness
    /// across sessions comes from the admission gate (at most
    /// [`max_concurrent`](Self::max_concurrent) executions feed the
    /// pool) plus the pool's FIFO injector — no session can monopolize
    /// workers while another's morsels wait.
    pub exec_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            // The daemon's whole point is warm state: default the
            // sharded fetch cache on.
            engine: EngineConfig::default().cache_shards(4),
            metric: CostMetric::RequestCount,
            max_sessions: 256,
            max_concurrent: 16,
            tenant_budget: 0,
            exec_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refusal {
    /// The daemon is drained/draining for shutdown (HTTP 503).
    Draining,
    /// Too many queries already executing (HTTP 429).
    AtCapacity,
    /// The tenant's service-call budget is spent (HTTP 429).
    BudgetExhausted,
    /// The session table is full (HTTP 429).
    TooManySessions,
}

impl Refusal {
    /// The HTTP status this refusal maps to.
    pub fn status(&self) -> u16 {
        match self {
            Refusal::Draining => 503,
            _ => 429,
        }
    }

    /// Human-readable reason.
    pub fn message(&self) -> &'static str {
        match self {
            Refusal::Draining => "server is draining",
            Refusal::AtCapacity => "too many queries in flight",
            Refusal::BudgetExhausted => "tenant call budget exhausted",
            Refusal::TooManySessions => "session table full",
        }
    }
}

/// RAII slot in the execution gate: holding it means the request
/// counts against `max_concurrent`.
pub struct Admission<'a> {
    state: &'a ServerState,
}

impl std::fmt::Debug for Admission<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Admission")
    }
}

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.state.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The daemon: everything concurrent sessions share.
pub struct ServerState {
    /// Service registry (call recorders, adaptive accumulators, epoch).
    pub registry: Arc<ServiceRegistry>,
    /// Cross-request optimized-plan cache.
    pub plan_cache: Arc<PlanCache>,
    /// Cross-request fetch stacks, clock, and speculation pool.
    pub shared: Arc<SharedState>,
    /// Serving configuration.
    pub config: ServerConfig,
    sessions: Mutex<BTreeMap<u64, Session>>,
    next_session: AtomicU64,
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    tenant_calls: Mutex<BTreeMap<String, u64>>,
    draining: AtomicBool,
    stopped: AtomicBool,
}

impl ServerState {
    /// A daemon over `registry` with the given limits.
    pub fn new(registry: ServiceRegistry, mut config: ServerConfig) -> Arc<Self> {
        // Sessions execute under the daemon's engine config; align its
        // morsel parallelism with the pool so joins actually fan out
        // (and `exec_workers = 1` keeps the exact serial join path).
        config.engine = config.engine.exec_workers(config.exec_workers);
        Arc::new(ServerState {
            registry: Arc::new(registry),
            plan_cache: Arc::new(PlanCache::new()),
            shared: Arc::new(SharedState::for_daemon(config.exec_workers)),
            config,
            sessions: Mutex::new(BTreeMap::new()),
            next_session: AtomicU64::new(1),
            in_flight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            tenant_calls: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
        })
    }

    /// Claims an execution slot, or says why not. The slot frees when
    /// the returned guard drops.
    pub fn admit(&self, tenant: &str) -> Result<Admission<'_>, Refusal> {
        if self.draining.load(Ordering::Acquire) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Refusal::Draining);
        }
        if !self.budget_ok(tenant) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Refusal::BudgetExhausted);
        }
        let slots = self.config.max_concurrent;
        let n = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if slots > 0 && n >= slots {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Refusal::AtCapacity);
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Admission { state: self })
    }

    fn budget_ok(&self, tenant: &str) -> bool {
        self.config.tenant_budget == 0
            || self.tenant_calls.lock().get(tenant).copied().unwrap_or(0)
                < self.config.tenant_budget
    }

    /// Charges `calls` service calls to `tenant`.
    pub fn charge(&self, tenant: &str, calls: u64) {
        *self
            .tenant_calls
            .lock()
            .entry(tenant.to_owned())
            .or_default() += calls;
    }

    /// Optimizes `query` through the shared plan cache. Returns the
    /// plan and whether it came from the cache.
    pub fn plan(&self, query: &Query) -> Result<(Optimized, bool), String> {
        let mut optimizer = Optimizer::new(&self.registry, self.config.metric);
        optimizer.cache = Some(self.plan_cache.clone());
        // Topology fan-out rides the shared pool alongside everything
        // else the daemon parallelizes.
        optimizer.workers = self.config.exec_workers;
        optimizer.pool = self.shared.exec_pool().cloned();
        let best = optimizer.optimize(query).map_err(|e| e.to_string())?;
        let cached = best.stats.cache_hits > 0;
        Ok((best, cached))
    }

    /// Executes `plan` against the shared state. `sink`, when given and
    /// `parallel`, receives emission-order batches as tiles join.
    /// Returns `(results, degraded services, observed call delta)`.
    pub fn execute(
        &self,
        plan: &QueryPlan,
        parallel: bool,
        k: usize,
        sink: Option<BatchSink<'_>>,
    ) -> Result<(Vec<CompositeTuple>, Vec<String>, u64), String> {
        let mut cfg = self.config.engine;
        if cfg.rank_join && cfg.join_k == 0 {
            cfg = cfg.join_k(k);
        }
        let before = self.registry.total_stats().calls;
        let (results, degraded) = if parallel {
            let out = execute_parallel_session(plan, &self.registry, cfg, Some(&self.shared), sink)
                .map_err(|e| e.to_string())?;
            (out.results, out.degraded)
        } else {
            let out = execute_plan_shared(plan, &self.registry, cfg, &self.shared)
                .map_err(|e| e.to_string())?;
            (out.results, out.degraded)
        };
        let calls = self.registry.total_stats().calls.saturating_sub(before);
        Ok((results, degraded, calls))
    }

    /// Registers a session, allocating its id. Refuses when the table
    /// is full.
    pub fn open_session(&self, make: impl FnOnce(u64) -> Session) -> Result<u64, Refusal> {
        let mut sessions = self.sessions.lock();
        if self.config.max_sessions > 0 && sessions.len() >= self.config.max_sessions {
            return Err(Refusal::TooManySessions);
        }
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        sessions.insert(id, make(id));
        Ok(id)
    }

    /// Runs `f` against the named session.
    pub fn with_session<T>(&self, id: u64, f: impl FnOnce(&mut Session) -> T) -> Option<T> {
        self.sessions.lock().get_mut(&id).map(f)
    }

    /// Closes the session; true when it existed.
    pub fn close_session(&self, id: u64) -> bool {
        self.sessions.lock().remove(&id).is_some()
    }

    /// Number of open sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Promotes deviating observed statistics into the registry
    /// (rolling the epoch, which invalidates every cached plan's
    /// fingerprint). Returns the promoted service names.
    pub fn promote(&self, policy: &DeviationPolicy) -> Vec<String> {
        self.registry.promote_deviations(policy)
    }

    /// The daemon's observability snapshot as a JSON document.
    pub fn stats_json(&self) -> String {
        let t = self.registry.total_stats();
        let tenants: Vec<serde_json::Value> = self
            .tenant_calls
            .lock()
            .iter()
            .map(|(name, calls)| serde_json::json!({"tenant": name, "calls": calls}))
            .collect();
        serde_json::json!({
            "sessions_open": self.open_sessions(),
            "in_flight": self.in_flight.load(Ordering::Acquire),
            "admitted": self.admitted.load(Ordering::Relaxed),
            "rejected": self.rejected.load(Ordering::Relaxed),
            "draining": self.draining.load(Ordering::Acquire),
            "plan_cache_entries": self.plan_cache.len(),
            "stats_epoch": self.registry.stats_epoch(),
            "epoch_invalidations": self.registry.epoch_invalidations(),
            "fetch_stacks": self.shared.stack_count(),
            "calls": t.calls,
            "cache_hits": t.cache_hits,
            "coalesced": t.coalesced,
            "prefetches": t.prefetches,
            "retries": t.retries,
            "timeouts": t.timeouts,
            "breaker_trips": t.breaker_trips,
            "short_circuits": t.short_circuits,
            // The interner grows with the workload's *vocabulary*, not
            // its volume; a steadily climbing byte count under a steady
            // query mix means some caller interns unbounded data (see
            // `Symbol::table_bytes`).
            "interner_symbols": Symbol::table_len(),
            "interner_bytes": Symbol::table_bytes(),
            "exec": self.shared.exec_pool().map(|p| {
                let e = p.stats();
                serde_json::json!({
                    "workers": e.workers,
                    "queue_depth": e.queue_depth,
                    "steals": e.steals,
                    "morsels": e.morsels,
                    "busy_ms": e.busy_ms,
                    "serial_micros": e.serial_micros,
                    "makespan_micros": e.makespan_micros,
                    "detached_submitted": e.detached_submitted,
                    "detached_rejected": e.detached_rejected,
                    "threads_alive": e.threads_alive,
                })
            }),
            "tenants": tenants,
        })
        .to_string()
    }

    /// Starts refusing new work (admission returns
    /// [`Refusal::Draining`]); in-flight executions continue.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Waits until in-flight executions finish (or `timeout` passes),
    /// then stops the speculation pool. True when fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let start = Instant::now();
        while self.in_flight.load(Ordering::Acquire) > 0 {
            if start.elapsed() > timeout {
                self.shared.shutdown();
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shared.shutdown();
        true
    }

    /// Tells the accept loop to exit.
    pub fn request_stop(&self) {
        self.stopped.store(true, Ordering::Release);
    }

    /// True once [`ServerState::request_stop`] was called.
    pub fn stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(config: ServerConfig) -> Arc<ServerState> {
        let (registry, _) = seco_bench::chain_scenario(2, 42);
        ServerState::new(registry, config)
    }

    #[test]
    fn admission_enforces_the_concurrency_cap() {
        let s = state(ServerConfig {
            max_concurrent: 2,
            ..Default::default()
        });
        let a = s.admit("t").expect("slot 1");
        let _b = s.admit("t").expect("slot 2");
        assert_eq!(s.admit("t").unwrap_err(), Refusal::AtCapacity);
        drop(a);
        let _c = s.admit("t").expect("slot freed by drop");
    }

    #[test]
    fn budgets_and_draining_refuse_admission() {
        let s = state(ServerConfig {
            tenant_budget: 5,
            ..Default::default()
        });
        s.charge("greedy", 5);
        assert_eq!(s.admit("greedy").unwrap_err(), Refusal::BudgetExhausted);
        let _ok = s.admit("frugal").expect("other tenants unaffected");
        s.begin_drain();
        assert_eq!(s.admit("frugal").unwrap_err(), Refusal::Draining);
    }

    #[test]
    fn second_plan_of_the_same_query_is_cached() {
        let (registry, query) = seco_bench::chain_scenario(3, 42);
        let s = ServerState::new(registry, ServerConfig::default());
        let (_, cached_first) = s.plan(&query).expect("plans");
        let (_, cached_second) = s.plan(&query).expect("plans");
        assert!(!cached_first);
        assert!(cached_second);
        assert_eq!(s.plan_cache.len(), 1);
    }
}
