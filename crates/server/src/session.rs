//! Query sessions: the server-side cursor behind liquid-query
//! continuations.
//!
//! Search Computing's interaction model is a *conversation*: the user
//! sees the first ranked combinations, then asks for **more** results,
//! **re-ranks** under different weights, or **expands** one join branch
//! with deeper fetches — all against the answer already extracted,
//! without restarting the query ("liquid queries"). A [`Session`] keeps
//! exactly the state those operations need: the parsed query, the
//! executed plan, the full emitted result universe, and the set of
//! combinations already delivered to the client.
//!
//! Delivery is *ranked and incremental*: every [`Session::next`] call
//! walks the current ranking order and hands out the best combinations
//! not yet delivered, so `more` after a `rerank` continues under the new
//! weights while never repeating a row. Expansion unions freshly
//! extracted combinations into the universe (deduplicated), after which
//! the cursor sees them like any other undelivered row.

use std::collections::BTreeSet;

use seco_engine::ResultSet;
use seco_model::CompositeTuple;
use seco_plan::QueryPlan;
use seco_query::{Query, RankingFunction};

/// Identity of a combination within one session: the rendered
/// `(atom, source-rank, score)` sequence, which is deterministic and
/// unique per emitted combination of a fixed query.
fn combo_key(combo: &CompositeTuple) -> String {
    combo.to_string()
}

/// Renders ranked rows as JSON objects (score under `ranking`).
pub fn render_rows(ranking: &RankingFunction, combos: &[CompositeTuple]) -> Vec<serde_json::Value> {
    combos
        .iter()
        .map(|c| {
            serde_json::json!({
                "score": ranking.score(c),
                "combo": c.to_string(),
            })
        })
        .collect()
}

/// One live query session: the kept execution cursor that `more`,
/// `rerank`, and `expand` continue from.
pub struct Session {
    /// Session identifier (allocated by the server).
    pub id: u64,
    /// Tenant the session's service calls are charged to.
    pub tenant: String,
    /// The parsed query (ranking arity, `k`, atom names).
    pub query: Query,
    /// The executed plan — expansion re-derives deeper-fetch variants
    /// from it.
    pub plan: QueryPlan,
    /// Everything extracted so far, under the session's *current*
    /// ranking function (which starts as the query's and changes on
    /// `rerank`).
    pub set: ResultSet,
    delivered: BTreeSet<String>,
}

impl Session {
    /// Opens a session over one execution's results.
    pub fn new(id: u64, tenant: String, query: Query, plan: QueryPlan, set: ResultSet) -> Self {
        Session {
            id,
            tenant,
            query,
            plan,
            set,
            delivered: BTreeSet::new(),
        }
    }

    /// Total combinations extracted so far.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when nothing was extracted.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Combinations already handed to the client.
    pub fn delivered(&self) -> usize {
        self.delivered.len()
    }

    /// The next `n` best undelivered combinations under the current
    /// ranking, marked as delivered.
    pub fn next(&mut self, n: usize) -> Vec<CompositeTuple> {
        let mut out = Vec::with_capacity(n);
        for combo in self.set.top_k(self.set.len()) {
            if out.len() == n {
                break;
            }
            if self.delivered.insert(combo_key(&combo)) {
                out.push(combo);
            }
        }
        out
    }

    /// The current top-`n` view (delivered or not, nothing marked) —
    /// what a client re-reads after changing the ranking.
    pub fn head(&self, n: usize) -> Vec<CompositeTuple> {
        self.set.top_k(n)
    }

    /// Replaces the ranking function; the delivery cursor carries over,
    /// so subsequent [`Session::next`] calls walk the *new* order.
    pub fn rerank(&mut self, weights: Vec<f64>) -> Result<(), String> {
        let ranking = RankingFunction::new(weights).map_err(|e| e.to_string())?;
        if ranking.arity() != self.query.ranking.arity() {
            return Err(format!(
                "ranking needs {} weights (one per atom)",
                self.query.ranking.arity()
            ));
        }
        self.set.ranking = ranking;
        Ok(())
    }

    /// Unions freshly extracted combinations into the universe,
    /// returning how many were actually new. Known rows keep their
    /// delivered status; new ones become visible to the cursor.
    pub fn absorb(&mut self, combos: Vec<CompositeTuple>) -> usize {
        let known: BTreeSet<String> = self.set.tuples.iter().map(combo_key).collect();
        let mut added = 0;
        for combo in combos {
            if !known.contains(&combo_key(&combo)) {
                self.set.tuples.push(combo);
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_engine::{execute_plan, EngineConfig};
    use seco_optimizer::{optimize, CostMetric};

    fn session() -> Session {
        let (registry, query) = seco_bench::chain_scenario(3, 42);
        let best = optimize(&query, &registry, CostMetric::RequestCount).expect("plan");
        let out = execute_plan(&best.plan, &registry, EngineConfig::default()).expect("run");
        let set = ResultSet::new(out.results, query.ranking.clone());
        Session::new(1, "t".into(), query, best.plan, set)
    }

    #[test]
    fn next_is_ranked_and_never_repeats() {
        let mut s = session();
        let total = s.len();
        assert!(total >= 4, "scenario yields enough rows ({total})");
        let first = s.next(2);
        let second = s.next(2);
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2);
        let keys: BTreeSet<String> = first.iter().chain(&second).map(combo_key).collect();
        assert_eq!(keys.len(), 4, "no repeats across pages");
        // Pages follow the ranked order.
        let ranked = s.set.top_k(4);
        let paged: Vec<String> = first.iter().chain(&second).map(combo_key).collect();
        let expect: Vec<String> = ranked.iter().map(combo_key).collect();
        assert_eq!(paged, expect);
    }

    #[test]
    fn rerank_changes_order_but_keeps_cursor() {
        let mut s = session();
        let before = s.next(1);
        s.rerank(vec![0.0, 0.0, 1.0]).expect("arity matches");
        let after = s.next(s.len());
        assert!(!after.iter().any(|c| combo_key(c) == combo_key(&before[0])));
        assert_eq!(s.delivered(), s.len(), "cursor drained the universe");
        assert!(s.rerank(vec![1.0]).is_err(), "arity mismatch rejected");
    }

    #[test]
    fn absorb_deduplicates() {
        let mut s = session();
        let existing = s.set.tuples.clone();
        assert_eq!(s.absorb(existing), 0, "known rows are not re-added");
    }
}
