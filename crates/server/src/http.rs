//! Minimal HTTP/1.1 plumbing over [`std::net`].
//!
//! The build environment vendors no HTTP stack, so the serving layer
//! speaks the smallest useful protocol subset by hand: request line +
//! headers + `Content-Length` bodies on the way in; fixed-length or
//! chunked (`Transfer-Encoding: chunked`) responses on the way out.
//! Every connection carries exactly one request (`Connection: close`),
//! which keeps the parser trivial and makes per-request latency
//! directly measurable from connect to close.
//!
//! Chunked responses carry the session protocol's *frames*: each chunk
//! is one complete JSON document on its own line, flushed immediately,
//! so a client can act on the first result combinations while the
//! engine is still joining tiles — the chapter's progressive answer
//! integration, made visible on the wire.
//!
//! The client half ([`call`], [`stream`]) exists for the bencher and
//! the integration tests; it records time-to-first-frame, the serving
//! metric the fixed-length path cannot expose.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One parsed request: method, path (query string split off into
/// `params`, both halves percent-decoded), and the raw text body.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method verb (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path component without the query string, e.g. `/session/7/more`.
    pub path: String,
    /// Decoded query-string parameters.
    pub params: BTreeMap<String, String>,
    /// Request body (the query text for `POST /query`).
    pub body: String,
}

impl Request {
    /// The query-string parameter `name`, when present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(|s| s.as_str())
    }

    /// `name` parsed as an integer, or `default` when absent/invalid.
    pub fn param_usize(&self, name: &str, default: usize) -> usize {
        self.param(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Percent-decodes one URL component (`+` is a space).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match s
                .get(i + 1..i + 3)
                .and_then(|h| u8::from_str_radix(h, 16).ok())
            {
                Some(b) => {
                    out.push(b);
                    i += 3;
                }
                None => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads one request off the connection. `None` on a clean EOF before
/// any bytes (client connected and went away).
pub fn parse_request(stream: &TcpStream) -> io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "request line has no target"))?;
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let params = query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|p| {
            let (k, v) = p.split_once('=').unwrap_or((p, ""));
            (url_decode(k), url_decode(v))
        })
        .collect();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path: path.to_owned(),
        params,
        body: String::from_utf8_lossy(&body).into_owned(),
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length JSON response and flushes.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    stream.flush()
}

/// Incremental frame writer: a chunked HTTP response where every chunk
/// is one newline-terminated JSON document, flushed as written.
pub struct ChunkedWriter {
    stream: TcpStream,
}

impl ChunkedWriter {
    /// Sends the response head and returns the frame writer.
    pub fn begin(stream: &TcpStream, status: u16) -> io::Result<Self> {
        let mut stream = stream.try_clone()?;
        write!(
            stream,
            "HTTP/1.1 {status} {}\r\nContent-Type: application/jsonlines\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status),
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one frame (a full JSON document) as its own chunk.
    pub fn frame(&mut self, json: &str) -> io::Result<()> {
        write!(self.stream, "{:x}\r\n{json}\n\r\n", json.len() + 1)?;
        self.stream.flush()
    }

    /// Terminates the chunk stream.
    pub fn finish(mut self) -> io::Result<()> {
        write!(self.stream, "0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A fully read client-side response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Decoded body: chunked frames are concatenated in arrival order.
    pub body: String,
    /// Connect-to-first-body-frame latency — for a streamed query, the
    /// time until the first combinations were usable at the client.
    pub time_to_first_chunk: Duration,
    /// Connect-to-close latency.
    pub total: Duration,
}

/// Issues one request and reads the entire response (fixed-length or
/// chunked), timing first-frame arrival along the way.
pub fn stream(addr: &str, method: &str, target: &str, body: &str) -> io::Result<ClientResponse> {
    let start = Instant::now();
    let mut conn = TcpStream::connect(addr)?;
    write!(
        conn,
        "{method} {target} HTTP/1.1\r\nHost: seco\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    conn.flush()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut chunked = false;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim().to_ascii_lowercase();
        if header.is_empty() {
            break;
        }
        if header == "transfer-encoding: chunked" {
            chunked = true;
        } else if let Some(v) = header.strip_prefix("content-length:") {
            content_length = v.trim().parse().ok();
        }
    }
    let mut body_text = String::new();
    let mut first_chunk: Option<Duration> = None;
    if chunked {
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break;
            }
            let n = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
            if n == 0 {
                let mut trailer = String::new();
                let _ = reader.read_line(&mut trailer);
                break;
            }
            let mut buf = vec![0u8; n + 2]; // payload + CRLF
            reader.read_exact(&mut buf)?;
            if first_chunk.is_none() {
                first_chunk = Some(start.elapsed());
            }
            body_text.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
    } else {
        let mut buf = Vec::new();
        match content_length {
            Some(n) => {
                buf.resize(n, 0);
                reader.read_exact(&mut buf)?;
            }
            None => {
                reader.read_to_end(&mut buf)?;
            }
        }
        if !buf.is_empty() {
            first_chunk = Some(start.elapsed());
        }
        body_text = String::from_utf8_lossy(&buf).into_owned();
    }
    let total = start.elapsed();
    Ok(ClientResponse {
        status,
        body: body_text,
        time_to_first_chunk: first_chunk.unwrap_or(total),
        total,
    })
}

/// [`stream`] without the timing detail: `(status, body)`.
pub fn call(addr: &str, method: &str, target: &str, body: &str) -> io::Result<(u16, String)> {
    let r = stream(addr, method, target, body)?;
    Ok((r.status, r.body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_decoding_handles_percent_and_plus() {
        assert_eq!(url_decode("a+b%20c%3D1"), "a b c=1");
        assert_eq!(url_decode("plain"), "plain");
        assert_eq!(url_decode("bad%zz"), "bad%zz");
    }
}
