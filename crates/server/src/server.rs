//! The HTTP front end: routing, the streaming query path, and session
//! continuation endpoints.
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /query?tenant=T&mode=det\|par&stream=1&k=N&chunk=C` | Parse the body as a SeCo query, plan it through the shared [`PlanCache`](seco_optimizer::PlanCache), execute against the warm shared state, open a session. |
//! | `POST /session/{id}/more?n=N` | Next `N` ranked, undelivered combinations. |
//! | `POST /session/{id}/rerank` | Body `w1,w2,…`: swap the ranking weights, keep the cursor. |
//! | `POST /session/{id}/expand?atom=A&extra=N` | Deepen atom `A`'s fetches by `N` and union the new combinations in. |
//! | `DELETE /session/{id}` | Close the session. |
//! | `GET /stats` | Daemon counters (caches, admission, interner, tenants). |
//! | `POST /admin/promote?threshold=R&min-samples=N` | Promote deviating observed statistics; rolls the epoch and invalidates cached plans. |
//! | `POST /admin/shutdown` | Drain in-flight sessions, stop the speculation pool, exit the accept loop. |
//!
//! ## Streaming
//!
//! With `stream=1` the response is chunked; every chunk is one JSON
//! frame. The first frame is `{"frame":"plan",…}` (with the plan-cache
//! verdict), then `chunk` frames carry rows, and a final `summary`
//! frame closes the stream. The two executors stream differently, on
//! purpose:
//!
//! * `mode=det` (default) — deterministic executor; rows are framed
//!   *after* execution as successive ranked slices pulled from the
//!   session cursor (`chunk` rows per frame), so the frames are the
//!   top-k in order and count as delivered.
//! * `mode=par` — pipelined executor; `chunk` frames are pushed in
//!   emission order **while tiles are still joining** (the §4.1
//!   non-blocking dataflow), which is what time-to-first-chunk
//!   measures. The session cursor is left untouched: ranked delivery
//!   still starts at the top via `/more`.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use serde_json::json;

use seco_engine::ResultSet;
use seco_model::CompositeTuple;
use seco_plan::PlanNode;
use seco_query::parse_query;
use seco_services::DeviationPolicy;

use crate::http::{parse_request, respond_json, ChunkedWriter, Request};
use crate::session::{render_rows, Session};
use crate::state::{Refusal, ServerState};

/// How long `/admin/shutdown` waits for in-flight queries.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// Handle on a running server: its address and the accept-loop thread.
pub struct ServerHandle {
    /// The bound address (useful with `127.0.0.1:0`).
    pub addr: SocketAddr,
    /// The daemon state (for in-process inspection).
    pub state: Arc<ServerState>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Waits for the accept loop to exit (after `/admin/shutdown`).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, state: Arc<ServerState>) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on this thread until shutdown. Each
    /// connection is handled on its own thread; execution concurrency
    /// is bounded by admission control, not by connection count.
    pub fn run(self) {
        let Server { listener, state } = self;
        for conn in listener.incoming() {
            if state.stopped() {
                break;
            }
            let Ok(stream) = conn else { continue };
            let state = state.clone();
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &state);
            });
        }
    }

    /// Spawns the accept loop in the background.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = self.state.clone();
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            state,
            thread: Some(thread),
        })
    }
}

fn refuse(stream: &mut TcpStream, refusal: &Refusal) -> io::Result<()> {
    respond_json(
        stream,
        refusal.status(),
        &json!({"error": refusal.message()}).to_string(),
    )
}

fn error(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    respond_json(stream, status, &json!({"error": message}).to_string())
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) -> io::Result<()> {
    let Some(req) = parse_request(&stream)? else {
        return Ok(());
    };
    let path = req.path.trim_matches('/').to_owned();
    let segments: Vec<&str> = path.split('/').collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["query"]) => handle_query(&mut stream, &req, state),
        ("POST", ["session", id, op]) => match id.parse::<u64>() {
            Ok(id) => handle_session_op(&mut stream, &req, state, id, op),
            Err(_) => error(&mut stream, 400, "bad session id"),
        },
        ("DELETE", ["session", id]) => match id.parse::<u64>() {
            Ok(id) if state.close_session(id) => {
                respond_json(&mut stream, 200, &json!({"closed": id}).to_string())
            }
            Ok(_) => error(&mut stream, 404, "no such session"),
            Err(_) => error(&mut stream, 400, "bad session id"),
        },
        ("GET", ["stats"]) => respond_json(&mut stream, 200, &state.stats_json()),
        ("GET", ["healthz"]) => respond_json(&mut stream, 200, &json!({"ok": true}).to_string()),
        ("POST", ["admin", "promote"]) => handle_promote(&mut stream, &req, state),
        ("POST", ["admin", "shutdown"]) => handle_shutdown(&mut stream, state),
        _ => error(&mut stream, 404, "no such route"),
    }
}

fn handle_query(stream: &mut TcpStream, req: &Request, state: &Arc<ServerState>) -> io::Result<()> {
    let tenant = req.param("tenant").unwrap_or("default").to_owned();
    let admission = match state.admit(&tenant) {
        Ok(a) => a,
        Err(r) => return refuse(stream, &r),
    };
    let parallel = req.param("mode") == Some("par");
    let streaming = req.param("stream") == Some("1");
    let mut query = match parse_query(&req.body) {
        Ok(q) => q,
        Err(e) => return error(stream, 400, &e.to_string()),
    };
    if let Some(k) = req.param("k").and_then(|v| v.parse::<usize>().ok()) {
        query.k = k.max(1);
    }
    let k = query.k;
    let (best, cached) = match state.plan(&query) {
        Ok(p) => p,
        Err(e) => return error(stream, 422, &e),
    };
    let plan_frame = json!({
        "frame": "plan",
        "cached": cached,
        "cost": best.cost,
        "plan": best.plan.canonical_key(),
    });

    if streaming {
        let writer = Mutex::new(ChunkedWriter::begin(stream, 200)?);
        writer.lock().frame(&plan_frame.to_string())?;
        let ranking = query.ranking.clone();
        let emit = |batch: &[CompositeTuple]| {
            let frame = json!({"frame": "chunk", "rows": render_rows(&ranking, batch)});
            let _ = writer.lock().frame(&frame.to_string());
        };
        let sink: Option<seco_engine::BatchSink<'_>> = if parallel { Some(&emit) } else { None };
        let (results, degraded, calls) = match state.execute(&best.plan, parallel, k, sink) {
            Ok(out) => out,
            Err(e) => {
                let _ = writer
                    .lock()
                    .frame(&json!({"frame": "error", "error": e}).to_string());
                return writer.into_inner().finish();
            }
        };
        state.charge(&tenant, calls);
        let total = results.len();
        let set = ResultSet::new(results, query.ranking.clone()).with_degraded(degraded);
        let chunk = req.param_usize("chunk", 5).max(1);
        let session = state.open_session(|id| {
            Session::new(id, tenant.clone(), query.clone(), best.plan.clone(), set)
        });
        let mut delivered = 0usize;
        if let Ok(id) = session {
            // Deterministic mode streams the ranked prefix from the
            // session cursor; parallel mode already streamed emission
            // order through the sink.
            if !parallel {
                while delivered < k {
                    let Some(rows) = state.with_session(id, |s| s.next(chunk.min(k - delivered)))
                    else {
                        break;
                    };
                    if rows.is_empty() {
                        break;
                    }
                    delivered += rows.len();
                    let frame = json!({
                        "frame": "chunk",
                        "rows": render_rows(&query.ranking, &rows),
                    });
                    writer.lock().frame(&frame.to_string())?;
                }
            }
        }
        let summary = json!({
            "frame": "summary",
            "session": session.as_ref().ok(),
            "combinations": total,
            "delivered": delivered,
            "calls": calls,
        });
        writer.lock().frame(&summary.to_string())?;
        drop(admission);
        writer.into_inner().finish()
    } else {
        let (results, degraded, calls) = match state.execute(&best.plan, parallel, k, None) {
            Ok(out) => out,
            Err(e) => return error(stream, 500, &e),
        };
        state.charge(&tenant, calls);
        let total = results.len();
        let set = ResultSet::new(results, query.ranking.clone()).with_degraded(degraded);
        let degraded_list = set.degraded.clone();
        let ranking = query.ranking.clone();
        let session = state.open_session(|id| {
            Session::new(id, tenant.clone(), query.clone(), best.plan.clone(), set)
        });
        let rows = match session {
            Ok(id) => state
                .with_session(id, |s| render_rows(&ranking, &s.next(k)))
                .unwrap_or_default(),
            Err(_) => Vec::new(),
        };
        drop(admission);
        let body = json!({
            "plan": plan_frame,
            "session": session.as_ref().ok(),
            "rows": rows,
            "combinations": total,
            "degraded": degraded_list,
            "calls": calls,
        });
        respond_json(stream, 200, &body.to_string())
    }
}

fn handle_session_op(
    stream: &mut TcpStream,
    req: &Request,
    state: &Arc<ServerState>,
    id: u64,
    op: &str,
) -> io::Result<()> {
    match op {
        "more" => {
            let Some((tenant, k)) = state.with_session(id, |s| (s.tenant.clone(), s.query.k))
            else {
                return error(stream, 404, "no such session");
            };
            let n = req.param_usize("n", k).max(1);
            let Some(body) = state.with_session(id, |s| {
                let rows = s.next(n);
                json!({
                    "session": id,
                    "tenant": tenant,
                    "rows": render_rows(&s.set.ranking, &rows),
                    "delivered": s.delivered(),
                    "remaining": s.len() - s.delivered(),
                })
                .to_string()
            }) else {
                return error(stream, 404, "no such session");
            };
            respond_json(stream, 200, &body)
        }
        "rerank" => {
            let weights: Result<Vec<f64>, _> = req
                .body
                .split(',')
                .map(|w| w.trim().parse::<f64>())
                .collect();
            let Ok(weights) = weights else {
                return error(stream, 400, "body must be comma-separated weights");
            };
            let Some(outcome) = state.with_session(id, |s| {
                s.rerank(weights).map(|()| {
                    let head = s.head(s.query.k);
                    json!({
                        "session": id,
                        "rows": render_rows(&s.set.ranking, &head),
                        "delivered": s.delivered(),
                    })
                    .to_string()
                })
            }) else {
                return error(stream, 404, "no such session");
            };
            match outcome {
                Ok(body) => respond_json(stream, 200, &body),
                Err(e) => error(stream, 400, &e),
            }
        }
        "expand" => handle_expand(stream, req, state, id),
        _ => error(stream, 404, "no such session operation"),
    }
}

/// Deepens one join branch: re-executes the session's plan with `extra`
/// more fetches on the named atom's service node, against the *warm*
/// shared caches — already-fetched chunks are hits, only the deeper
/// tail is new work.
fn handle_expand(
    stream: &mut TcpStream,
    req: &Request,
    state: &Arc<ServerState>,
    id: u64,
) -> io::Result<()> {
    let Some(atom) = req.param("atom").map(str::to_owned) else {
        return error(stream, 400, "expand needs ?atom=");
    };
    let extra = req.param_usize("extra", 1).max(1) as u32;
    // Snapshot what re-execution needs, then run outside the session
    // table lock so other sessions stay responsive.
    let Some((tenant, k, mut plan)) =
        state.with_session(id, |s| (s.tenant.clone(), s.query.k, s.plan.clone()))
    else {
        return error(stream, 404, "no such session");
    };
    let admission = match state.admit(&tenant) {
        Ok(a) => a,
        Err(r) => return refuse(stream, &r),
    };
    let Some(node) = plan.service_node_of(&atom) else {
        return error(stream, 404, "no service node for that atom");
    };
    match plan.node_mut(node) {
        Ok(PlanNode::Service(svc)) => svc.fetches += extra,
        _ => return error(stream, 500, "atom does not name a service node"),
    }
    let (results, _, calls) = match state.execute(&plan, false, k, None) {
        Ok(out) => out,
        Err(e) => return error(stream, 500, &e),
    };
    state.charge(&tenant, calls);
    drop(admission);
    let Some(body) = state.with_session(id, |s| {
        let added = s.absorb(results);
        s.plan = plan;
        json!({
            "session": id,
            "added": added,
            "combinations": s.len(),
            "calls": calls,
            "rows": render_rows(&s.set.ranking, &s.head(s.query.k)),
        })
        .to_string()
    }) else {
        return error(stream, 404, "session closed during expansion");
    };
    respond_json(stream, 200, &body)
}

fn handle_promote(
    stream: &mut TcpStream,
    req: &Request,
    state: &Arc<ServerState>,
) -> io::Result<()> {
    let default = DeviationPolicy::default();
    let policy = DeviationPolicy {
        threshold: req
            .param("threshold")
            .and_then(|v| v.parse().ok())
            .unwrap_or(default.threshold),
        min_samples: req
            .param("min-samples")
            .and_then(|v| v.parse().ok())
            .unwrap_or(default.min_samples),
    };
    let promoted = state.promote(&policy);
    let body = json!({
        "promoted": promoted,
        "stats_epoch": state.registry.stats_epoch(),
        "plan_cache_entries": state.plan_cache.len(),
    });
    respond_json(stream, 200, &body.to_string())
}

fn handle_shutdown(stream: &mut TcpStream, state: &Arc<ServerState>) -> io::Result<()> {
    state.begin_drain();
    let drained = state.drain(DRAIN_TIMEOUT);
    state.request_stop();
    let body = json!({"draining": true, "drained": drained});
    respond_json(stream, 200, &body.to_string())?;
    // Poke the accept loop so it observes the stop flag even with no
    // further client traffic.
    if let Ok(addr) = stream.local_addr() {
        let _ = TcpStream::connect(addr);
    }
    Ok(())
}
