//! # seco-server — the Search Computing engine as a long-running service
//!
//! Everything below this crate executes one query and exits; this
//! crate turns the stack into a daemon where *state outlives requests*:
//!
//! * one [`seco_services::ServiceRegistry`] — call recorders, adaptive
//!   statistics accumulators, and the epoch counter are shared by every
//!   session;
//! * one [`seco_optimizer::PlanCache`] — a query planned for one
//!   session is a cache hit for the next (until a statistics promotion
//!   rolls the epoch and invalidates it);
//! * one [`seco_engine::SharedState`] — per-service fetch stacks
//!   (sharded response caches, circuit breakers) and the speculation
//!   pool stay warm across requests;
//! * per-query [`session::Session`]s — kept cursors that the
//!   liquid-query continuations (`more`, `rerank`, `expand`) operate
//!   on.
//!
//! The wire protocol is a hand-rolled HTTP/1.1 subset ([`http`]) —
//! this build environment vendors no networking stack — with streamed
//! chunked responses for incremental result delivery ([`server`]).
//! [`state`] holds the shared assets plus admission control (execution
//! concurrency cap, session cap, per-tenant call budgets) and the
//! drain-then-stop shutdown path.

pub mod http;
pub mod server;
pub mod session;
pub mod state;

pub use server::{Server, ServerHandle};
pub use session::{render_rows, Session};
pub use state::{Refusal, ServerConfig, ServerState};
