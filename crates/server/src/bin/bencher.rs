//! `bencher` — open-loop load generator for the serving layer.
//!
//! Boots an in-process `seco-server` per scenario (chain and star
//! topologies from `seco-bench`), then drives it over real TCP:
//!
//! 1. **Cold pass** — a set of structurally distinct queries (the `top
//!    k` clause varies, so every plan-cache fingerprint differs),
//!    issued sequentially against empty caches. These pay the full
//!    branch-and-bound search and every service fetch.
//! 2. **Warm pass** — open-loop traffic at each configured rate: every
//!    request is scheduled at its ideal send instant (`i / rate`
//!    seconds after start) regardless of completions, cycling the same
//!    query set. Plans come from the [`PlanCache`], chunks from the
//!    shared fetch cache.
//!
//! Per scenario × rate the report carries p50/p95/p99 end-to-end
//! latency, p50 time-to-first-chunk (streamed responses), achieved
//! throughput, admission rejections, and a per-section `warm_faster`
//! flag. The asserted gate pools every section's samples: the
//! top-level `warm_faster` requires the aggregate warm p50 to beat
//! the aggregate cold p50 — the whole point of a daemon. A separate
//! check verifies that concurrent sessions return byte-identical rows
//! to a serial one-shot engine run.
//!
//! Results land in `results/BENCH_serve.json` (`--out` to override);
//! `--smoke` shrinks counts for CI. `--rates 25,100` overrides the
//! request rates (per second).
//!
//! [`PlanCache`]: seco_optimizer::PlanCache

use std::time::{Duration, Instant};

use serde_json::json;

use seco_engine::{execute_plan, EngineConfig, ResultSet};
use seco_optimizer::{optimize, CostMetric};
use seco_server::http;
use seco_server::{render_rows, Server, ServerConfig, ServerState};
use seco_services::ServiceRegistry;

struct Opts {
    smoke: bool,
    out: String,
    rates: Vec<f64>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: "results/BENCH_serve.json".to_owned(),
        rates: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                if let Some(path) = argv.next() {
                    opts.out = path;
                }
            }
            "--rates" => {
                if let Some(list) = argv.next() {
                    opts.rates = list
                        .split(',')
                        .filter_map(|r| r.trim().parse().ok())
                        .collect();
                }
            }
            other => {
                eprintln!("ignoring unknown argument `{other}`");
            }
        }
    }
    if opts.rates.is_empty() {
        // The acceptance bar: at least two rates.
        opts.rates = if opts.smoke {
            vec![20.0, 60.0]
        } else {
            vec![25.0, 100.0]
        };
    }
    opts
}

fn scenario(name: &str) -> (ServiceRegistry, seco_query::Query) {
    match name {
        "chain" => seco_bench::chain_scenario(4, 42),
        "star" => seco_bench::star_scenario(4, 42),
        other => panic!("unknown scenario {other}"),
    }
}

fn boot(name: &str) -> (seco_server::ServerHandle, String, usize) {
    let (registry, query) = scenario(name);
    let text = query.to_string();
    let k = query.k;
    let config = ServerConfig {
        max_sessions: 8192,
        max_concurrent: 16,
        // All sessions share one 4-worker executor pool (morsels,
        // prefetch speculation, optimizer fan-out, plan-node tasks).
        exec_workers: 4,
        ..Default::default()
    };
    let state = ServerState::new(registry, config);
    let server = Server::bind("127.0.0.1:0", state).expect("bind ephemeral port");
    let handle = server.spawn().expect("spawn accept loop");
    (handle, text, k)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn sorted_ms(durations: &[Duration]) -> Vec<f64> {
    let mut ms: Vec<f64> = durations.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    ms
}

struct PassStats {
    latency: Vec<Duration>,
    first_chunk: Vec<Duration>,
    rejected: usize,
    elapsed: Duration,
}

struct Section {
    json: serde_json::Value,
    cold_ms: Vec<f64>,
    warm_ms: Vec<f64>,
}

/// One scenario at one rate: cold pass, then the open-loop warm pass.
fn bench_section(name: &str, rate: f64, smoke: bool) -> Section {
    let (handle, text, base_k) = boot(name);
    let addr = handle.addr.to_string();
    let variants = if smoke { 3 } else { 6 };
    let total = if smoke { 30 } else { 150 };

    // Cold: distinct fingerprints, empty fetch caches.
    let cold_start = Instant::now();
    let mut cold = PassStats {
        latency: Vec::new(),
        first_chunk: Vec::new(),
        rejected: 0,
        elapsed: Duration::ZERO,
    };
    for i in 0..variants {
        let target = format!("/query?mode=det&stream=1&k={}", base_k + i);
        let r = http::stream(&addr, "POST", &target, &text).expect("cold request");
        assert_eq!(r.status, 200, "cold request accepted");
        cold.latency.push(r.total);
        cold.first_chunk.push(r.time_to_first_chunk);
    }
    cold.elapsed = cold_start.elapsed();

    // Warm: open-loop at `rate` req/s over the same query set.
    let warm_start = Instant::now();
    let mut workers = Vec::with_capacity(total);
    for i in 0..total {
        let due = warm_start + Duration::from_secs_f64(i as f64 / rate);
        let addr = addr.clone();
        let text = text.clone();
        let target = format!("/query?mode=det&stream=1&k={}", base_k + (i % variants));
        workers.push(std::thread::spawn(move || {
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            http::stream(&addr, "POST", &target, &text)
        }));
    }
    let mut warm = PassStats {
        latency: Vec::new(),
        first_chunk: Vec::new(),
        rejected: 0,
        elapsed: Duration::ZERO,
    };
    for worker in workers {
        match worker.join().expect("worker thread") {
            Ok(r) if r.status == 200 => {
                warm.latency.push(r.total);
                warm.first_chunk.push(r.time_to_first_chunk);
            }
            Ok(_) => warm.rejected += 1,
            Err(e) => panic!("warm request failed: {e}"),
        }
    }
    warm.elapsed = warm_start.elapsed();

    let (_, stats) = http::call(&addr, "GET", "/stats", "").expect("stats");
    let (_, _) = http::call(&addr, "POST", "/admin/shutdown", "").expect("shutdown");
    handle.join();

    let cold_ms = sorted_ms(&cold.latency);
    let warm_ms = sorted_ms(&warm.latency);
    let cold_ttfc = sorted_ms(&cold.first_chunk);
    let warm_ttfc = sorted_ms(&warm.first_chunk);
    let cold_p50 = percentile(&cold_ms, 0.50);
    let warm_p50 = percentile(&warm_ms, 0.50);
    let throughput = warm.latency.len() as f64 / warm.elapsed.as_secs_f64();
    println!(
        "{name} @ {rate:.0} req/s: cold p50 {cold_p50:.2} ms, warm p50 {warm_p50:.2} ms \
         (p95 {:.2}, p99 {:.2}), ttfc p50 {:.2} ms, {throughput:.1} req/s served, {} rejected",
        percentile(&warm_ms, 0.95),
        percentile(&warm_ms, 0.99),
        percentile(&warm_ttfc, 0.50),
        warm.rejected,
    );
    let json = json!({
        "scenario": name,
        "rate_per_s": rate,
        "cold": {
            "requests": cold.latency.len(),
            "p50_ms": cold_p50,
            "p95_ms": percentile(&cold_ms, 0.95),
            "p99_ms": percentile(&cold_ms, 0.99),
            "time_to_first_chunk_p50_ms": percentile(&cold_ttfc, 0.50),
        },
        "warm": {
            "requests": warm.latency.len(),
            "rejected": warm.rejected,
            "p50_ms": warm_p50,
            "p95_ms": percentile(&warm_ms, 0.95),
            "p99_ms": percentile(&warm_ms, 0.99),
            "time_to_first_chunk_p50_ms": percentile(&warm_ttfc, 0.50),
            "throughput_per_s": throughput,
        },
        "warm_faster": warm_p50 < cold_p50,
        "server_stats": stats_excerpt(&stats),
    });
    Section {
        json,
        cold_ms,
        warm_ms,
    }
}

/// Closed-loop session-concurrency sweep against one warm daemon: the
/// same query mix at `base` concurrent sessions and at 4x that, every
/// session sharing the daemon's single executor pool. The gate is a
/// *flat p95*: quadrupling the session count must not quadruple tail
/// latency — admission keeps at most `max_concurrent` executions
/// feeding the pool and the pool's FIFO injector round-robins their
/// morsels, so added sessions queue at the gate instead of stretching
/// each other's execution. The flatness slack scales with how far the
/// offered load exceeds the host's cores (on a single-core host all
/// concurrency is time-sliced; on a 4-core host the 4x level rides
/// the pool's real parallelism).
fn bench_concurrency(smoke: bool) -> (serde_json::Value, bool) {
    let (handle, text, base_k) = boot("chain");
    let addr = handle.addr.to_string();
    let per = if smoke { 6 } else { 15 };
    let base = 4usize;

    // Warm the daemon first: plan cache + fetch caches, so the sweep
    // measures steady-state serving rather than cold planning.
    for i in 0..3 {
        let target = format!("/query?mode=det&k={}", base_k + (i % 3));
        let (status, _) = http::call(&addr, "POST", &target, &text).expect("warmup");
        assert_eq!(status, 200);
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut levels = Vec::new();
    let mut p95_by_level = Vec::new();
    for conc in [base, base * 4] {
        let started = Instant::now();
        let mut workers = Vec::new();
        for t in 0..conc {
            let addr = addr.clone();
            let text = text.clone();
            workers.push(std::thread::spawn(move || {
                // One untimed request absorbs the simultaneous-connect
                // convoy so the timed window sees steady state.
                let target = format!("/query?mode=det&k={}", base_k + (t % 3));
                let _ = http::call(&addr, "POST", &target, &text);
                let mut lat = Vec::with_capacity(per);
                for j in 0..per {
                    let target = format!("/query?mode=det&k={}", base_k + ((t + j) % 3));
                    let begin = Instant::now();
                    let (status, _) = http::call(&addr, "POST", &target, &text).expect("query");
                    if status == 200 {
                        lat.push(begin.elapsed());
                    }
                }
                lat
            }));
        }
        let mut latency: Vec<Duration> = Vec::new();
        for w in workers {
            latency.extend(w.join().expect("session worker"));
        }
        let elapsed = started.elapsed();
        let ms = sorted_ms(&latency);
        let p50 = percentile(&ms, 0.50);
        let p95 = percentile(&ms, 0.95);
        let served = latency.len();
        // Fair-share normalization: on a host with fewer cores than
        // concurrent sessions, each session only owns a
        // `cores / conc` time slice, so its wall latency is expected
        // to stretch by the oversubscription factor even under
        // perfectly fair scheduling. Dividing p95 by that factor
        // yields the per-fair-share latency the flatness gate checks:
        // flat normalized p95 means added sessions cost exactly their
        // time slice and nothing more (no lock convoys, no pool
        // starvation). On a >=16-core host oversub is 1 at both
        // levels and the gate demands raw flat p95.
        let oversub = (conc as f64 / cores as f64).max(1.0);
        let p95_norm = p95 / oversub;
        println!(
            "concurrency {conc}: {served} requests, p50 {p50:.2} ms, p95 {p95:.2} ms \
             ({p95_norm:.2} ms per fair share, {oversub:.0}x oversubscribed), {:.1} req/s",
            served as f64 / elapsed.as_secs_f64()
        );
        p95_by_level.push(p95_norm);
        levels.push(json!({
            "concurrency": conc,
            "requests": served,
            "p50_ms": p50,
            "p95_ms": p95,
            "oversubscription": oversub,
            "p95_ms_per_fair_share": p95_norm,
            "throughput_per_s": served as f64 / elapsed.as_secs_f64(),
        }));
    }
    let (_, stats) = http::call(&addr, "GET", "/stats", "").expect("stats");
    let _ = http::call(&addr, "POST", "/admin/shutdown", "");
    handle.join();

    // Flat within noise: 1.75x multiplicative plus a 2 ms absolute
    // floor so microsecond-scale warm hits don't trip on jitter.
    let flat = p95_by_level[1] <= p95_by_level[0] * 1.75 + 2.0;
    let report = json!({
        "base_concurrency": base,
        "host_cores": cores,
        "levels": levels,
        "note": "p95 per fair share = raw p95 / max(1, concurrency/cores); the \
    flatness gate runs on that normalization so oversubscribed single-core hosts \
    measure scheduler fairness rather than inevitable time-slicing",
        "p95_flat_at_4x": flat,
        "server_stats": stats_excerpt(&stats),
    });
    (report, flat)
}

/// Pulls a few integer counters back out of the `/stats` body (the
/// shim has no JSON parser, so this is a tolerant substring scan).
fn stats_excerpt(body: &str) -> serde_json::Value {
    let grab = |key: &str| -> u64 {
        body.find(&format!("\"{key}\":"))
            .map(|at| {
                body[at + key.len() + 3..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    };
    json!({
        "plan_cache_entries": grab("plan_cache_entries"),
        "cache_hits": grab("cache_hits"),
        "calls": grab("calls"),
        "admitted": grab("admitted"),
        "rejected": grab("rejected"),
        "sessions_open": grab("sessions_open"),
        "exec_morsels": grab("morsels"),
        "exec_steals": grab("steals"),
        "exec_busy_ms": grab("busy_ms"),
        "exec_threads_alive": grab("threads_alive"),
    })
}

/// Concurrent sessions must return byte-identical rows to a serial
/// one-shot engine run of the same query.
fn identity_check() -> bool {
    // Ground truth MUST come from the same scenario the server boots,
    // so both sides go through the shared `scenario` helper.
    let (registry, query) = scenario("chain");
    let best = optimize(&query, &registry, CostMetric::RequestCount).expect("plan");
    let out = execute_plan(
        &best.plan,
        &registry,
        EngineConfig::default().cache_shards(4),
    )
    .expect("one-shot run");
    let set = ResultSet::new(out.results, query.ranking.clone());
    let expected =
        serde_json::to_string(&render_rows(&query.ranking, &set.top_k(query.k))).expect("render");

    let (handle, text, k) = boot("chain");
    let addr = handle.addr.to_string();
    let mut workers = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        let text = text.clone();
        let target = format!("/query?mode=det&k={k}");
        workers.push(std::thread::spawn(move || {
            http::call(&addr, "POST", &target, &text).expect("query")
        }));
    }
    let bodies: Vec<String> = workers
        .into_iter()
        .map(|w| {
            let (status, body) = w.join().expect("worker");
            assert_eq!(status, 200);
            body
        })
        .collect();
    let _ = http::call(&addr, "POST", "/admin/shutdown", "");
    handle.join();
    let all_match = bodies.iter().all(|b| b.contains(&expected));
    if !all_match {
        eprintln!("identity check FAILED:\n  expected rows {expected}");
    }
    all_match
}

fn main() {
    let opts = parse_opts();
    let mut sections = Vec::new();
    let mut all_cold = Vec::new();
    let mut all_warm = Vec::new();
    for name in ["chain", "star"] {
        for &rate in &opts.rates {
            let section = bench_section(name, rate, opts.smoke);
            all_cold.extend_from_slice(&section.cold_ms);
            all_warm.extend_from_slice(&section.warm_ms);
            sections.push(section.json);
        }
    }
    let identical = identity_check();
    let (concurrency, p95_flat) = bench_concurrency(opts.smoke);
    // The asserted gate is the aggregate over every section: planning-
    // bound workloads (star) show a huge warm win, execution-bound ones
    // (chain) a thin one, and pooling the samples keeps the comparison
    // robust against scheduler noise in any single section.
    all_cold.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    all_warm.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let cold_p50 = percentile(&all_cold, 0.50);
    let warm_p50 = percentile(&all_warm, 0.50);
    let warm_faster = warm_p50 < cold_p50;
    println!(
        "identity: concurrent sessions byte-identical to serial one-shot = {identical}; \
         aggregate cold p50 {cold_p50:.2} ms vs warm p50 {warm_p50:.2} ms, \
         warm faster = {warm_faster}"
    );
    let report = json!({
        "mode": if opts.smoke { "smoke" } else { "full" },
        "rates_per_s": opts.rates,
        "sections": sections,
        "concurrent_identical_to_serial": identical,
        "aggregate_cold_p50_ms": cold_p50,
        "aggregate_warm_p50_ms": warm_p50,
        "warm_faster": warm_faster,
        "concurrency": concurrency,
    });
    let pretty = serde_json::to_string_pretty(&report).expect("render report");
    if let Some(dir) = std::path::Path::new(&opts.out).parent() {
        std::fs::create_dir_all(dir).expect("results dir");
    }
    std::fs::write(&opts.out, format!("{pretty}\n")).expect("write report");
    println!("wrote {}", opts.out);
    assert!(identical, "concurrent sessions must match the serial run");
    assert!(
        warm_faster,
        "aggregate warm p50 must beat aggregate cold p50"
    );
    assert!(
        p95_flat,
        "p95 must stay flat at 4x session concurrency (shared pool fairness)"
    );
}
