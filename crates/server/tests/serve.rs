//! End-to-end serving-layer tests over real TCP connections.
//!
//! Covers the PR's acceptance bar: a second session planning the same
//! query hits the shared plan cache and fetch cache; concurrent
//! sessions return byte-identical rows to a serial one-shot engine
//! run; a statistics promotion in one session's wake invalidates
//! cached plans for every other session; admission control and tenant
//! budgets refuse work deterministically; and the streamed frame
//! protocol plus the liquid-query continuations behave.

use std::net::TcpStream;

use seco_engine::{execute_plan, EngineConfig, ResultSet};
use seco_optimizer::{optimize, CostMetric};
use seco_server::{http, render_rows, Server, ServerConfig, ServerHandle, ServerState};
use seco_services::ServiceRegistry;

fn boot(registry: ServiceRegistry, config: ServerConfig) -> (ServerHandle, String) {
    let state = ServerState::new(registry, config);
    let server = Server::bind("127.0.0.1:0", state).expect("bind ephemeral port");
    let handle = server.spawn().expect("spawn accept loop");
    let addr = handle.addr.to_string();
    (handle, addr)
}

fn chain_server(config: ServerConfig) -> (ServerHandle, String, String, usize) {
    let (registry, query) = seco_bench::chain_scenario(3, 42);
    let text = query.to_string();
    let k = query.k;
    let (handle, addr) = boot(registry, config);
    (handle, addr, text, k)
}

fn stop(handle: ServerHandle, addr: &str) {
    let _ = http::call(addr, "POST", "/admin/shutdown", "");
    handle.join();
}

/// Tolerant scan for `"key":<integer>` in a compact JSON body.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let at = body.find(&format!("\"{key}\":"))?;
    let digits: String = body[at + key.len() + 3..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn cached_flag(body: &str) -> Option<bool> {
    let at = body.find("\"cached\":")?;
    let rest = &body[at + "\"cached\":".len()..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

#[test]
fn second_identical_query_hits_plan_and_fetch_caches() {
    let (handle, addr, text, k) = chain_server(ServerConfig::default());
    let target = format!("/query?k={k}");

    let (status, first) = http::call(&addr, "POST", &target, &text).expect("first query");
    assert_eq!(status, 200);
    assert_eq!(cached_flag(&first), Some(false), "cold plan: {first}");
    let (_, stats) = http::call(&addr, "GET", "/stats", "").expect("stats");
    let hits_before = json_u64(&stats, "cache_hits").expect("counter present");
    assert_eq!(json_u64(&stats, "plan_cache_entries"), Some(1));

    let (status, second) = http::call(&addr, "POST", &target, &text).expect("second query");
    assert_eq!(status, 200);
    assert_eq!(cached_flag(&second), Some(true), "warm plan: {second}");
    let (_, stats) = http::call(&addr, "GET", "/stats", "").expect("stats");
    let hits_after = json_u64(&stats, "cache_hits").expect("counter present");
    assert!(
        hits_after > hits_before,
        "second session re-reads cached chunks ({hits_before} -> {hits_after})"
    );

    stop(handle, &addr);
}

#[test]
fn concurrent_sessions_match_the_serial_oneshot_run() {
    // Ground truth: a fresh one-shot engine run, rendered through the
    // same row renderer the server uses.
    let (registry, query) = seco_bench::chain_scenario(3, 42);
    let best = optimize(&query, &registry, CostMetric::RequestCount).expect("plan");
    let out = execute_plan(
        &best.plan,
        &registry,
        EngineConfig::default().cache_shards(4),
    )
    .expect("one-shot run");
    let set = ResultSet::new(out.results, query.ranking.clone());
    let expected =
        serde_json::to_string(&render_rows(&query.ranking, &set.top_k(query.k))).expect("rows");
    assert!(expected.len() > 2, "scenario produces rows");

    let (handle, addr, text, k) = chain_server(ServerConfig::default());
    let target = format!("/query?k={k}");
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let text = text.clone();
            let target = target.clone();
            std::thread::spawn(move || http::call(&addr, "POST", &target, &text).expect("query"))
        })
        .collect();
    for worker in workers {
        let (status, body) = worker.join().expect("worker");
        assert_eq!(status, 200);
        assert!(
            body.contains(&expected),
            "concurrent session diverged from serial run:\n  want {expected}\n  got  {body}"
        );
    }
    stop(handle, &addr);
}

#[test]
fn promotion_rolls_the_epoch_and_invalidates_cached_plans() {
    // The misdeclared-hub registry: observed cardinality is 10x the
    // declaration, so a promotion has something to promote.
    let registry = seco_bench::adaptive_registry(7, 10.0);
    let text = format!("{} top 1", seco_bench::adaptive_query());
    let (handle, addr) = boot(registry, ServerConfig::default());

    let (_, first) = http::call(&addr, "POST", "/query?k=1", &text).expect("first");
    assert_eq!(cached_flag(&first), Some(false));
    let (_, second) = http::call(&addr, "POST", "/query?k=1", &text).expect("second");
    assert_eq!(cached_flag(&second), Some(true), "same epoch: cache hit");

    let (status, promo) = http::call(
        &addr,
        "POST",
        "/admin/promote?threshold=2&min-samples=1",
        "",
    )
    .expect("promote");
    assert_eq!(status, 200);
    assert!(
        promo.contains("Hub1"),
        "the misdeclared hub is promoted: {promo}"
    );
    assert!(json_u64(&promo, "stats_epoch").expect("epoch") >= 1);

    let (_, third) = http::call(&addr, "POST", "/query?k=1", &text).expect("third");
    assert_eq!(
        cached_flag(&third),
        Some(false),
        "epoch roll invalidated the cached plan for later sessions: {third}"
    );
    let (_, fourth) = http::call(&addr, "POST", "/query?k=1", &text).expect("fourth");
    assert_eq!(cached_flag(&fourth), Some(true), "new epoch re-cached");

    stop(handle, &addr);
}

#[test]
fn tenant_budgets_are_enforced_per_tenant() {
    let (handle, addr, text, k) = chain_server(ServerConfig {
        tenant_budget: 1,
        ..Default::default()
    });
    let (status, body) =
        http::call(&addr, "POST", &format!("/query?k={k}&tenant=alpha"), &text).expect("first");
    assert_eq!(status, 200);
    assert!(json_u64(&body, "calls").expect("calls counted") >= 1);

    let (status, body) =
        http::call(&addr, "POST", &format!("/query?k={k}&tenant=alpha"), &text).expect("second");
    assert_eq!(status, 429, "budget spent: {body}");
    assert!(body.contains("budget"));

    let (status, _) =
        http::call(&addr, "POST", &format!("/query?k={k}&tenant=beta"), &text).expect("beta");
    assert_eq!(status, 200, "other tenants unaffected");

    stop(handle, &addr);
}

#[test]
fn streaming_emits_plan_chunk_summary_frames_in_order() {
    let (handle, addr, text, k) = chain_server(ServerConfig::default());
    let r = http::stream(
        &addr,
        "POST",
        &format!("/query?stream=1&k={k}&chunk=2"),
        &text,
    )
    .expect("streamed query");
    assert_eq!(r.status, 200);
    let plan_at = r.body.find("\"frame\":\"plan\"").expect("plan frame");
    let chunk_at = r.body.find("\"frame\":\"chunk\"").expect("chunk frame");
    let summary_at = r.body.find("\"frame\":\"summary\"").expect("summary frame");
    assert!(plan_at < chunk_at && chunk_at < summary_at, "frame order");
    assert!(r.time_to_first_chunk <= r.total);
    let delivered = json_u64(&r.body, "delivered").expect("summary counts");
    assert!(delivered > 0 && delivered as usize <= k);
    stop(handle, &addr);
}

#[test]
fn liquid_ops_continue_the_session_cursor() {
    let (handle, addr, text, k) = chain_server(ServerConfig::default());
    let (status, body) = http::call(&addr, "POST", &format!("/query?k={k}"), &text).expect("open");
    assert_eq!(status, 200);
    let sid = json_u64(&body, "session").expect("session id");

    // `more` pages past the delivered top-k without repeating.
    let (status, more) =
        http::call(&addr, "POST", &format!("/session/{sid}/more?n=2"), "").expect("more");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&more, "delivered"), Some(k as u64 + 2));

    // `rerank` swaps weights (3-atom chain: 3 weights) and keeps the cursor.
    let (status, rerank) = http::call(
        &addr,
        "POST",
        &format!("/session/{sid}/rerank"),
        "0.0,0.0,1.0",
    )
    .expect("rerank");
    assert_eq!(status, 200, "{rerank}");
    assert_eq!(json_u64(&rerank, "delivered"), Some(k as u64 + 2));
    let (status, bad) =
        http::call(&addr, "POST", &format!("/session/{sid}/rerank"), "0.5,0.5").expect("bad arity");
    assert_eq!(status, 400, "{bad}");

    // `expand` deepens one branch against warm caches.
    let before = json_u64(&more, "remaining").expect("remaining") + k as u64 + 2;
    let (status, expand) = http::call(
        &addr,
        "POST",
        &format!("/session/{sid}/expand?atom=A3&extra=2"),
        "",
    )
    .expect("expand");
    assert_eq!(status, 200, "{expand}");
    let total = json_u64(&expand, "combinations").expect("combinations");
    assert!(total >= before, "expansion never shrinks the universe");

    // Close; further ops 404.
    let (status, _) = http::call(&addr, "DELETE", &format!("/session/{sid}"), "").expect("close");
    assert_eq!(status, 200);
    let (status, _) =
        http::call(&addr, "POST", &format!("/session/{sid}/more"), "").expect("after close");
    assert_eq!(status, 404);

    stop(handle, &addr);
}

#[test]
fn stats_expose_the_interner_growth_counters() {
    let (handle, addr, text, k) = chain_server(ServerConfig::default());
    let _ = http::call(&addr, "POST", &format!("/query?k={k}"), &text).expect("query");
    let (_, stats) = http::call(&addr, "GET", "/stats", "").expect("stats");
    let symbols = json_u64(&stats, "interner_symbols").expect("symbol count");
    let bytes = json_u64(&stats, "interner_bytes").expect("byte count");
    assert!(symbols > 0 && bytes >= symbols, "{stats}");
    stop(handle, &addr);
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let (handle, addr, text, k) = chain_server(ServerConfig::default());
    let _ = http::call(&addr, "POST", &format!("/query?k={k}"), &text).expect("warm-up");
    let (status, body) = http::call(&addr, "POST", "/admin/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    assert!(body.contains("\"drained\":true"), "{body}");
    handle.join();
    // The accept loop is gone: connecting now fails outright.
    assert!(TcpStream::connect(&addr).is_err(), "listener closed");
}
