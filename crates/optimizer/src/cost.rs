//! Cost metrics (§5.1).
//!
//! A cost metric maps a fully instantiated plan to a scalar. All five
//! chapter metrics are provided:
//!
//! * **Execution time** — expected time from submission to the `k`-th
//!   answer: the slowest input→output path, where a service node
//!   contributes `calls × response_time` (its calls are sequential
//!   within the node, branches run in parallel).
//! * **Sum** — the sum of every operator's cost; service invocations
//!   charge `calls × cost_per_call`.
//! * **Request count** — the sum cost metric "simplification \[where\]
//!   every service invocation has the same cost": counts calls.
//! * **Bottleneck** — the execution time of the slowest single service
//!   in the plan (the WSMS metric of \[22\]; "not advised in our
//!   context").
//! * **Time-to-screen** — time until the *first* output tuple: the
//!   slowest input→output path with one call per service node.
//!
//! All metrics are **monotonic**: adding nodes or increasing fetch
//! factors never decreases cost. Branch-and-bound relies on this
//! (§5.2).

use std::fmt;

use seco_plan::{AnnotatedPlan, NodeId, PlanNode, QueryPlan};
use seco_services::ServiceRegistry;

use crate::error::OptError;

/// The cost metric to optimize for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostMetric {
    /// Expected elapsed time to the k-th answer (ms).
    ExecutionTime,
    /// Sum of all operator costs (abstract units).
    Sum,
    /// Number of request-responses.
    RequestCount,
    /// Execution time of the slowest service (ms).
    Bottleneck,
    /// Expected elapsed time to the first answer (ms).
    TimeToScreen,
}

impl CostMetric {
    /// All five metrics, for comparison experiments (E14).
    pub fn all() -> [CostMetric; 5] {
        [
            CostMetric::ExecutionTime,
            CostMetric::Sum,
            CostMetric::RequestCount,
            CostMetric::Bottleneck,
            CostMetric::TimeToScreen,
        ]
    }

    /// Evaluates the metric on an annotated plan.
    pub fn evaluate(
        &self,
        plan: &QueryPlan,
        annotated: &AnnotatedPlan,
        registry: &ServiceRegistry,
    ) -> Result<f64, OptError> {
        match self {
            CostMetric::ExecutionTime => critical_path(plan, annotated, registry, false),
            CostMetric::TimeToScreen => critical_path(plan, annotated, registry, true),
            CostMetric::Sum => {
                let mut total = 0.0;
                for id in plan.node_ids() {
                    if let PlanNode::Service(node) = plan.node(id)? {
                        let iface = registry.interface(&node.service)?;
                        total += annotated.annotation(id).calls * iface.stats.cost_per_call;
                    }
                }
                Ok(total)
            }
            CostMetric::RequestCount => Ok(annotated.total_calls()),
            CostMetric::Bottleneck => {
                let mut worst: f64 = 0.0;
                for id in plan.node_ids() {
                    if let PlanNode::Service(node) = plan.node(id)? {
                        let iface = registry.interface(&node.service)?;
                        worst = worst
                            .max(annotated.annotation(id).calls * iface.stats.response_time_ms);
                    }
                }
                Ok(worst)
            }
        }
    }
}

impl fmt::Display for CostMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CostMetric::ExecutionTime => "execution-time",
            CostMetric::Sum => "sum",
            CostMetric::RequestCount => "request-count",
            CostMetric::Bottleneck => "bottleneck",
            CostMetric::TimeToScreen => "time-to-screen",
        };
        f.write_str(s)
    }
}

/// Longest-path elapsed time. `first_tuple` switches every service node
/// to a single call (time-to-screen).
fn critical_path(
    plan: &QueryPlan,
    annotated: &AnnotatedPlan,
    registry: &ServiceRegistry,
    first_tuple: bool,
) -> Result<f64, OptError> {
    let order = plan.topo_order()?;
    let mut finish = vec![0.0f64; plan.len()];
    for id in order {
        let start = plan
            .predecessors(id)
            .iter()
            .map(|p| finish[p.0])
            .fold(0.0f64, f64::max);
        let own = node_time(plan, annotated, registry, id, first_tuple)?;
        finish[id.0] = start + own;
    }
    Ok(finish[plan.output().0])
}

fn node_time(
    plan: &QueryPlan,
    annotated: &AnnotatedPlan,
    registry: &ServiceRegistry,
    id: NodeId,
    first_tuple: bool,
) -> Result<f64, OptError> {
    Ok(match plan.node(id)? {
        PlanNode::Service(node) => {
            let iface = registry.interface(&node.service)?;
            let calls = if first_tuple {
                1.0
            } else {
                annotated.annotation(id).calls
            };
            calls * iface.stats.response_time_ms
        }
        // Join, selection, input, and output are main-memory operations;
        // the chapter's cost model neglects them ("once a chunk is
        // retrieved […] join requires simple main-memory comparison
        // operations and can be neglected", §4.1).
        _ => 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_plan::{annotate, AnnotationConfig, PlanNode, QueryPlan, ServiceNode};
    use seco_query::builder::running_example;
    use seco_query::QueryBuilder;
    use seco_services::domains::entertainment;

    /// The Fig. 10 plan (same construction as the plan crate's tests).
    fn fig10() -> (QueryPlan, seco_services::ServiceRegistry) {
        let reg = entertainment::build_registry(1).unwrap();
        let query = running_example();
        let mut p = QueryPlan::new(query.clone());
        let m = p.add(PlanNode::Service(
            ServiceNode::new("M", "Movie1").with_fetches(5),
        ));
        let t = p.add(PlanNode::Service(
            ServiceNode::new("T", "Theatre1").with_fetches(5),
        ));
        let joins = query.expanded_joins(&reg).unwrap();
        let shows: Vec<_> = joins
            .iter()
            .filter(|j| j.connects("M", "T"))
            .cloned()
            .collect();
        let j = p.add(PlanNode::ParallelJoin(seco_plan::JoinSpec {
            invocation: seco_plan::Invocation::merge_scan_even(),
            completion: seco_plan::Completion::Triangular,
            predicates: shows,
            selectivity: entertainment::SHOWS_SELECTIVITY,
        }));
        let r = p.add(PlanNode::Service(
            ServiceNode::new("R", "Restaurant1").with_keep_first(),
        ));
        p.connect(p.input(), m).unwrap();
        p.connect(p.input(), t).unwrap();
        p.connect(m, j).unwrap();
        p.connect(t, j).unwrap();
        p.connect(j, r).unwrap();
        p.connect(r, p.output()).unwrap();
        (p, reg)
    }

    #[test]
    fn request_count_counts_calls() {
        let (plan, reg) = fig10();
        let ann = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
        let c = CostMetric::RequestCount
            .evaluate(&plan, &ann, &reg)
            .unwrap();
        // 5 Movie + 5 Theatre + 25 Restaurant.
        assert_eq!(c, 35.0);
    }

    #[test]
    fn sum_uses_per_call_costs() {
        let (plan, reg) = fig10();
        let ann = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
        let c = CostMetric::Sum.evaluate(&plan, &ann, &reg).unwrap();
        // All cost_per_call are 1 in the entertainment domain.
        assert_eq!(c, 35.0);
    }

    #[test]
    fn execution_time_takes_the_slowest_path() {
        let (plan, reg) = fig10();
        let ann = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
        let c = CostMetric::ExecutionTime
            .evaluate(&plan, &ann, &reg)
            .unwrap();
        // Movie branch: 5 × 120 = 600; Theatre branch: 5 × 80 = 400.
        // Restaurant: 25 × 60 = 1500. Critical path = 600 + 1500.
        assert_eq!(c, 2100.0);
    }

    #[test]
    fn bottleneck_is_the_slowest_service() {
        let (plan, reg) = fig10();
        let ann = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
        let c = CostMetric::Bottleneck.evaluate(&plan, &ann, &reg).unwrap();
        assert_eq!(c, 1500.0, "Restaurant's 25 × 60 ms dominates");
    }

    #[test]
    fn time_to_screen_uses_one_call_per_service() {
        let (plan, reg) = fig10();
        let ann = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
        let c = CostMetric::TimeToScreen
            .evaluate(&plan, &ann, &reg)
            .unwrap();
        // max(120, 80) + 60 = 180.
        assert_eq!(c, 180.0);
    }

    #[test]
    fn metrics_are_monotone_in_fetch_factors() {
        let (mut plan, reg) = fig10();
        let ann1 = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
        let m = plan.service_node_of("M").unwrap();
        if let PlanNode::Service(s) = plan.node_mut(m).unwrap() {
            s.fetches += 3;
        }
        let ann2 = annotate(&plan, &reg, &AnnotationConfig::default()).unwrap();
        for metric in CostMetric::all() {
            let c1 = metric.evaluate(&plan, &ann1, &reg).unwrap();
            let c2 = metric.evaluate(&plan, &ann2, &reg).unwrap();
            assert!(c2 >= c1, "{metric} must be monotone in F ({c1} -> {c2})");
        }
    }

    #[test]
    fn single_service_costs() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = QueryBuilder::new()
            .atom("M", "Movie1")
            .select_input("M", "Genres.Genre", seco_model::Comparator::Eq, "I1")
            .select_input("M", "Language", seco_model::Comparator::Eq, "I2")
            .select_input("M", "Openings.Country", seco_model::Comparator::Eq, "I3")
            .select_input("M", "Openings.Date", seco_model::Comparator::Gt, "I4")
            .input("I1", seco_model::Value::text("x"))
            .input("I2", seco_model::Value::text("x"))
            .input("I3", seco_model::Value::text("x"))
            .input(
                "I4",
                seco_model::Value::Date(seco_model::Date::new(2009, 1, 1)),
            )
            .build()
            .unwrap();
        let mut p = QueryPlan::new(q);
        let m = p.add(PlanNode::Service(
            ServiceNode::new("M", "Movie1").with_fetches(2),
        ));
        p.connect(p.input(), m).unwrap();
        p.connect(m, p.output()).unwrap();
        let ann = annotate(&p, &reg, &AnnotationConfig::default()).unwrap();
        assert_eq!(
            CostMetric::RequestCount.evaluate(&p, &ann, &reg).unwrap(),
            2.0
        );
        assert_eq!(
            CostMetric::ExecutionTime.evaluate(&p, &ann, &reg).unwrap(),
            240.0
        );
        assert_eq!(
            CostMetric::TimeToScreen.evaluate(&p, &ann, &reg).unwrap(),
            120.0
        );
        assert_eq!(
            CostMetric::Bottleneck.evaluate(&p, &ann, &reg).unwrap(),
            240.0
        );
    }

    #[test]
    fn metric_display_names() {
        assert_eq!(CostMetric::ExecutionTime.to_string(), "execution-time");
        assert_eq!(CostMetric::all().len(), 5);
    }
}
