//! Error type of the optimizer.

use std::fmt;

use seco_plan::PlanError;
use seco_query::QueryError;
use seco_services::ServiceError;

/// Errors raised during optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// Underlying query error (notably infeasibility).
    Query(QueryError),
    /// Underlying plan error.
    Plan(PlanError),
    /// Underlying service/registry error.
    Service(ServiceError),
    /// No plan reaches the requested `k` answers even at maximum fetch
    /// factors; carries the best achievable estimate.
    Unreachable {
        /// Expected answers of the best instantiation found.
        best_estimate: f64,
        /// The requested `k`.
        k: usize,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Query(e) => write!(f, "query error: {e}"),
            OptError::Plan(e) => write!(f, "plan error: {e}"),
            OptError::Service(e) => write!(f, "service error: {e}"),
            OptError::Unreachable { best_estimate, k } => write!(
                f,
                "no instantiation reaches k={k} answers (best estimate {best_estimate:.1})"
            ),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Query(e) => Some(e),
            OptError::Plan(e) => Some(e),
            OptError::Service(e) => Some(e),
            OptError::Unreachable { .. } => None,
        }
    }
}

impl From<QueryError> for OptError {
    fn from(e: QueryError) -> Self {
        OptError::Query(e)
    }
}
impl From<PlanError> for OptError {
    fn from(e: PlanError) -> Self {
        OptError::Plan(e)
    }
}
impl From<ServiceError> for OptError {
    fn from(e: ServiceError) -> Self {
        OptError::Service(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = OptError::Unreachable {
            best_estimate: 3.5,
            k: 10,
        };
        assert!(e.to_string().contains("k=10"));
        assert!(std::error::Error::source(&e).is_none());
        let e: OptError = QueryError::UnknownAtom("a".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: OptError = PlanError::Cyclic.into();
        assert!(e.to_string().contains("plan error"));
        let e: OptError = ServiceError::UnknownService("s".into()).into();
        assert!(e.to_string().contains("service error"));
    }
}
