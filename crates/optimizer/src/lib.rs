//! # seco-optimizer — branch-and-bound query optimization (§5)
//!
//! Translates a conjunctive query over service interfaces into the
//! fully instantiated invocation schedule that minimizes a chosen cost
//! metric for producing the first `k` answers. The exploration of the
//! combinatorial plan space is organized in the chapter's three phases:
//!
//! 1. **Access-pattern selection** ([`phase1`]) — pick a concrete
//!    service interface per atom so the query is provably feasible;
//!    heuristics *bound-is-better* and *unbound-is-easier* (§5.3).
//! 2. **Topology selection** ([`phase2`]) — fix the invocation order,
//!    dataflow, and join operations compatible with the I/O precedence
//!    constraints; heuristics *selective-first* and
//!    *parallel-is-better* (§5.4).
//! 3. **Fetch assignment** ([`phase3`]) — choose the fetching factors
//!    `⟨F1, …, FM⟩` of the chunked services so the plan yields at least
//!    `k` answers; heuristics *greedy* and *square-is-better* (§5.5).
//!
//! Each phase branches; bounding uses the monotonicity of all supported
//! cost metrics ([`cost`]): the cost of a partially constructed plan
//! (all fetch factors at their minimum) lower-bounds every completion,
//! so a subtree whose lower bound exceeds the incumbent's cost is
//! pruned (§5.2, Fig. 8). The search is *anytime*: it can be stopped at
//! any evaluation budget and still returns the current incumbent.
//! [`exhaustive`] provides the unpruned enumeration used as the
//! optimality oracle in tests.

pub mod bnb;
pub mod cost;
pub mod error;
pub mod exhaustive;
pub mod heuristics;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod plan_cache;
pub mod replan;

pub use bnb::{optimize, Optimized, Optimizer, SearchStats};
pub use cost::CostMetric;
pub use error::OptError;
pub use heuristics::{HeuristicSet, Phase1Heuristic, Phase2Heuristic, Phase3Heuristic};
pub use phase3::Phase3Stats;
pub use plan_cache::{query_fingerprint, PlanCache};
pub use replan::prefix_signature;

/// Result alias for optimizer operations.
pub type Result<T> = std::result::Result<T, OptError>;
