//! Branching heuristics for the three optimization phases (§5.3–§5.5).
//!
//! Heuristics only *order* the branches — they never exclude any, so the
//! search stays complete; a good order merely finds a strong incumbent
//! early, which makes the bounding step prune more.

use std::fmt;

/// Phase-1 (access-pattern selection) branch ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase1Heuristic {
    /// "Prefer [access patterns] with many input attributes. The
    /// intuition: the more attributes are bound, the smaller the answer
    /// set" (§5.3).
    BoundIsBetter,
    /// "An initialization with the minimum number of input attributes
    /// may make it easier to build a feasible solution" (§5.3).
    UnboundIsEasier,
}

impl Phase1Heuristic {
    /// Sort key for an interface with `input_arity` inputs: lower keys
    /// are tried first.
    pub fn key(&self, input_arity: usize) -> i64 {
        match self {
            // Many inputs first → negate.
            Phase1Heuristic::BoundIsBetter => -(input_arity as i64),
            Phase1Heuristic::UnboundIsEasier => input_arity as i64,
        }
    }
}

impl fmt::Display for Phase1Heuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase1Heuristic::BoundIsBetter => write!(f, "bound-is-better"),
            Phase1Heuristic::UnboundIsEasier => write!(f, "unbound-is-easier"),
        }
    }
}

/// Phase-2 (topology selection) branch ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase2Heuristic {
    /// "Having long linear paths in the DAG, ordered by decreasing
    /// selectivity, wherever possible (ideally, one chain from input to
    /// output)" (§5.4).
    SelectiveFirst,
    /// "Always making the choice that maximizes parallelism. […]
    /// incrementing the parallelism plays in favor of those metrics
    /// that take time into account, while sequencing selective services
    /// plays in favor of metrics that minimize the overall number of
    /// invocations" (§5.4).
    ParallelIsBetter,
}

impl Phase2Heuristic {
    /// Orders the serial-vs-parallel attachment choice: returns true
    /// when the parallel attachment should be tried first.
    pub fn parallel_first(&self) -> bool {
        matches!(self, Phase2Heuristic::ParallelIsBetter)
    }
}

impl fmt::Display for Phase2Heuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase2Heuristic::SelectiveFirst => write!(f, "selective-first"),
            Phase2Heuristic::ParallelIsBetter => write!(f, "parallel-is-better"),
        }
    }
}

/// Phase-3 (fetch assignment) increment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase3Heuristic {
    /// "The Fi to be incremented is the one […] with the highest
    /// sensitivity with respect to the increase in the number of tuples
    /// in the query result per cost unit" (§5.5).
    Greedy,
    /// "Each Fi is incremented by a value proportional to its chunk
    /// size[, so that] all chunked services will have explored about the
    /// same number of tuples" (§5.5).
    SquareIsBetter,
}

impl fmt::Display for Phase3Heuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase3Heuristic::Greedy => write!(f, "greedy"),
            Phase3Heuristic::SquareIsBetter => write!(f, "square-is-better"),
        }
    }
}

/// The heuristic configuration of one optimizer run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicSet {
    /// Phase-1 ordering.
    pub phase1: Phase1Heuristic,
    /// Phase-2 ordering.
    pub phase2: Phase2Heuristic,
    /// Phase-3 increment policy.
    pub phase3: Phase3Heuristic,
}

impl Default for HeuristicSet {
    fn default() -> Self {
        HeuristicSet {
            phase1: Phase1Heuristic::BoundIsBetter,
            phase2: Phase2Heuristic::ParallelIsBetter,
            phase3: Phase3Heuristic::SquareIsBetter,
        }
    }
}

impl fmt::Display for HeuristicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.phase1, self.phase2, self.phase3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase1_keys_order_opposite_ways() {
        let b = Phase1Heuristic::BoundIsBetter;
        let u = Phase1Heuristic::UnboundIsEasier;
        assert!(
            b.key(5) < b.key(1),
            "bound-is-better tries many-input interfaces first"
        );
        assert!(
            u.key(1) < u.key(5),
            "unbound-is-easier tries few-input interfaces first"
        );
    }

    #[test]
    fn phase2_parallel_preference() {
        assert!(Phase2Heuristic::ParallelIsBetter.parallel_first());
        assert!(!Phase2Heuristic::SelectiveFirst.parallel_first());
    }

    #[test]
    fn displays() {
        assert_eq!(
            HeuristicSet::default().to_string(),
            "bound-is-better/parallel-is-better/square-is-better"
        );
        assert_eq!(Phase3Heuristic::Greedy.to_string(), "greedy");
        assert_eq!(
            Phase2Heuristic::SelectiveFirst.to_string(),
            "selective-first"
        );
        assert_eq!(
            Phase1Heuristic::UnboundIsEasier.to_string(),
            "unbound-is-easier"
        );
    }
}
