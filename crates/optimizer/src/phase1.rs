//! Phase 1: access-pattern (service-interface) selection (§5.3).
//!
//! Each query atom names either a concrete service interface or a
//! service mart. Phase 1 assigns a concrete interface to every atom —
//! enumerating the candidates of mart-level atoms in heuristic order —
//! and keeps only the assignments under which the query is *feasible*
//! (every atom reachable). "If no feasible plan can be generated for a
//! given query, the translation fails."

use seco_query::feasibility::{analyze, FeasibilityReport};
use seco_query::Query;
use seco_services::ServiceRegistry;

use crate::error::OptError;
use crate::heuristics::Phase1Heuristic;

/// A feasible interface assignment: the query rewritten onto concrete
/// interfaces, plus its feasibility report.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The query with every atom bound to a concrete interface.
    pub query: Query,
    /// Reachability order and I/O dependencies under this assignment.
    pub report: FeasibilityReport,
}

/// Candidate interface names for one atom: the atom's service if it is
/// a registered interface, otherwise all interfaces of the mart with
/// that name, ordered by the heuristic.
fn candidates_for(
    service_or_mart: &str,
    registry: &ServiceRegistry,
    heuristic: Phase1Heuristic,
) -> Result<Vec<String>, OptError> {
    if registry.interface(service_or_mart).is_ok() {
        return Ok(vec![service_or_mart.to_owned()]);
    }
    let mut ifaces = registry.interfaces_of_mart(service_or_mart);
    if ifaces.is_empty() {
        return Err(OptError::Service(
            seco_services::ServiceError::UnknownService(service_or_mart.to_owned()),
        ));
    }
    ifaces.sort_by_key(|i| (heuristic.key(i.input_arity()), i.name.clone()));
    Ok(ifaces.into_iter().map(|i| i.name.clone()).collect())
}

/// Enumerates all feasible assignments, in heuristic order.
///
/// The heuristic orders the per-atom candidate lists; the cartesian
/// product is walked in lexicographic order of those lists, so
/// *bound-is-better* yields assignments with many bound inputs first
/// and *unbound-is-easier* the opposite.
pub fn enumerate_assignments(
    query: &Query,
    registry: &ServiceRegistry,
    heuristic: Phase1Heuristic,
) -> Result<Vec<Assignment>, OptError> {
    let per_atom: Vec<Vec<String>> = query
        .atoms
        .iter()
        .map(|a| candidates_for(&a.service, registry, heuristic))
        .collect::<Result<_, _>>()?;

    let mut out = Vec::new();
    let mut last_infeasible: Option<OptError> = None;
    let mut index = vec![0usize; per_atom.len()];
    loop {
        // Materialize the current assignment (per_atom is positionally
        // aligned with the query's atoms).
        let mut q = query.clone();
        for (i, atom) in q.atoms.iter_mut().enumerate() {
            atom.service = per_atom[i][index[i]].clone();
        }
        match analyze(&q, registry) {
            Ok(report) => out.push(Assignment { query: q, report }),
            Err(e @ seco_query::QueryError::Infeasible { .. }) => {
                last_infeasible = Some(OptError::Query(e));
            }
            Err(e) => return Err(OptError::Query(e)),
        }
        // Advance the odometer.
        let mut i = per_atom.len();
        loop {
            if i == 0 {
                if out.is_empty() {
                    return Err(last_infeasible.unwrap_or_else(|| {
                        OptError::Query(seco_query::QueryError::Infeasible {
                            unreachable: vec![],
                            unbound_inputs: vec![],
                        })
                    }));
                }
                return Ok(out);
            }
            i -= 1;
            index[i] += 1;
            if index[i] < per_atom[i].len() {
                break;
            }
            index[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_query::builder::running_example;
    use seco_query::QueryBuilder;
    use seco_services::domains::entertainment;
    use seco_services::synthetic::{DomainMap, SyntheticService};
    use std::sync::Arc;

    #[test]
    fn interface_level_query_has_one_assignment() {
        let reg = entertainment::build_registry(1).unwrap();
        let out = enumerate_assignments(&running_example(), &reg, Phase1Heuristic::BoundIsBetter)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].query.atom("M").unwrap().service, "Movie1");
    }

    /// Registers a second Movie interface with fewer inputs (title
    /// lookup) so the Movie mart has two access patterns.
    fn registry_with_two_movie_interfaces() -> seco_services::ServiceRegistry {
        use seco_model::{
            Adornment, AttributeDef, DataType, ScoreDecay, ServiceInterface, ServiceKind,
            ServiceSchema, ServiceStats,
        };
        let mut reg = entertainment::build_registry(1).unwrap();
        let schema = ServiceSchema::new(
            "Movie2",
            vec![
                AttributeDef::atomic("Title", DataType::Text, Adornment::Input),
                AttributeDef::atomic("Director", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        let iface = ServiceInterface::new(
            "Movie2",
            "Movie",
            schema,
            ServiceKind::Search,
            ServiceStats::new(30.0, 10, 100.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(iface, DomainMap::new(), 77)))
            .unwrap();
        reg
    }

    #[test]
    fn mart_level_query_enumerates_interfaces_in_heuristic_order() {
        let reg = registry_with_two_movie_interfaces();
        // Query over the *mart* name "Movie"; bind enough inputs for
        // both interfaces to be feasible.
        let q = QueryBuilder::new()
            .atom("M", "Movie")
            .select_input("M", "Genres.Genre", seco_model::Comparator::Eq, "I1")
            .select_input("M", "Language", seco_model::Comparator::Eq, "I2")
            .select_input("M", "Openings.Country", seco_model::Comparator::Eq, "I3")
            .select_input("M", "Openings.Date", seco_model::Comparator::Gt, "I4")
            .select_input("M", "Title", seco_model::Comparator::Eq, "I5")
            .build()
            .unwrap();
        // Movie1 has 4 inputs, Movie2 has 1.
        let bound = enumerate_assignments(&q, &reg, Phase1Heuristic::BoundIsBetter).unwrap();
        assert_eq!(bound.len(), 2);
        assert_eq!(bound[0].query.atom("M").unwrap().service, "Movie1");
        let unbound = enumerate_assignments(&q, &reg, Phase1Heuristic::UnboundIsEasier).unwrap();
        assert_eq!(unbound[0].query.atom("M").unwrap().service, "Movie2");
    }

    #[test]
    fn infeasible_assignments_are_filtered() {
        let reg = registry_with_two_movie_interfaces();
        // Only the Title input is bound: Movie1 (4 inputs) infeasible,
        // Movie2 feasible.
        let q = QueryBuilder::new()
            .atom("M", "Movie")
            .select_input("M", "Title", seco_model::Comparator::Eq, "I5")
            .build()
            .unwrap();
        let out = enumerate_assignments(&q, &reg, Phase1Heuristic::BoundIsBetter).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].query.atom("M").unwrap().service, "Movie2");
    }

    #[test]
    fn fully_infeasible_query_errors() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = QueryBuilder::new().atom("T", "Theatre1").build().unwrap();
        let err = enumerate_assignments(&q, &reg, Phase1Heuristic::BoundIsBetter).unwrap_err();
        assert!(matches!(
            err,
            OptError::Query(seco_query::QueryError::Infeasible { .. })
        ));
    }

    #[test]
    fn unknown_service_errors() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = QueryBuilder::new().atom("X", "Nothing").build().unwrap();
        assert!(matches!(
            enumerate_assignments(&q, &reg, Phase1Heuristic::BoundIsBetter),
            Err(OptError::Service(_))
        ));
    }
}
