//! A sharded cache of optimization results keyed by a structural query
//! fingerprint.
//!
//! Optimization is pure: given the same query shape, the same registry
//! statistics, the same metric, and the same search configuration, the
//! branch-and-bound always lands on the same plan. Services in a search
//! computing deployment answer many instances of the same query
//! template (same atoms and predicates, different `INPUT` values appear
//! in the fingerprint through the resolved input map), so re-planning
//! from scratch on every call wastes the dominant share of latency.
//!
//! The fingerprint hashes a *normalized* form of the query AST — atoms,
//! selections, joins, and pattern references in sorted order, so
//! clause-order permutations of the same query share a plan — together
//! with the ranking weights, `k`, the optimizer configuration, and the
//! registry's [`stats_epoch`](ServiceRegistry::stats_epoch). Any change
//! to a service's cost statistics rolls the epoch and implicitly
//! invalidates every cached plan derived from the old estimates.
//!
//! The map is sharded by fingerprint (the same contention-splitting
//! scheme as the fetch layer's request cache), so concurrent lookups
//! from parallel query sessions do not serialize on one lock.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;
use seco_query::Query;
use seco_services::ServiceRegistry;

use crate::bnb::Optimized;
use crate::cost::CostMetric;
use crate::heuristics::HeuristicSet;

/// Number of independent shards. Lookups hash to one shard, so up to
/// this many threads can hit the cache without contending.
const SHARD_COUNT: usize = 16;

/// Sharded fingerprint → optimized-plan cache, shared across query
/// sessions via `Arc`.
pub struct PlanCache {
    shards: Vec<Mutex<HashMap<u64, Arc<Optimized>>>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<HashMap<u64, Arc<Optimized>>> {
        &self.shards[(fingerprint % SHARD_COUNT as u64) as usize]
    }

    /// Looks up a cached result.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<Optimized>> {
        self.shard(fingerprint).lock().get(&fingerprint).cloned()
    }

    /// Stores a result (last writer wins on a fingerprint collision
    /// between concurrent planners — both computed the same plan).
    pub fn insert(&self, fingerprint: u64, plan: Arc<Optimized>) {
        self.shard(fingerprint).lock().insert(fingerprint, plan);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Structural fingerprint of one optimization problem: normalized query
/// AST + ranking + `k` + optimizer configuration + registry statistics
/// epoch.
pub fn query_fingerprint(
    query: &Query,
    registry: &ServiceRegistry,
    metric: CostMetric,
    heuristics: &HeuristicSet,
    max_topologies: usize,
) -> u64 {
    let mut h = DefaultHasher::new();

    // Atoms, selections, joins, and pattern references in sorted order:
    // clause permutations of the same query normalize to one key.
    let mut atoms: Vec<String> = query
        .atoms
        .iter()
        .map(|a| format!("{}={}", a.alias, a.service))
        .collect();
    atoms.sort();
    atoms.hash(&mut h);

    let mut selections: Vec<String> = query.selections.iter().map(|s| s.to_string()).collect();
    selections.sort();
    selections.hash(&mut h);

    let mut joins: Vec<String> = query.joins.iter().map(|j| j.to_string()).collect();
    joins.sort();
    joins.hash(&mut h);

    let mut patterns: Vec<String> = query.patterns.iter().map(|p| p.to_string()).collect();
    patterns.sort();
    patterns.hash(&mut h);

    // Inputs are a BTreeMap: already canonically ordered.
    for (name, value) in &query.inputs {
        name.hash(&mut h);
        value.to_string().hash(&mut h);
    }

    for w in query.ranking.weights() {
        w.to_bits().hash(&mut h);
    }
    query.k.hash(&mut h);

    // Search configuration: a different metric or heuristic set may
    // legitimately choose a different plan.
    format!("{metric:?}").hash(&mut h);
    format!("{heuristics:?}").hash(&mut h);
    max_topologies.hash(&mut h);

    registry.stats_epoch().hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_query::builder::running_example;
    use seco_services::domains::entertainment;

    fn setup() -> (Query, ServiceRegistry) {
        (running_example(), entertainment::build_registry(1).unwrap())
    }

    #[test]
    fn fingerprint_is_stable_for_the_same_query() {
        let (q, reg) = setup();
        let h = HeuristicSet::default();
        let a = query_fingerprint(&q, &reg, CostMetric::RequestCount, &h, 256);
        let b = query_fingerprint(&q.clone(), &reg, CostMetric::RequestCount, &h, 256);
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_normalizes_clause_order() {
        let (q, reg) = setup();
        let mut permuted = q.clone();
        permuted.atoms.reverse();
        permuted.selections.reverse();
        permuted.patterns.reverse();
        let h = HeuristicSet::default();
        assert_eq!(
            query_fingerprint(&q, &reg, CostMetric::RequestCount, &h, 256),
            query_fingerprint(&permuted, &reg, CostMetric::RequestCount, &h, 256),
        );
    }

    #[test]
    fn fingerprint_separates_metric_k_and_configuration() {
        let (q, reg) = setup();
        let h = HeuristicSet::default();
        let base = query_fingerprint(&q, &reg, CostMetric::RequestCount, &h, 256);
        assert_ne!(
            base,
            query_fingerprint(&q, &reg, CostMetric::ExecutionTime, &h, 256)
        );
        let mut more_k = q.clone();
        more_k.k += 1;
        assert_ne!(
            base,
            query_fingerprint(&more_k, &reg, CostMetric::RequestCount, &h, 256)
        );
        assert_ne!(
            base,
            query_fingerprint(&q, &reg, CostMetric::RequestCount, &h, 128)
        );
    }

    #[test]
    fn fingerprint_tracks_the_registry_epoch() {
        let (q, _) = setup();
        // Two registries with different replication factors expose
        // different service populations / statistics.
        let reg1 = entertainment::build_registry(1).unwrap();
        let reg2 = entertainment::build_registry(2).unwrap();
        let h = HeuristicSet::default();
        if reg1.stats_epoch() != reg2.stats_epoch() {
            assert_ne!(
                query_fingerprint(&q, &reg1, CostMetric::RequestCount, &h, 256),
                query_fingerprint(&q, &reg2, CostMetric::RequestCount, &h, 256),
            );
        }
    }

    #[test]
    fn cache_round_trips_and_clears() {
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        assert!(cache.get(42).is_none());
        let (q, reg) = setup();
        let opt = crate::bnb::optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        cache.insert(42, Arc::new(opt));
        assert_eq!(cache.len(), 1);
        let hit = cache.get(42).unwrap();
        assert!(hit.cost > 0.0);
        cache.clear();
        assert!(cache.is_empty());
    }
}
