//! Exhaustive (unpruned) plan enumeration — the optimality oracle.
//!
//! Walks exactly the same three-phase space as [`crate::bnb`] but never
//! prunes, fully instantiating every topology of every feasible
//! assignment. Tests compare its optimum against the branch-and-bound
//! result ("if let run up to exhaustion of the search space, the
//! returned plan is the optimal one", §5.2), and the E8 experiment
//! reports the node counts of both to measure what pruning saves.

use seco_query::Query;
use seco_services::ServiceRegistry;

use crate::bnb::{Optimized, SearchStats};
use crate::cost::CostMetric;
use crate::error::OptError;
use crate::heuristics::HeuristicSet;
use crate::phase1::enumerate_assignments;
use crate::phase2::{enumerate_topologies, DEFAULT_MAX_TOPOLOGIES};
use crate::phase3::assign_fetches;

/// Fully enumerates and costs the plan space; returns the optimum and
/// the per-plan costs of everything explored.
pub fn optimize_exhaustive(
    query: &Query,
    registry: &ServiceRegistry,
    metric: CostMetric,
) -> Result<Optimized, OptError> {
    let (best, _) = optimize_exhaustive_with_costs(query, registry, metric)?;
    Ok(best)
}

/// Like [`optimize_exhaustive`] but also returns the cost of every
/// fully instantiated plan, in enumeration order.
pub fn optimize_exhaustive_with_costs(
    query: &Query,
    registry: &ServiceRegistry,
    metric: CostMetric,
) -> Result<(Optimized, Vec<f64>), OptError> {
    let heuristics = HeuristicSet::default();
    let mut stats = SearchStats::default();
    let mut incumbent: Option<Optimized> = None;
    let mut costs = Vec::new();
    let mut last_unreachable: Option<OptError> = None;

    let assignments = enumerate_assignments(query, registry, heuristics.phase1)?;
    stats.assignments = assignments.len();
    for assignment in &assignments {
        let topologies = enumerate_topologies(
            &assignment.query,
            registry,
            &assignment.report,
            heuristics.phase2,
            DEFAULT_MAX_TOPOLOGIES,
        )?;
        stats.topologies += topologies.len();
        for topology in topologies {
            let mut plan = topology;
            match assign_fetches(&mut plan, registry, query.k, heuristics.phase3, metric) {
                Ok(annotated) => {
                    stats.instantiated += 1;
                    let cost = metric.evaluate(&plan, &annotated, registry)?;
                    costs.push(cost);
                    let better = incumbent.as_ref().map(|b| cost < b.cost).unwrap_or(true);
                    if better {
                        incumbent = Some(Optimized {
                            plan,
                            annotated,
                            cost,
                            stats: SearchStats::default(),
                        });
                    }
                }
                Err(e @ OptError::Unreachable { .. }) => {
                    stats.instantiated += 1;
                    last_unreachable = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
    }
    match incumbent {
        Some(mut best) => {
            best.stats = stats;
            Ok((best, costs))
        }
        None => Err(last_unreachable.unwrap_or(OptError::Unreachable {
            best_estimate: 0.0,
            k: query.k,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_query::builder::running_example;
    use seco_services::domains::entertainment;

    #[test]
    fn exhaustive_explores_everything() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let (best, costs) =
            optimize_exhaustive_with_costs(&q, &reg, CostMetric::RequestCount).unwrap();
        assert_eq!(best.stats.pruned, 0);
        assert_eq!(best.stats.instantiated, best.stats.topologies);
        assert!(!costs.is_empty());
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(min, best.cost);
    }

    #[test]
    fn exhaustive_matches_bnb_but_works_harder() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let ex = optimize_exhaustive(&q, &reg, CostMetric::ExecutionTime).unwrap();
        let bnb = crate::bnb::optimize(&q, &reg, CostMetric::ExecutionTime).unwrap();
        assert!((ex.cost - bnb.cost).abs() < 1e-9);
        assert!(ex.stats.instantiated >= bnb.stats.instantiated);
    }
}
