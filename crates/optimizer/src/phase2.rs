//! Phase 2: topology selection (§5.4).
//!
//! Given a feasible interface assignment, enumerate the DAGs compatible
//! with the I/O precedence constraints: "It starts by placing after the
//! initial node some node corresponding to a reachable service, and
//! then by progressively adding nodes corresponding to services that
//! are reachable by virtue of the user input variables and the services
//! already included in the query. Nodes can be added in series or in
//! parallel with respect to already included nodes, compatibly with the
//! constraints enforced by I/O dependencies."
//!
//! Concretely, a topology is built by maintaining a set of *branches*
//! rooted at the input node. At each step either
//!
//! * an unplaced atom is appended **in series** to a branch that
//!   already contains all its pipe sources (atoms with only constant
//!   bindings may extend any branch, including an empty one — a new
//!   parallel branch from the input), or
//! * two branches are **merged** by a parallel-join node carrying the
//!   cross-branch join predicates.
//!
//! Predicate placement follows §3.2: selection predicates not absorbed
//! by input bindings become selection nodes immediately after the
//! service that makes them evaluable; join predicates absorbed by a
//! pipe vanish into the piped invocation; join predicates between atoms
//! of the same chain become join-filter selection nodes; join
//! predicates across merged branches annotate the parallel-join node.
//! Duplicate topologies (same canonical structure) are emitted once.

use std::collections::BTreeSet;

use seco_plan::{
    Completion, Invocation, JoinSpec, NodeId, PlanNode, QueryPlan, SelectionNode, ServiceNode,
};
use seco_query::feasibility::{BindingSource, FeasibilityReport};
use seco_query::{JoinPredicate, Query};
use seco_services::ServiceRegistry;

use crate::error::OptError;
use crate::heuristics::Phase2Heuristic;

/// Default cap on enumerated topologies (a safety valve; the chapter's
/// queries stay in single digits).
pub const DEFAULT_MAX_TOPOLOGIES: usize = 256;

#[derive(Clone)]
struct Branch {
    head: NodeId,
    atoms: BTreeSet<String>,
}

#[derive(Clone)]
struct State {
    plan: QueryPlan,
    branches: Vec<Branch>,
    placed: BTreeSet<String>,
    assigned_joins: BTreeSet<usize>,
}

/// Context shared by the enumeration.
struct Ctx<'a> {
    query: &'a Query,
    registry: &'a ServiceRegistry,
    report: &'a FeasibilityReport,
    joins: Vec<JoinPredicate>,
    /// Join indexes absorbed by pipes (never materialized as filters).
    piped_joins: BTreeSet<usize>,
    heuristic: Phase2Heuristic,
    max: usize,
}

/// Enumerates the topologies for one feasible assignment, in heuristic
/// order, deduplicated by canonical structure.
pub fn enumerate_topologies(
    query: &Query,
    registry: &ServiceRegistry,
    report: &FeasibilityReport,
    heuristic: Phase2Heuristic,
    max: usize,
) -> Result<Vec<QueryPlan>, OptError> {
    let joins = query.expanded_joins(registry)?;
    // A join predicate is absorbed by a pipe when some piped binding
    // uses exactly its attribute pair.
    let mut piped_joins = BTreeSet::new();
    for (i, j) in joins.iter().enumerate() {
        if j.op != seco_model::Comparator::Eq {
            continue;
        }
        for dep in &report.dependencies {
            if let BindingSource::Piped {
                from_atom,
                from_path,
            } = &dep.source
            {
                let forward = j.left.atom == *from_atom
                    && j.left.path == *from_path
                    && j.right.atom == dep.to_atom
                    && j.right.path == dep.input;
                let backward = j.right.atom == *from_atom
                    && j.right.path == *from_path
                    && j.left.atom == dep.to_atom
                    && j.left.path == dep.input;
                if forward || backward {
                    piped_joins.insert(i);
                }
            }
        }
    }

    let ctx = Ctx {
        query,
        registry,
        report,
        joins,
        piped_joins,
        heuristic,
        max,
    };
    let state = State {
        plan: QueryPlan::new(query.clone()),
        branches: Vec::new(),
        placed: BTreeSet::new(),
        assigned_joins: BTreeSet::new(),
    };
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    recurse(&ctx, state, &mut out, &mut seen)?;
    Ok(out)
}

/// Estimated "output per input" of a service, for the selective-first
/// ordering (smaller = more selective = earlier).
fn expansion_estimate(ctx: &Ctx<'_>, atom: &str) -> f64 {
    let Ok(q_atom) = ctx.query.atom(atom) else {
        return f64::MAX;
    };
    let Ok(iface) = ctx.registry.interface(&q_atom.service) else {
        return f64::MAX;
    };
    if iface.kind.is_chunked() {
        iface.stats.chunk_size as f64
    } else {
        iface.stats.avg_cardinality
    }
}

/// The atoms placeable next: all pipe sources already placed.
fn placeable(ctx: &Ctx<'_>, state: &State) -> Vec<String> {
    let mut atoms: Vec<String> = ctx
        .query
        .atoms
        .iter()
        .map(|a| a.alias.clone())
        .filter(|a| !state.placed.contains(a))
        .filter(|a| {
            ctx.report
                .predecessors_of(a)
                .iter()
                .all(|p| state.placed.contains(*p))
        })
        .collect();
    atoms.sort_by(|a, b| {
        expansion_estimate(ctx, a)
            .partial_cmp(&expansion_estimate(ctx, b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    atoms
}

/// Appends the selection/join-filter nodes that become evaluable on a
/// branch after `state.plan` gained the given atoms.
fn flush_filters(ctx: &Ctx<'_>, state: &mut State, branch_idx: usize) -> Result<(), OptError> {
    let branch_atoms = state.branches[branch_idx].atoms.clone();

    // Selection predicates not absorbed by an input binding. Equality
    // and order-comparison bindings on input paths are answered by the
    // service itself ("openings after date X"); only `Like` constraints
    // and predicates on output attributes need a selection node.
    let mut sels = Vec::new();
    let mut sel_estimate = 1.0;
    for s in &ctx.query.selections {
        if !branch_atoms.contains(&s.left.atom) {
            continue;
        }
        let absorbed = ctx.report.dependencies.iter().any(|d| {
            d.to_atom == s.left.atom
                && d.input == s.left.path
                && matches!(&d.source, BindingSource::Constant { op, .. } if *op != seco_model::Comparator::Like)
        });
        // Only flush once: when the atom's service node was just added
        // (its atom newly in this branch). We track via plan scan: a
        // selection node containing this predicate already exists?
        let already = plan_has_selection(&state.plan, s);
        if !absorbed && !already {
            // Hint-aware selectivity: equality on an attribute with a
            // known distinct count is 1/distinct.
            let mut estimate = s.op.default_selectivity();
            if s.op == seco_model::Comparator::Eq {
                if let Ok(q_atom) = ctx.query.atom(&s.left.atom) {
                    if let Ok(iface) = ctx.registry.interface(&q_atom.service) {
                        if let Some(hint) = iface.hints.eq_selectivity(&s.left.path) {
                            estimate = hint;
                        }
                    }
                }
            }
            sel_estimate *= estimate;
            sels.push(s.clone());
        }
    }
    if !sels.is_empty() {
        let node = state.plan.add(PlanNode::Selection(
            SelectionNode::new(sels).with_selectivity(sel_estimate),
        ));
        let head = state.branches[branch_idx].head;
        state.plan.connect(head, node).map_err(OptError::Plan)?;
        state.branches[branch_idx].head = node;
    }

    // Join predicates fully inside this branch (chain joins) that were
    // neither piped nor already assigned.
    let mut chain_joins = Vec::new();
    let mut chain_sel = 1.0;
    let mut counted: Vec<(String, String)> = Vec::new();
    for (i, j) in ctx.joins.iter().enumerate() {
        if ctx.piped_joins.contains(&i) || state.assigned_joins.contains(&i) {
            continue;
        }
        if branch_atoms.contains(&j.left.atom) && branch_atoms.contains(&j.right.atom) {
            state.assigned_joins.insert(i);
            chain_joins.push(j.clone());
            let pair = ordered_pair(&j.left.atom, &j.right.atom);
            if !counted.contains(&pair) {
                counted.push(pair.clone());
                chain_sel *= ctx.query.join_selectivity(ctx.registry, &pair.0, &pair.1)?;
            }
        }
    }
    if !chain_joins.is_empty() {
        let node = state
            .plan
            .add(PlanNode::Selection(SelectionNode::join_filter(
                chain_joins,
                chain_sel,
            )));
        let head = state.branches[branch_idx].head;
        state.plan.connect(head, node).map_err(OptError::Plan)?;
        state.branches[branch_idx].head = node;
    }
    Ok(())
}

fn plan_has_selection(plan: &QueryPlan, pred: &seco_query::SelectionPredicate) -> bool {
    plan.node_ids().any(
        |id| matches!(plan.node(id), Ok(PlanNode::Selection(s)) if s.predicates.contains(pred)),
    )
}

fn ordered_pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_owned(), b.to_owned())
    } else {
        (b.to_owned(), a.to_owned())
    }
}

/// Canonical structural signature for deduplication.
fn signature(plan: &QueryPlan, node: NodeId) -> String {
    match plan.node(node) {
        Ok(PlanNode::Input) => "I".to_owned(),
        Ok(PlanNode::Output) => {
            let preds = plan.predecessors(node);
            format!("O({})", signature(plan, preds[0]))
        }
        Ok(PlanNode::Service(s)) => {
            let preds = plan.predecessors(node);
            format!("S[{}]({})", s.atom, signature(plan, preds[0]))
        }
        Ok(PlanNode::Selection(s)) => {
            let preds = plan.predecessors(node);
            format!(
                "F[{}]({})",
                s.predicates.len() + s.join_predicates.len(),
                signature(plan, preds[0])
            )
        }
        Ok(PlanNode::ParallelJoin(_)) => {
            let preds = plan.predecessors(node);
            let mut subs: Vec<String> = preds.iter().map(|p| signature(plan, *p)).collect();
            subs.sort();
            format!("J({})", subs.join("|"))
        }
        Err(_) => "?".to_owned(),
    }
}

fn recurse(
    ctx: &Ctx<'_>,
    state: State,
    out: &mut Vec<QueryPlan>,
    seen: &mut BTreeSet<String>,
) -> Result<(), OptError> {
    if out.len() >= ctx.max {
        return Ok(());
    }
    // Complete?
    if state.placed.len() == ctx.query.atoms.len() && state.branches.len() == 1 {
        let mut plan = state.plan;
        plan.connect(state.branches[0].head, plan.output())
            .map_err(OptError::Plan)?;
        let sig = signature(&plan, plan.output());
        if seen.insert(sig) {
            plan.validate().map_err(OptError::Plan)?;
            out.push(plan);
        }
        return Ok(());
    }

    // Collect the possible moves, ordered by the heuristic.
    #[derive(Clone)]
    enum Move {
        Serial { atom: String, branch: usize },
        NewBranch { atom: String },
        Merge { a: usize, b: usize },
    }
    let mut moves: Vec<Move> = Vec::new();

    for atom in placeable(ctx, &state) {
        let sources = ctx.report.predecessors_of(&atom);
        if sources.is_empty() {
            // Constant-bound atom: may extend any branch or start a new
            // parallel branch.
            for (i, _) in state.branches.iter().enumerate() {
                moves.push(Move::Serial {
                    atom: atom.clone(),
                    branch: i,
                });
            }
            moves.push(Move::NewBranch { atom });
        } else {
            // Piped atom: only branches containing all its sources.
            for (i, b) in state.branches.iter().enumerate() {
                if sources.iter().all(|s| b.atoms.contains(*s)) {
                    moves.push(Move::Serial {
                        atom: atom.clone(),
                        branch: i,
                    });
                }
            }
        }
    }
    for a in 0..state.branches.len() {
        for b in a + 1..state.branches.len() {
            moves.push(Move::Merge { a, b });
        }
    }

    if ctx.heuristic.parallel_first() {
        // Parallel-is-better: try new branches and merges before serial
        // extensions.
        moves.sort_by_key(|m| match m {
            Move::NewBranch { .. } => 0,
            Move::Merge { .. } => 1,
            Move::Serial { .. } => 2,
        });
    } else {
        // Selective-first: extend existing chains before opening new
        // branches (atoms are already ordered by selectivity).
        moves.sort_by_key(|m| match m {
            Move::Serial { .. } => 0,
            Move::NewBranch { .. } => 1,
            Move::Merge { .. } => 2,
        });
    }

    for mv in moves {
        if out.len() >= ctx.max {
            break;
        }
        let mut next = state.clone();
        match mv {
            Move::Serial { atom, branch } => {
                let q_atom = ctx.query.atom(&atom)?;
                let node = next.plan.add(PlanNode::Service(ServiceNode::new(
                    atom.clone(),
                    q_atom.service.clone(),
                )));
                let head = next.branches[branch].head;
                next.plan.connect(head, node).map_err(OptError::Plan)?;
                next.branches[branch].head = node;
                next.branches[branch].atoms.insert(atom.clone());
                next.placed.insert(atom);
                flush_filters(ctx, &mut next, branch)?;
            }
            Move::NewBranch { atom } => {
                let q_atom = ctx.query.atom(&atom)?;
                let node = next.plan.add(PlanNode::Service(ServiceNode::new(
                    atom.clone(),
                    q_atom.service.clone(),
                )));
                let input = next.plan.input();
                next.plan.connect(input, node).map_err(OptError::Plan)?;
                next.branches.push(Branch {
                    head: node,
                    atoms: [atom.clone()].into_iter().collect(),
                });
                next.placed.insert(atom);
                let idx = next.branches.len() - 1;
                flush_filters(ctx, &mut next, idx)?;
            }
            Move::Merge { a, b } => {
                // Cross-branch join predicates.
                let (aa, bb) = (
                    next.branches[a].atoms.clone(),
                    next.branches[b].atoms.clone(),
                );
                let mut preds = Vec::new();
                let mut sel = 1.0;
                let mut counted: Vec<(String, String)> = Vec::new();
                for (i, j) in ctx.joins.iter().enumerate() {
                    if ctx.piped_joins.contains(&i) || next.assigned_joins.contains(&i) {
                        continue;
                    }
                    let cross = (aa.contains(&j.left.atom) && bb.contains(&j.right.atom))
                        || (aa.contains(&j.right.atom) && bb.contains(&j.left.atom));
                    if cross {
                        next.assigned_joins.insert(i);
                        preds.push(j.clone());
                        let pair = ordered_pair(&j.left.atom, &j.right.atom);
                        if !counted.contains(&pair) {
                            counted.push(pair.clone());
                            sel *= ctx.query.join_selectivity(ctx.registry, &pair.0, &pair.1)?;
                        }
                    }
                }
                // Merging disconnected branches is a cross product; the
                // chapter's plans never need it mid-way, so require at
                // least one predicate unless this is the final merge.
                let remaining = ctx.query.atoms.len() - next.placed.len();
                if preds.is_empty() && !(remaining == 0 && next.branches.len() == 2) {
                    continue;
                }
                let node = next.plan.add(PlanNode::ParallelJoin(JoinSpec {
                    invocation: Invocation::merge_scan_even(),
                    completion: Completion::Triangular,
                    predicates: preds,
                    selectivity: sel,
                }));
                let (ha, hb) = (next.branches[a].head, next.branches[b].head);
                next.plan.connect(ha, node).map_err(OptError::Plan)?;
                next.plan.connect(hb, node).map_err(OptError::Plan)?;
                // Replace the two branches with the merged one.
                let merged_atoms: BTreeSet<String> = aa.union(&bb).cloned().collect();
                let keep = a.min(b);
                let drop = a.max(b);
                next.branches[keep] = Branch {
                    head: node,
                    atoms: merged_atoms,
                };
                next.branches.remove(drop);
                flush_filters(ctx, &mut next, keep)?;
            }
        }
        recurse(ctx, next, out, seen)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_query::builder::running_example;
    use seco_query::feasibility::analyze;
    use seco_services::domains::entertainment;

    fn setup() -> (Query, seco_services::ServiceRegistry, FeasibilityReport) {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let report = analyze(&q, &reg).unwrap();
        (q, reg, report)
    }

    #[test]
    fn running_example_topologies_cover_fig9() {
        let (q, reg, report) = setup();
        let plans =
            enumerate_topologies(&q, &reg, &report, Phase2Heuristic::ParallelIsBetter, 64).unwrap();
        // The enumeration covers Fig. 9's four topologies (three chains
        // M→T→R / T→M→R / T→R→M and the (M ∥ T)→R parallel plan) plus
        // the M ∥ (T→R) variant the figure does not draw.
        assert!(plans.len() >= 4, "found only {} topologies", plans.len());
        let sigs: BTreeSet<String> = plans.iter().map(|p| signature(p, p.output())).collect();
        assert_eq!(sigs.len(), plans.len(), "topologies are deduplicated");
        // At least one parallel plan with a join node exists (Fig. 9d).
        let has_parallel = plans.iter().any(|p| {
            p.node_ids()
                .any(|id| matches!(p.node(id), Ok(PlanNode::ParallelJoin(_))))
        });
        assert!(has_parallel);
        // At least one all-sequential chain exists (Fig. 9a).
        let has_chain = plans.iter().any(|p| {
            p.node_ids()
                .all(|id| !matches!(p.node(id), Ok(PlanNode::ParallelJoin(_))))
        });
        assert!(has_chain);
        // Every topology validates and respects T before R.
        for p in &plans {
            p.validate().unwrap();
            let order = p.topo_order().unwrap();
            let pos = |atom: &str| {
                order
                    .iter()
                    .position(|id| p.node(*id).unwrap().atom() == Some(atom))
                    .unwrap()
            };
            assert!(pos("T") < pos("R"), "T must precede R in every topology");
        }
    }

    #[test]
    fn parallel_plans_annotate_the_shows_join() {
        let (q, reg, report) = setup();
        let plans =
            enumerate_topologies(&q, &reg, &report, Phase2Heuristic::ParallelIsBetter, 64).unwrap();
        let parallel = plans
            .iter()
            .find(|p| {
                p.node_ids()
                    .any(|id| matches!(p.node(id), Ok(PlanNode::ParallelJoin(_))))
            })
            .unwrap();
        let join_id = parallel
            .node_ids()
            .find(|id| matches!(parallel.node(*id), Ok(PlanNode::ParallelJoin(_))))
            .unwrap();
        if let PlanNode::ParallelJoin(spec) = parallel.node(join_id).unwrap() {
            assert_eq!(spec.predicates.len(), 1, "the Shows title equality");
            assert!((spec.selectivity - 0.02).abs() < 1e-9);
        }
    }

    #[test]
    fn chain_plans_filter_shows_via_selection_node() {
        let (q, reg, report) = setup();
        let plans =
            enumerate_topologies(&q, &reg, &report, Phase2Heuristic::SelectiveFirst, 64).unwrap();
        let chain = plans
            .iter()
            .find(|p| {
                p.node_ids()
                    .all(|id| !matches!(p.node(id), Ok(PlanNode::ParallelJoin(_))))
            })
            .unwrap();
        // Somewhere in the chain a join-filter selection applies Shows.
        let has_join_filter = chain.node_ids().any(|id| {
            matches!(chain.node(id), Ok(PlanNode::Selection(s)) if !s.join_predicates.is_empty())
        });
        assert!(
            has_join_filter,
            "chains must filter the Shows predicate:\n{}",
            seco_plan::display::ascii(chain, None).unwrap()
        );
    }

    #[test]
    fn heuristic_changes_the_emission_order() {
        let (q, reg, report) = setup();
        let par =
            enumerate_topologies(&q, &reg, &report, Phase2Heuristic::ParallelIsBetter, 64).unwrap();
        let ser =
            enumerate_topologies(&q, &reg, &report, Phase2Heuristic::SelectiveFirst, 64).unwrap();
        assert_eq!(par.len(), ser.len(), "same space, different order");
        let par_first_is_parallel = par[0]
            .node_ids()
            .any(|id| matches!(par[0].node(id), Ok(PlanNode::ParallelJoin(_))));
        let ser_first_is_parallel = ser[0]
            .node_ids()
            .any(|id| matches!(ser[0].node(id), Ok(PlanNode::ParallelJoin(_))));
        assert!(
            par_first_is_parallel,
            "parallel-is-better must emit a parallel plan first"
        );
        assert!(
            !ser_first_is_parallel,
            "selective-first must emit a chain first"
        );
    }

    #[test]
    fn the_date_range_is_absorbed_but_output_equalities_are_filtered() {
        let (q, reg, report) = setup();
        let plans =
            enumerate_topologies(&q, &reg, &report, Phase2Heuristic::ParallelIsBetter, 64).unwrap();
        for p in &plans {
            // Openings.Date > INPUT3 constrains an *input* path: the
            // service answers it directly ("openings after this date"),
            // so no selection node repeats it.
            let has_date_filter = p.node_ids().any(|id| {
                matches!(p.node(id), Ok(PlanNode::Selection(s))
                    if s.predicates.iter().any(|sp| sp.left.path.to_string() == "Openings.Date"))
            });
            assert!(
                !has_date_filter,
                "range inputs are absorbed by the access pattern"
            );
            // T.TCountry = INPUT2 constrains an *output* attribute and
            // must materialize as a selection node.
            let has_country_filter = p.node_ids().any(|id| {
                matches!(p.node(id), Ok(PlanNode::Selection(s))
                    if s.predicates.iter().any(|sp| sp.left.path.to_string() == "TCountry"))
            });
            assert!(has_country_filter, "output equality must be filtered");
        }
    }

    #[test]
    fn cap_limits_output() {
        let (q, reg, report) = setup();
        let plans =
            enumerate_topologies(&q, &reg, &report, Phase2Heuristic::ParallelIsBetter, 2).unwrap();
        assert_eq!(plans.len(), 2);
    }
}
