//! Mid-flight suffix re-planning: the planner half of the adaptive
//! optimization loop.
//!
//! When the engine observes node cardinalities far from the plan-time
//! estimates, a full re-optimization would discard everything already
//! executed. [`Optimizer::replan_suffix`] instead re-runs the phase-2
//! search restricted to plans that *share the executed prefix*: the
//! already-invoked services keep their assignment and their fetch
//! factors (facts of the past, not degrees of freedom), while the
//! unexecuted suffix — remaining access-pattern choices, topology, and
//! fetch factors — is re-searched under the current (possibly promoted)
//! registry statistics.
//!
//! Determinism mirrors the branch-and-bound: the original plan is
//! seeded as the incumbent at tie-break rank 0, and a challenger must
//! *strictly* beat it under the `(cost, canonical key, index)` order.
//! With observations that do not deviate past
//! [`Optimizer::replan_threshold`], the search is skipped entirely and
//! the original plan is returned byte-identically.

use std::collections::{BTreeMap, BTreeSet};

use seco_plan::{annotate, AnnotationConfig, DeltaAnnotator, NodeId, PlanNode, QueryPlan};
use seco_services::drift_ratio;

use crate::bnb::{Optimized, Optimizer, SearchStats};
use crate::error::OptError;
use crate::phase1::enumerate_assignments;
use crate::phase2::enumerate_topologies;
use crate::phase3::{assign_fetches_seeded, Phase3Stats};

/// Structural signature of the already-executed part of a plan: the
/// sorted signatures of every node whose inputs are fully covered by
/// the executed atoms. Fetch factors are excluded — the suffix search
/// pins them separately — so a candidate topology matches iff the
/// executed work embeds into it unchanged.
pub fn prefix_signature(plan: &QueryPlan, executed: &BTreeSet<String>) -> String {
    fn sig_of(plan: &QueryPlan, id: NodeId) -> String {
        match plan.node(id) {
            Ok(PlanNode::Input) => "I".to_owned(),
            Ok(PlanNode::Output) => {
                let preds = plan.predecessors(id);
                format!("O({})", sig_of(plan, preds[0]))
            }
            Ok(PlanNode::Service(s)) => {
                let preds = plan.predecessors(id);
                format!(
                    "S[{}={},kf={}]({})",
                    s.atom,
                    s.service,
                    u8::from(s.keep_first),
                    sig_of(plan, preds[0])
                )
            }
            Ok(PlanNode::Selection(s)) => {
                let preds = plan.predecessors(id);
                let mut clauses: Vec<String> = s
                    .predicates
                    .iter()
                    .map(|p| p.to_string())
                    .chain(s.join_predicates.iter().map(|p| p.to_string()))
                    .collect();
                clauses.sort();
                format!("F[{}]({})", clauses.join(","), sig_of(plan, preds[0]))
            }
            Ok(PlanNode::ParallelJoin(spec)) => {
                let preds = plan.predecessors(id);
                let mut subs: Vec<String> = preds.iter().map(|p| sig_of(plan, *p)).collect();
                subs.sort();
                let mut clauses: Vec<String> =
                    spec.predicates.iter().map(|p| p.to_string()).collect();
                clauses.sort();
                format!(
                    "J[{},{},{}]({})",
                    spec.invocation,
                    spec.completion,
                    clauses.join(","),
                    subs.join("|")
                )
            }
            Err(_) => "?".to_owned(),
        }
    }
    let mut sigs: Vec<String> = plan
        .node_ids()
        .filter(|id| !matches!(plan.node(*id), Ok(PlanNode::Output)))
        .filter(|id| plan.atoms_at(*id).is_subset(executed))
        .map(|id| sig_of(plan, id))
        .collect();
    sigs.sort();
    sigs.join(";")
}

impl Optimizer<'_> {
    /// Re-plans the unexecuted suffix of `plan`.
    ///
    /// `executed_prefix` names the atoms whose service stages have
    /// already run; `observed` maps atom aliases to
    /// `(plan-time estimated, observed)` output cardinalities. When no
    /// observation deviates by at least
    /// [`replan_threshold`](Optimizer::replan_threshold), the original
    /// plan is returned **byte-identically** without searching. When
    /// one does, phases 1–3 re-run under the current registry
    /// statistics, restricted to plans embedding the executed prefix
    /// (same services, same upstream structure, fetch factors pinned);
    /// the original plan stays the incumbent unless a candidate
    /// strictly beats it.
    pub fn replan_suffix(
        &self,
        plan: &QueryPlan,
        executed_prefix: &BTreeSet<String>,
        observed: &BTreeMap<String, (f64, f64)>,
    ) -> Result<Optimized, OptError> {
        let config = AnnotationConfig::default();
        let annotated = annotate(plan, self.registry, &config)?;
        let cost = self.metric.evaluate(plan, &annotated, self.registry)?;
        let mut stats = SearchStats {
            annotate_full: 1,
            ..SearchStats::default()
        };

        let deviated = observed
            .values()
            .any(|(est, obs)| drift_ratio(*obs, *est) >= self.replan_threshold);
        if !deviated {
            return Ok(Optimized {
                plan: plan.clone(),
                annotated,
                cost,
                stats,
            });
        }

        // Incumbent: the original plan under current statistics, at
        // tie-break rank 0 — challengers must strictly beat it.
        let mut best = (cost, plan.canonical_key(), 0usize, plan.clone(), annotated);

        // The executed services' fetch factors are history; pin them.
        let mut prefix_fetches: BTreeMap<String, u32> = BTreeMap::new();
        for alias in executed_prefix {
            if let Some(id) = plan.service_node_of(alias) {
                if let Ok(PlanNode::Service(s)) = plan.node(id) {
                    prefix_fetches.insert(alias.clone(), s.fetches);
                }
            }
        }
        let target_sig = prefix_signature(plan, executed_prefix);

        // Phase 1 restricted: executed atoms stay on their assigned
        // interface; unexecuted atoms re-open to every interface of
        // their mart.
        let mut relaxed = plan.query.clone();
        for atom in &mut relaxed.atoms {
            if !executed_prefix.contains(&atom.alias) {
                if let Ok(iface) = self.registry.interface(&atom.service) {
                    atom.service = iface.mart.clone();
                }
            }
        }
        let assignments = enumerate_assignments(&relaxed, self.registry, self.heuristics.phase1)?;
        stats.assignments = assignments.len();

        let k = plan.query.k;
        let mut item_idx = 0usize;
        for assignment in &assignments {
            let topologies = enumerate_topologies(
                &assignment.query,
                self.registry,
                &assignment.report,
                self.heuristics.phase2,
                self.max_topologies,
            )?;
            for topology in topologies {
                stats.topologies += 1;
                item_idx += 1;
                if prefix_signature(&topology, executed_prefix) != target_sig {
                    continue;
                }
                let mut candidate = topology;
                let mut pinned: Vec<NodeId> = Vec::new();
                for id in candidate.node_ids().collect::<Vec<_>>() {
                    if let PlanNode::Service(s) = candidate.node_mut(id)? {
                        match prefix_fetches.get(&s.atom) {
                            Some(f) => {
                                s.fetches = *f;
                                pinned.push(id);
                            }
                            None => s.fetches = 1,
                        }
                    }
                }
                let mut p3 = Phase3Stats::default();
                let annotator = DeltaAnnotator::new(&candidate, self.registry, &config)?;
                p3.annotate_full += 1;
                let lower =
                    self.metric
                        .evaluate(&candidate, annotator.annotated(), self.registry)?;
                if lower > best.0 {
                    stats.pruned += 1;
                    stats.annotate_full += p3.annotate_full;
                    continue;
                }
                let instantiation = assign_fetches_seeded(
                    &mut candidate,
                    self.registry,
                    k,
                    self.heuristics.phase3,
                    self.metric,
                    annotator,
                    None,
                    &pinned,
                    &mut p3,
                );
                stats.annotate_full += p3.annotate_full;
                stats.annotate_delta += p3.annotate_delta;
                stats.memo_hits += p3.memo_hits;
                match instantiation {
                    Ok(ann) => {
                        stats.instantiated += 1;
                        let c = self.metric.evaluate(&candidate, &ann, self.registry)?;
                        let key = candidate.canonical_key();
                        let beats = c < best.0
                            || (c == best.0
                                && (key < best.1 || (key == best.1 && item_idx < best.2)));
                        if beats {
                            stats.bound_updates += 1;
                            best = (c, key, item_idx, candidate, ann);
                        }
                    }
                    // A suffix that cannot reach k under the new
                    // statistics simply does not challenge.
                    Err(OptError::Unreachable { .. }) => stats.instantiated += 1,
                    Err(e) => return Err(e),
                }
            }
        }

        stats.replans = usize::from(best.2 != 0);
        Ok(Optimized {
            plan: best.3,
            annotated: best.4,
            cost: best.0,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostMetric;
    use seco_query::builder::running_example;
    use seco_services::domains::entertainment;

    #[test]
    fn unchanged_observations_return_the_original_byte_identically() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let opt = Optimizer::new(&reg, CostMetric::RequestCount);
        let original = opt.optimize(&q).unwrap();

        let executed: BTreeSet<String> = ["M".to_string()].into();
        let observed: BTreeMap<String, (f64, f64)> = [("M".to_string(), (20.0, 20.0))].into();
        let replanned = opt
            .replan_suffix(&original.plan, &executed, &observed)
            .unwrap();
        assert_eq!(replanned.plan, original.plan, "plan must be byte-identical");
        assert_eq!(replanned.stats.replans, 0);
        assert_eq!(replanned.stats.topologies, 0, "the search must not run");
    }

    #[test]
    fn deviating_observations_search_but_keep_prefix_structure() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let opt = Optimizer::new(&reg, CostMetric::RequestCount);
        let original = opt.optimize(&q).unwrap();

        let executed: BTreeSet<String> = ["M".to_string()].into();
        // Observed 100× the estimate: the gate opens. The statistics
        // have not actually changed, so the original stays optimal —
        // but now by winning the restricted search, not by skipping it.
        let observed: BTreeMap<String, (f64, f64)> = [("M".to_string(), (1.0, 100.0))].into();
        let replanned = opt
            .replan_suffix(&original.plan, &executed, &observed)
            .unwrap();
        assert!(replanned.stats.topologies > 0, "the search must run");
        let sig = prefix_signature(&original.plan, &executed);
        assert_eq!(prefix_signature(&replanned.plan, &executed), sig);
        assert!(replanned.cost <= original.cost + 1e-9);
    }

    #[test]
    fn prefix_signature_ignores_fetches_but_not_structure() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let opt = Optimizer::new(&reg, CostMetric::RequestCount);
        let original = opt.optimize(&q).unwrap();
        let executed: BTreeSet<String> = ["M".to_string()].into();
        let sig = prefix_signature(&original.plan, &executed);
        let mut refetched = original.plan.clone();
        for id in refetched.node_ids().collect::<Vec<_>>() {
            if let PlanNode::Service(s) = refetched.node_mut(id).unwrap() {
                s.fetches += 7;
            }
        }
        assert_eq!(prefix_signature(&refetched, &executed), sig);
        let none: BTreeSet<String> = BTreeSet::new();
        assert_ne!(prefix_signature(&original.plan, &none), sig);
    }
}
