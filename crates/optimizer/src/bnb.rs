//! The branch-and-bound driver (§5.2, Fig. 8).
//!
//! The three phases branch; the bounding step uses the monotonicity of
//! every supported cost metric: a topology instantiated at the minimal
//! fetch vector ⟨1, …, 1⟩ costs no more than any of its completions, so
//! its cost is a valid lower bound for the whole phase-3 subtree. When
//! that bound exceeds the incumbent's cost, the subtree is pruned
//! without running phase 3. "The search for the optimal plan can be
//! stopped at any time, and it will nevertheless return a valid
//! solution" — [`Optimizer::budget`] implements that anytime behaviour.
//!
//! # Parallel search
//!
//! Phase-2 topologies are independent branch-and-bound subtrees, so the
//! driver fans them across a bounded worker pool ([`Optimizer::workers`]):
//! workers pull (assignment × topology) items off a shared atomic
//! cursor, share the incumbent cost as an atomic bound (monotonically
//! decreasing, so a stale read only costs a missed prune, never a wrong
//! one), and race to improve the incumbent under one mutex.
//!
//! The result is **deterministic** — byte-identical across worker
//! counts and to the serial path — by construction:
//!
//! * pruning is *strict* (`lower_bound > incumbent cost`): a topology
//!   whose completion ties the optimum can never be pruned under any
//!   schedule, because its lower bound never exceeds the optimal cost;
//! * among equal-cost completions the winner is the least
//!   `(cost, canonical plan key, enumeration index)` triple, a total
//!   order independent of arrival order.
//!
//! Every instantiated plan therefore competes in every run, and the
//! minimum of a fixed set under a total order does not depend on the
//! schedule.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use seco_plan::{annotate, AnnotatedPlan, AnnotationConfig, DeltaAnnotator, PlanNode, QueryPlan};
use seco_query::Query;
use seco_services::ServiceRegistry;

use crate::cost::CostMetric;
use crate::error::OptError;
use crate::heuristics::HeuristicSet;
use crate::phase1::enumerate_assignments;
use crate::phase2::{enumerate_topologies, DEFAULT_MAX_TOPOLOGIES};
use crate::phase3::{assign_fetches_seeded, assign_fetches_with, AnnotationMemo, Phase3Stats};
use crate::plan_cache::{query_fingerprint, PlanCache};

/// Exploration statistics of one optimization run (the Fig. 8
/// experiment data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Feasible phase-1 assignments considered.
    pub assignments: usize,
    /// Phase-2 topologies enumerated.
    pub topologies: usize,
    /// Topologies fully instantiated (phase 3 ran).
    pub instantiated: usize,
    /// Topologies pruned by the lower bound.
    pub pruned: usize,
    /// Times the shared incumbent bound strictly improved.
    pub bound_updates: usize,
    /// Full-plan annotations performed.
    pub annotate_full: usize,
    /// Incremental (downstream-cone) annotation propagations.
    pub annotate_delta: usize,
    /// Phase-3 trial evaluations answered by the shape/vector memo.
    pub memo_hits: usize,
    /// Optimizations answered entirely from the plan cache.
    pub cache_hits: usize,
    /// Plan-cache lookups that missed and fell through to the search.
    pub cache_misses: usize,
    /// Results inserted into the plan cache.
    pub cache_inserts: usize,
    /// Observed-stat promotions that rolled the registry epoch before
    /// this search ran (carried on suffix re-plans for observability).
    pub epoch_invalidations: usize,
    /// Suffix re-plans that produced a different plan (1 when
    /// [`Optimizer::replan_suffix`] switched, 0 otherwise).
    pub replans: usize,
}

/// The optimization result: the chosen fully instantiated plan, its
/// annotation, its cost, and the search statistics.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The winning plan (fetch factors set).
    pub plan: QueryPlan,
    /// Its cardinality annotation.
    pub annotated: AnnotatedPlan,
    /// Its cost under the optimizer's metric.
    pub cost: f64,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Configured optimizer.
pub struct Optimizer<'a> {
    /// Service registry resolving interfaces and statistics.
    pub registry: &'a ServiceRegistry,
    /// Metric to minimize.
    pub metric: CostMetric,
    /// Branch-ordering heuristics.
    pub heuristics: HeuristicSet,
    /// Anytime budget: stop once this many plans have been fully
    /// instantiated *and* a feasible incumbent exists (`None` = run to
    /// exhaustion of the search space). Under parallel search the
    /// instantiation counter is global, so the overshoot is bounded by
    /// the worker count.
    pub budget: Option<usize>,
    /// Cap on enumerated topologies per assignment.
    pub max_topologies: usize,
    /// Worker threads for the topology fan-out (`1` = serial in the
    /// calling thread; higher values share the incumbent bound).
    pub workers: usize,
    /// Use incremental (delta) annotation in phase 3. Disabled, every
    /// fetch-factor trial re-annotates the full plan — kept as the
    /// benchmark baseline.
    pub incremental: bool,
    /// Optional cross-run plan cache keyed by structural query
    /// fingerprint. Skipped when a [`budget`](Self::budget) is set:
    /// truncated searches are not canonical results worth caching.
    pub cache: Option<Arc<PlanCache>>,
    /// Deviation gate for [`Self::replan_suffix`]: observed node
    /// cardinalities must be off from their plan-time estimates by at
    /// least this multiplicative ratio before a suffix re-plan is
    /// attempted (the chapter's "off by ≥10×" default).
    pub replan_threshold: f64,
    /// Shared executor pool to run the topology fan-out on. With a
    /// pool, the phase-3 workers are compute jobs on its work-stealing
    /// deques (the calling thread participates); without one, they are
    /// scoped threads as before. Irrelevant when
    /// [`workers`](Self::workers) is 1.
    pub pool: Option<Arc<seco_exec::ExecPool>>,
}

/// A candidate incumbent: the total tie-break order is
/// `(cost, canonical key, enumeration index)`, which is
/// schedule-independent.
struct Candidate {
    cost: f64,
    key: String,
    item_idx: usize,
    plan: QueryPlan,
    annotated: AnnotatedPlan,
}

impl Candidate {
    fn beats(&self, other: &Candidate) -> bool {
        if self.cost != other.cost {
            return self.cost < other.cost;
        }
        if self.key != other.key {
            return self.key < other.key;
        }
        self.item_idx < other.item_idx
    }
}

/// State shared by the search workers.
struct Shared<'s> {
    /// Pre-enumerated (assignment × topology) work items.
    items: &'s [QueryPlan],
    /// Next item to claim.
    next: AtomicUsize,
    /// Incumbent cost as f64 bits (monotonically decreasing; stale
    /// reads weaken pruning but never break it).
    bound_bits: AtomicU64,
    /// The incumbent plan; bound updates happen under this lock so the
    /// bound never drops below the best candidate's cost.
    best: Mutex<Option<Candidate>>,
    /// Phase-3 trial memo shared across workers.
    memo: Mutex<AnnotationMemo>,
    /// Cooperative stop (budget reached or a worker failed).
    stop: AtomicBool,
    /// First hard error, propagated after join.
    error: Mutex<Option<OptError>>,
    /// Last infeasible-k outcome, reported when nothing is feasible.
    unreachable: Mutex<Option<OptError>>,
    instantiated: AtomicUsize,
    pruned: AtomicUsize,
    bound_updates: AtomicUsize,
    annotate_full: AtomicUsize,
    annotate_delta: AtomicUsize,
    memo_hits: AtomicUsize,
    /// Lower bounds of pruned subtrees, checked against the final
    /// incumbent in debug builds: a pruned subtree must never contain
    /// the winner.
    #[cfg(debug_assertions)]
    pruned_bounds: Mutex<Vec<f64>>,
}

impl<'s> Shared<'s> {
    fn new(items: &'s [QueryPlan]) -> Self {
        Shared {
            items,
            next: AtomicUsize::new(0),
            bound_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            best: Mutex::new(None),
            memo: Mutex::new(AnnotationMemo::new()),
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
            unreachable: Mutex::new(None),
            instantiated: AtomicUsize::new(0),
            pruned: AtomicUsize::new(0),
            bound_updates: AtomicUsize::new(0),
            annotate_full: AtomicUsize::new(0),
            annotate_delta: AtomicUsize::new(0),
            memo_hits: AtomicUsize::new(0),
            #[cfg(debug_assertions)]
            pruned_bounds: Mutex::new(Vec::new()),
        }
    }

    fn bound(&self) -> f64 {
        f64::from_bits(self.bound_bits.load(Ordering::Relaxed))
    }

    fn add_phase3(&self, p3: &Phase3Stats) {
        self.annotate_full
            .fetch_add(p3.annotate_full, Ordering::Relaxed);
        self.annotate_delta
            .fetch_add(p3.annotate_delta, Ordering::Relaxed);
        self.memo_hits.fetch_add(p3.memo_hits, Ordering::Relaxed);
    }

    fn fail(&self, e: OptError) {
        let mut err = self.error.lock();
        if err.is_none() {
            *err = Some(e);
        }
        self.stop.store(true, Ordering::Release);
    }
}

impl<'a> Optimizer<'a> {
    /// An optimizer with default heuristics, no budget, serial search,
    /// incremental annotation, and the given metric.
    pub fn new(registry: &'a ServiceRegistry, metric: CostMetric) -> Self {
        Optimizer {
            registry,
            metric,
            heuristics: HeuristicSet::default(),
            budget: None,
            max_topologies: DEFAULT_MAX_TOPOLOGIES,
            workers: 1,
            incremental: true,
            cache: None,
            replan_threshold: 10.0,
            pool: None,
        }
    }

    /// Runs the three-phase branch-and-bound and returns the best plan
    /// found. With a plan cache attached, a structurally identical
    /// query under the same registry epoch is answered without
    /// searching at all.
    pub fn optimize(&self, query: &Query) -> Result<Optimized, OptError> {
        let fingerprint = match &self.cache {
            Some(cache) if self.budget.is_none() => {
                let fp = query_fingerprint(
                    query,
                    self.registry,
                    self.metric,
                    &self.heuristics,
                    self.max_topologies,
                );
                if let Some(hit) = cache.get(fp) {
                    let mut out = (*hit).clone();
                    out.stats = SearchStats {
                        cache_hits: 1,
                        ..SearchStats::default()
                    };
                    return Ok(out);
                }
                Some(fp)
            }
            _ => None,
        };

        let mut result = self.search(query)?;
        if let (Some(cache), Some(fp)) = (&self.cache, fingerprint) {
            cache.insert(fp, Arc::new(result.clone()));
            result.stats.cache_misses = 1;
            result.stats.cache_inserts = 1;
        }
        Ok(result)
    }

    /// The actual search: enumerate phases 1–2, then fan the topologies
    /// across the worker pool.
    fn search(&self, query: &Query) -> Result<Optimized, OptError> {
        let mut stats = SearchStats::default();

        let assignments = enumerate_assignments(query, self.registry, self.heuristics.phase1)?;
        stats.assignments = assignments.len();

        let mut items: Vec<QueryPlan> = Vec::new();
        for assignment in &assignments {
            let topologies = enumerate_topologies(
                &assignment.query,
                self.registry,
                &assignment.report,
                self.heuristics.phase2,
                self.max_topologies,
            )?;
            items.extend(topologies);
        }
        stats.topologies = items.len();

        let shared = Shared::new(&items);
        let workers = self.workers.max(1).min(items.len().max(1));
        if workers <= 1 {
            self.worker(&shared, query.k);
        } else if let Some(pool) = &self.pool {
            // Worker loops are pure compute (no channel waits), so
            // they ride the pool's stealing deques directly; the
            // search makes progress even on a single-worker pool
            // because the scope owner executes jobs while waiting.
            let shared = &shared;
            pool.scope_run(
                (0..workers)
                    .map(|_| move || self.worker(shared, query.k))
                    .collect(),
            );
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| self.worker(&shared, query.k));
                }
            });
        }

        if let Some(e) = shared.error.lock().take() {
            return Err(e);
        }

        stats.instantiated = shared.instantiated.load(Ordering::Relaxed);
        stats.pruned = shared.pruned.load(Ordering::Relaxed);
        stats.bound_updates = shared.bound_updates.load(Ordering::Relaxed);
        stats.annotate_full = shared.annotate_full.load(Ordering::Relaxed);
        stats.annotate_delta = shared.annotate_delta.load(Ordering::Relaxed);
        stats.memo_hits = shared.memo_hits.load(Ordering::Relaxed);

        let best = shared.best.lock().take();
        match best {
            Some(candidate) => {
                // Pruning soundness (debug builds): every pruned
                // subtree's lower bound must exceed the winning cost —
                // i.e. the exhaustive winner is never in a pruned
                // subtree. Strict pruning guarantees this under any
                // schedule.
                #[cfg(debug_assertions)]
                for lb in shared.pruned_bounds.lock().iter() {
                    debug_assert!(
                        *lb > candidate.cost,
                        "pruned a subtree (lb={lb}) that could contain the winner \
                         (cost={})",
                        candidate.cost
                    );
                }
                Ok(Optimized {
                    plan: candidate.plan,
                    annotated: candidate.annotated,
                    cost: candidate.cost,
                    stats,
                })
            }
            None => {
                let unreachable = shared.unreachable.lock().take();
                Err(unreachable.unwrap_or(OptError::Unreachable {
                    best_estimate: 0.0,
                    k: query.k,
                }))
            }
        }
    }

    /// Worker loop: claim items off the shared cursor until exhausted
    /// or stopped.
    fn worker(&self, shared: &Shared<'_>, k: usize) {
        loop {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let idx = shared.next.fetch_add(1, Ordering::Relaxed);
            let Some(topology) = shared.items.get(idx) else {
                return;
            };
            if let Err(e) = self.process_item(idx, topology, shared, k) {
                shared.fail(e);
                return;
            }
        }
    }

    /// Bound and, if surviving, fully instantiate one topology.
    fn process_item(
        &self,
        idx: usize,
        topology: &QueryPlan,
        shared: &Shared<'_>,
        k: usize,
    ) -> Result<(), OptError> {
        let config = AnnotationConfig::default();
        let mut plan = topology.clone();
        for id in plan.node_ids().collect::<Vec<_>>() {
            if let PlanNode::Service(s) = plan.node_mut(id)? {
                s.fetches = 1;
            }
        }

        let mut p3 = Phase3Stats::default();
        let instantiation = if self.incremental {
            // One full annotation serves both the lower bound and the
            // phase-3 starting point.
            let annotator = DeltaAnnotator::new(&plan, self.registry, &config)?;
            p3.annotate_full += 1;
            let lower_bound = self
                .metric
                .evaluate(&plan, annotator.annotated(), self.registry)?;
            if lower_bound > shared.bound() {
                shared.pruned.fetch_add(1, Ordering::Relaxed);
                #[cfg(debug_assertions)]
                shared.pruned_bounds.lock().push(lower_bound);
                shared.add_phase3(&p3);
                return Ok(());
            }
            // Topology-shape hash at ⟨1,…,1⟩: fetch factors live in the
            // memo's vector key, not the shape.
            let shape = {
                let mut h = DefaultHasher::new();
                plan.canonical_key().hash(&mut h);
                h.finish()
            };
            assign_fetches_seeded(
                &mut plan,
                self.registry,
                k,
                self.heuristics.phase3,
                self.metric,
                annotator,
                Some((&shared.memo, shape)),
                &[],
                &mut p3,
            )
        } else {
            let lb_ann = annotate(&plan, self.registry, &config)?;
            p3.annotate_full += 1;
            let lower_bound = self.metric.evaluate(&plan, &lb_ann, self.registry)?;
            if lower_bound > shared.bound() {
                shared.pruned.fetch_add(1, Ordering::Relaxed);
                #[cfg(debug_assertions)]
                shared.pruned_bounds.lock().push(lower_bound);
                shared.add_phase3(&p3);
                return Ok(());
            }
            assign_fetches_with(
                &mut plan,
                self.registry,
                k,
                self.heuristics.phase3,
                self.metric,
                false,
                None,
                &mut p3,
            )
        };
        shared.add_phase3(&p3);

        match instantiation {
            Ok(annotated) => {
                let instantiated = shared.instantiated.fetch_add(1, Ordering::Relaxed) + 1;
                let cost = self.metric.evaluate(&plan, &annotated, self.registry)?;
                let candidate = Candidate {
                    cost,
                    key: plan.canonical_key(),
                    item_idx: idx,
                    plan,
                    annotated,
                };
                {
                    let mut best = shared.best.lock();
                    let replace = best.as_ref().map(|b| candidate.beats(b)).unwrap_or(true);
                    if replace {
                        if candidate.cost
                            < f64::from_bits(shared.bound_bits.load(Ordering::Relaxed))
                        {
                            shared
                                .bound_bits
                                .store(candidate.cost.to_bits(), Ordering::Relaxed);
                            shared.bound_updates.fetch_add(1, Ordering::Relaxed);
                        }
                        *best = Some(candidate);
                    }
                }
                if let Some(budget) = self.budget {
                    if instantiated >= budget && shared.best.lock().is_some() {
                        shared.stop.store(true, Ordering::Release);
                    }
                }
            }
            Err(e @ OptError::Unreachable { .. }) => {
                shared.instantiated.fetch_add(1, Ordering::Relaxed);
                *shared.unreachable.lock() = Some(e);
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }
}

/// Convenience wrapper: optimize `query` under `metric` with default
/// heuristics.
pub fn optimize(
    query: &Query,
    registry: &ServiceRegistry,
    metric: CostMetric,
) -> Result<Optimized, OptError> {
    Optimizer::new(registry, metric).optimize(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{Phase2Heuristic, Phase3Heuristic};
    use seco_plan::PlanNode;
    use seco_query::builder::running_example;
    use seco_services::domains::entertainment;

    #[test]
    fn optimizes_the_running_example() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        assert!(best.cost > 0.0);
        assert!(best.annotated.output_tuples >= q.k as f64);
        assert!(best.stats.topologies >= 4);
        assert!(best.stats.instantiated + best.stats.pruned <= best.stats.topologies);
        best.plan.validate().unwrap();
    }

    #[test]
    fn pruning_does_not_change_the_optimum() {
        // B&B must find the same cost as the exhaustive enumeration.
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        for metric in CostMetric::all() {
            let bnb = optimize(&q, &reg, metric).unwrap();
            let exhaustive = crate::exhaustive::optimize_exhaustive(&q, &reg, metric).unwrap();
            assert!(
                (bnb.cost - exhaustive.cost).abs() < 1e-9,
                "{metric}: bnb={} exhaustive={}",
                bnb.cost,
                exhaustive.cost
            );
        }
    }

    #[test]
    fn bnb_prunes_some_topologies() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        assert!(
            best.stats.pruned > 0,
            "the request-count metric separates chains from parallel plans enough to prune"
        );
    }

    #[test]
    fn budget_caps_the_search_and_still_returns_a_plan() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
        opt.budget = Some(1);
        let anytime = opt.optimize(&q).unwrap();
        assert_eq!(anytime.stats.instantiated, 1);
        anytime.plan.validate().unwrap();
        // The anytime result can be worse, never better, than the full
        // search.
        let full = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        assert!(anytime.cost >= full.cost - 1e-9);
    }

    #[test]
    fn request_count_prefers_the_parallel_plan() {
        // §5.4: "sequencing selective services plays in favor of
        // metrics that minimize the overall number of invocations" —
        // but with Movie1 feeding 100 tuples through a chained Theatre,
        // the parallel join wins by orders of magnitude here, matching
        // the chapter's choice of topology (d).
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        let has_parallel = best
            .plan
            .node_ids()
            .any(|id| matches!(best.plan.node(id), Ok(PlanNode::ParallelJoin(_))));
        assert!(
            has_parallel,
            "plan:\n{}",
            seco_plan::display::ascii(&best.plan, None).unwrap()
        );
    }

    #[test]
    fn heuristics_do_not_change_the_optimum() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let mut costs = Vec::new();
        for p2 in [
            Phase2Heuristic::ParallelIsBetter,
            Phase2Heuristic::SelectiveFirst,
        ] {
            for p3 in [Phase3Heuristic::Greedy, Phase3Heuristic::SquareIsBetter] {
                let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
                opt.heuristics.phase2 = p2;
                opt.heuristics.phase3 = p3;
                // Phase-3 heuristics can land on different instantiations,
                // but the search still returns a valid plan meeting k.
                let best = opt.optimize(&q).unwrap();
                assert!(best.annotated.output_tuples >= q.k as f64);
                costs.push(best.cost);
            }
        }
        // All runs agree on cost up to phase-3 heuristic differences.
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        assert!(
            max <= min * 2.0 + 1e-9,
            "heuristic spread too large: {costs:?}"
        );
    }

    #[test]
    fn impossible_k_reports_unreachable() {
        let reg = entertainment::build_registry(1).unwrap();
        let mut q = running_example();
        q.k = 10_000_000;
        let err = optimize(&q, &reg, CostMetric::RequestCount).unwrap_err();
        assert!(matches!(err, OptError::Unreachable { .. }));
    }

    #[test]
    fn parallel_search_matches_serial_byte_for_byte() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        for metric in CostMetric::all() {
            let serial = optimize(&q, &reg, metric).unwrap();
            for workers in [2usize, 4, 8] {
                let mut opt = Optimizer::new(&reg, metric);
                opt.workers = workers;
                let parallel = opt.optimize(&q).unwrap();
                assert_eq!(
                    parallel.cost.to_bits(),
                    serial.cost.to_bits(),
                    "{metric} workers={workers}"
                );
                assert_eq!(
                    parallel.plan.canonical_key(),
                    serial.plan.canonical_key(),
                    "{metric} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn pooled_search_matches_serial_byte_for_byte() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let pool = Arc::new(seco_exec::ExecPool::new(4));
        for metric in CostMetric::all() {
            let serial = optimize(&q, &reg, metric).unwrap();
            let mut opt = Optimizer::new(&reg, metric);
            opt.workers = 4;
            opt.pool = Some(pool.clone());
            let pooled = opt.optimize(&q).unwrap();
            assert_eq!(pooled.cost.to_bits(), serial.cost.to_bits(), "{metric}");
            assert_eq!(
                pooled.plan.canonical_key(),
                serial.plan.canonical_key(),
                "{metric}"
            );
        }
        assert!(pool.stats().morsels > 0, "search ran on the pool");
        pool.shutdown();
    }

    #[test]
    fn full_annotation_baseline_finds_the_same_optimum() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        for metric in CostMetric::all() {
            let incremental = optimize(&q, &reg, metric).unwrap();
            let mut opt = Optimizer::new(&reg, metric);
            opt.incremental = false;
            let full = opt.optimize(&q).unwrap();
            assert_eq!(full.cost.to_bits(), incremental.cost.to_bits(), "{metric}");
            assert_eq!(
                full.plan.canonical_key(),
                incremental.plan.canonical_key(),
                "{metric}"
            );
            assert!(
                incremental.stats.annotate_full < full.stats.annotate_full,
                "{metric}: delta annotation must replace full annotations \
                 ({} !< {})",
                incremental.stats.annotate_full,
                full.stats.annotate_full
            );
            assert_eq!(full.stats.annotate_delta, 0);
        }
    }

    #[test]
    fn plan_cache_answers_repeat_queries() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let cache = Arc::new(PlanCache::new());
        let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
        opt.cache = Some(Arc::clone(&cache));

        let cold = opt.optimize(&q).unwrap();
        assert_eq!(cold.stats.cache_hits, 0);
        assert_eq!(cold.stats.cache_misses, 1);
        assert_eq!(cold.stats.cache_inserts, 1);
        assert_eq!(cache.len(), 1);

        let warm = opt.optimize(&q).unwrap();
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.stats.instantiated, 0, "a hit searches nothing");
        assert_eq!(warm.cost.to_bits(), cold.cost.to_bits());
        assert_eq!(warm.plan.canonical_key(), cold.plan.canonical_key());

        // A different metric is a different fingerprint.
        let mut opt2 = Optimizer::new(&reg, CostMetric::ExecutionTime);
        opt2.cache = Some(Arc::clone(&cache));
        let other = opt2.optimize(&q).unwrap();
        assert_eq!(other.stats.cache_misses, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn budgeted_runs_bypass_the_cache() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let cache = Arc::new(PlanCache::new());
        let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
        opt.cache = Some(Arc::clone(&cache));
        opt.budget = Some(1);
        let anytime = opt.optimize(&q).unwrap();
        assert_eq!(anytime.stats.cache_misses, 0);
        assert_eq!(anytime.stats.cache_inserts, 0);
        assert!(cache.is_empty(), "truncated results must not be cached");
    }
}
