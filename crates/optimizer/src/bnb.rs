//! The branch-and-bound driver (§5.2, Fig. 8).
//!
//! The three phases branch; the bounding step uses the monotonicity of
//! every supported cost metric: a topology instantiated at the minimal
//! fetch vector ⟨1, …, 1⟩ costs no more than any of its completions, so
//! its cost is a valid lower bound for the whole phase-3 subtree. When
//! that bound is not below the incumbent's cost, the subtree is pruned
//! without running phase 3. "The search for the optimal plan can be
//! stopped at any time, and it will nevertheless return a valid
//! solution" — [`Optimizer::budget`] implements that anytime behaviour.

use seco_plan::{annotate, AnnotatedPlan, AnnotationConfig, QueryPlan};
use seco_query::Query;
use seco_services::ServiceRegistry;

use crate::cost::CostMetric;
use crate::error::OptError;
use crate::heuristics::HeuristicSet;
use crate::phase1::enumerate_assignments;
use crate::phase2::{enumerate_topologies, DEFAULT_MAX_TOPOLOGIES};
use crate::phase3::assign_fetches;

/// Exploration statistics of one optimization run (the Fig. 8
/// experiment data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Feasible phase-1 assignments considered.
    pub assignments: usize,
    /// Phase-2 topologies enumerated.
    pub topologies: usize,
    /// Topologies fully instantiated (phase 3 ran).
    pub instantiated: usize,
    /// Topologies pruned by the lower bound.
    pub pruned: usize,
}

/// The optimization result: the chosen fully instantiated plan, its
/// annotation, its cost, and the search statistics.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The winning plan (fetch factors set).
    pub plan: QueryPlan,
    /// Its cardinality annotation.
    pub annotated: AnnotatedPlan,
    /// Its cost under the optimizer's metric.
    pub cost: f64,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Configured optimizer.
pub struct Optimizer<'a> {
    /// Service registry resolving interfaces and statistics.
    pub registry: &'a ServiceRegistry,
    /// Metric to minimize.
    pub metric: CostMetric,
    /// Branch-ordering heuristics.
    pub heuristics: HeuristicSet,
    /// Anytime budget: stop after fully instantiating this many plans
    /// (`None` = run to exhaustion of the search space).
    pub budget: Option<usize>,
    /// Cap on enumerated topologies per assignment.
    pub max_topologies: usize,
}

impl<'a> Optimizer<'a> {
    /// An optimizer with default heuristics, no budget, and the given
    /// metric.
    pub fn new(registry: &'a ServiceRegistry, metric: CostMetric) -> Self {
        Optimizer {
            registry,
            metric,
            heuristics: HeuristicSet::default(),
            budget: None,
            max_topologies: DEFAULT_MAX_TOPOLOGIES,
        }
    }

    /// Runs the three-phase branch-and-bound and returns the best plan
    /// found.
    pub fn optimize(&self, query: &Query) -> Result<Optimized, OptError> {
        let config = AnnotationConfig::default();
        let mut stats = SearchStats::default();
        let mut incumbent: Option<Optimized> = None;
        let mut last_unreachable: Option<OptError> = None;

        let assignments = enumerate_assignments(query, self.registry, self.heuristics.phase1)?;
        stats.assignments = assignments.len();

        'search: for assignment in &assignments {
            let topologies = enumerate_topologies(
                &assignment.query,
                self.registry,
                &assignment.report,
                self.heuristics.phase2,
                self.max_topologies,
            )?;
            stats.topologies += topologies.len();

            for topology in topologies {
                // Bounding: the minimal instantiation lower-bounds every
                // phase-3 completion (metric monotone in F).
                let lb_ann = annotate(&topology, self.registry, &config)?;
                let lower_bound = self.metric.evaluate(&topology, &lb_ann, self.registry)?;
                if let Some(best) = &incumbent {
                    if lower_bound >= best.cost {
                        stats.pruned += 1;
                        continue;
                    }
                }
                // Phase 3: full instantiation.
                let mut plan = topology;
                match assign_fetches(
                    &mut plan,
                    self.registry,
                    query.k,
                    self.heuristics.phase3,
                    self.metric,
                ) {
                    Ok(annotated) => {
                        stats.instantiated += 1;
                        let cost = self.metric.evaluate(&plan, &annotated, self.registry)?;
                        let better = incumbent.as_ref().map(|b| cost < b.cost).unwrap_or(true);
                        if better {
                            incumbent = Some(Optimized {
                                plan,
                                annotated,
                                cost,
                                stats: SearchStats::default(),
                            });
                        }
                    }
                    Err(e @ OptError::Unreachable { .. }) => {
                        stats.instantiated += 1;
                        last_unreachable = Some(e);
                    }
                    Err(e) => return Err(e),
                }
                if let Some(budget) = self.budget {
                    if stats.instantiated >= budget {
                        break 'search;
                    }
                }
            }
        }

        match incumbent {
            Some(mut best) => {
                best.stats = stats;
                Ok(best)
            }
            None => Err(last_unreachable.unwrap_or(OptError::Unreachable {
                best_estimate: 0.0,
                k: query.k,
            })),
        }
    }
}

/// Convenience wrapper: optimize `query` under `metric` with default
/// heuristics.
pub fn optimize(
    query: &Query,
    registry: &ServiceRegistry,
    metric: CostMetric,
) -> Result<Optimized, OptError> {
    Optimizer::new(registry, metric).optimize(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{Phase2Heuristic, Phase3Heuristic};
    use seco_plan::PlanNode;
    use seco_query::builder::running_example;
    use seco_services::domains::entertainment;

    #[test]
    fn optimizes_the_running_example() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        assert!(best.cost > 0.0);
        assert!(best.annotated.output_tuples >= q.k as f64);
        assert!(best.stats.topologies >= 4);
        assert!(best.stats.instantiated + best.stats.pruned <= best.stats.topologies);
        best.plan.validate().unwrap();
    }

    #[test]
    fn pruning_does_not_change_the_optimum() {
        // B&B must find the same cost as the exhaustive enumeration.
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        for metric in CostMetric::all() {
            let bnb = optimize(&q, &reg, metric).unwrap();
            let exhaustive = crate::exhaustive::optimize_exhaustive(&q, &reg, metric).unwrap();
            assert!(
                (bnb.cost - exhaustive.cost).abs() < 1e-9,
                "{metric}: bnb={} exhaustive={}",
                bnb.cost,
                exhaustive.cost
            );
        }
    }

    #[test]
    fn bnb_prunes_some_topologies() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        assert!(
            best.stats.pruned > 0,
            "the request-count metric separates chains from parallel plans enough to prune"
        );
    }

    #[test]
    fn budget_caps_the_search_and_still_returns_a_plan() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
        opt.budget = Some(1);
        let anytime = opt.optimize(&q).unwrap();
        assert_eq!(anytime.stats.instantiated, 1);
        anytime.plan.validate().unwrap();
        // The anytime result can be worse, never better, than the full
        // search.
        let full = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        assert!(anytime.cost >= full.cost - 1e-9);
    }

    #[test]
    fn request_count_prefers_the_parallel_plan() {
        // §5.4: "sequencing selective services plays in favor of
        // metrics that minimize the overall number of invocations" —
        // but with Movie1 feeding 100 tuples through a chained Theatre,
        // the parallel join wins by orders of magnitude here, matching
        // the chapter's choice of topology (d).
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        let has_parallel = best
            .plan
            .node_ids()
            .any(|id| matches!(best.plan.node(id), Ok(PlanNode::ParallelJoin(_))));
        assert!(
            has_parallel,
            "plan:\n{}",
            seco_plan::display::ascii(&best.plan, None).unwrap()
        );
    }

    #[test]
    fn heuristics_do_not_change_the_optimum() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let mut costs = Vec::new();
        for p2 in [
            Phase2Heuristic::ParallelIsBetter,
            Phase2Heuristic::SelectiveFirst,
        ] {
            for p3 in [Phase3Heuristic::Greedy, Phase3Heuristic::SquareIsBetter] {
                let mut opt = Optimizer::new(&reg, CostMetric::RequestCount);
                opt.heuristics.phase2 = p2;
                opt.heuristics.phase3 = p3;
                // Phase-3 heuristics can land on different instantiations,
                // but the search still returns a valid plan meeting k.
                let best = opt.optimize(&q).unwrap();
                assert!(best.annotated.output_tuples >= q.k as f64);
                costs.push(best.cost);
            }
        }
        // All runs agree on cost up to phase-3 heuristic differences.
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        assert!(
            max <= min * 2.0 + 1e-9,
            "heuristic spread too large: {costs:?}"
        );
    }

    #[test]
    fn impossible_k_reports_unreachable() {
        let reg = entertainment::build_registry(1).unwrap();
        let mut q = running_example();
        q.k = 10_000_000;
        let err = optimize(&q, &reg, CostMetric::RequestCount).unwrap_err();
        assert!(matches!(err, OptError::Unreachable { .. }));
    }
}
