//! Phase 3: choice of the number of fetches (§5.5).
//!
//! "Whenever a query includes chunked services cs1, …, csM, we need to
//! provide an estimate of the number of chunks that will be fetched per
//! input tuple at each csi — the *fetching factors* ⟨F1, …, FM⟩.
//! Initially, all fetching factors are set to 1, which is the lowest
//! admissible value […]. Clearly, if the n-tuple ⟨1, 1, …, 1⟩ already
//! determines h ≥ k results, then it is also the optimal solution.
//! Otherwise, the fetching factors have to be incremented until h ≥ k."
//!
//! Two increment policies are provided: **greedy** (increment the
//! factor with the highest estimated output gain per unit of cost) and
//! **square-is-better** (keep the explored tuple counts of all chunked
//! services balanced).
//!
//! Annotation is **incremental** by default: the topology is annotated
//! once at ⟨1, …, 1⟩ (a [`DeltaAnnotator`]), and every trial or
//! committed increment propagates only the changed node's downstream
//! cone. Trial evaluations are additionally memoized across topologies
//! by (topology shape, fetch vector), so re-instantiating a shape the
//! search has already explored never re-derives the same estimate. The
//! legacy full-re-annotation path is kept (`incremental = false`) as
//! the baseline the `optimizer_bench` delta is measured against.

use std::collections::HashMap;

use parking_lot::Mutex;
use seco_plan::{
    annotate, AnnotatedPlan, AnnotationConfig, DeltaAnnotator, NodeId, PlanNode, QueryPlan,
};
use seco_services::ServiceRegistry;

use crate::cost::CostMetric;
use crate::error::OptError;
use crate::heuristics::Phase3Heuristic;

/// Safety valve on increment rounds.
const MAX_ROUNDS: usize = 10_000;

/// Annotation-work counters of one phase-3 run (aggregated into
/// [`crate::SearchStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Phase3Stats {
    /// Full-plan annotations (validate + feasibility + every node).
    pub annotate_full: usize,
    /// Delta propagations (downstream cone of one changed node).
    pub annotate_delta: usize,
    /// Trial evaluations answered by the (shape, fetch-vector) memo.
    pub memo_hits: usize,
}

impl Phase3Stats {
    /// Accumulates another run's counters.
    pub fn merge(&mut self, other: &Phase3Stats) {
        self.annotate_full += other.annotate_full;
        self.annotate_delta += other.annotate_delta;
        self.memo_hits += other.memo_hits;
    }
}

/// Memoized trial estimates keyed by (topology-shape hash, fetch
/// vector): expected output tuples and metric cost. Shared across the
/// branch-and-bound's workers under one optimization run (the registry
/// statistics and metric are fixed for the run, so entries never go
/// stale within it).
pub type AnnotationMemo = HashMap<(u64, Vec<u32>), (f64, f64)>;

/// Assigns fetch factors in place until the annotated plan yields at
/// least `k` expected answers; returns the final annotation.
///
/// Fails with [`OptError::Unreachable`] when even maximal fetching
/// cannot reach `k` (e.g. the services simply do not hold enough
/// matching data).
pub fn assign_fetches(
    plan: &mut QueryPlan,
    registry: &ServiceRegistry,
    k: usize,
    heuristic: Phase3Heuristic,
    metric: CostMetric,
) -> Result<AnnotatedPlan, OptError> {
    let mut stats = Phase3Stats::default();
    assign_fetches_with(plan, registry, k, heuristic, metric, true, None, &mut stats)
}

/// [`assign_fetches`] with explicit annotation mode, optional memo, and
/// work counters. `incremental = false` re-annotates the full plan on
/// every trial (the pre-delta behaviour, kept as the benchmark
/// baseline).
#[allow(clippy::too_many_arguments)]
pub fn assign_fetches_with(
    plan: &mut QueryPlan,
    registry: &ServiceRegistry,
    k: usize,
    heuristic: Phase3Heuristic,
    metric: CostMetric,
    incremental: bool,
    memo: Option<(&Mutex<AnnotationMemo>, u64)>,
    stats: &mut Phase3Stats,
) -> Result<AnnotatedPlan, OptError> {
    // Initialise every factor at the lowest admissible value.
    for id in plan.node_ids().collect::<Vec<_>>() {
        if let PlanNode::Service(s) = plan.node_mut(id)? {
            s.fetches = 1;
        }
    }
    if incremental {
        let config = AnnotationConfig::default();
        let annotator = DeltaAnnotator::new(plan, registry, &config)?;
        stats.annotate_full += 1;
        assign_fetches_seeded(
            plan,
            registry,
            k,
            heuristic,
            metric,
            annotator,
            memo,
            &[],
            stats,
        )
    } else {
        assign_fetches_full(plan, registry, k, heuristic, metric, stats)
    }
}

/// Incremental phase 3 starting from a pre-built annotator positioned
/// at the plan's current (minimal) fetch vector — the branch-and-bound
/// reuses the annotator it already built for the lower bound, so a
/// surviving topology costs exactly one full annotation.
///
/// Nodes in `pinned` keep their current fetch factor: suffix re-plans
/// pass the already-executed service nodes here, whose fetches are a
/// fact of the past, not a degree of freedom.
#[allow(clippy::too_many_arguments)]
pub fn assign_fetches_seeded(
    plan: &mut QueryPlan,
    registry: &ServiceRegistry,
    k: usize,
    heuristic: Phase3Heuristic,
    metric: CostMetric,
    mut annotator: DeltaAnnotator,
    memo: Option<(&Mutex<AnnotationMemo>, u64)>,
    pinned: &[NodeId],
    stats: &mut Phase3Stats,
) -> Result<AnnotatedPlan, OptError> {
    // Service-node ordinals in node-id order: position of each service
    // node within the fetch vector (the memo key layout).
    let service_nodes: Vec<NodeId> = plan
        .node_ids()
        .filter(|id| matches!(plan.node(*id), Ok(PlanNode::Service(_))))
        .collect();
    let ordinal_of = |id: NodeId| service_nodes.iter().position(|s| *s == id);

    for _ in 0..MAX_ROUNDS {
        if annotator.output_tuples() >= k as f64 {
            return Ok(annotator.to_annotated());
        }
        let mut candidates = incrementable(plan, registry)?;
        candidates.retain(|id| !pinned.contains(id));
        if candidates.is_empty() {
            return Err(OptError::Unreachable {
                best_estimate: annotator.output_tuples(),
                k,
            });
        }
        let chosen = match heuristic {
            Phase3Heuristic::Greedy => pick_greedy_incremental(
                plan,
                registry,
                &mut annotator,
                &candidates,
                metric,
                memo,
                &ordinal_of,
                stats,
            )?,
            Phase3Heuristic::SquareIsBetter => pick_square(plan, registry, &candidates)?,
        };
        let Some(chosen) = chosen else {
            // No increment improves the estimate: the output is capped
            // by the data, not by fetching.
            return Err(OptError::Unreachable {
                best_estimate: annotator.output_tuples(),
                k,
            });
        };
        let next = annotator.fetches(chosen).unwrap_or(1) + 1;
        annotator.set_fetches(chosen, next)?;
        stats.annotate_delta += 1;
        if let PlanNode::Service(s) = plan.node_mut(chosen)? {
            s.fetches = next;
        }
    }
    Err(OptError::Unreachable {
        best_estimate: annotator.output_tuples(),
        k,
    })
}

/// The legacy full-re-annotation loop (benchmark baseline): every trial
/// and every committed increment re-annotates the whole plan.
fn assign_fetches_full(
    plan: &mut QueryPlan,
    registry: &ServiceRegistry,
    k: usize,
    heuristic: Phase3Heuristic,
    metric: CostMetric,
    stats: &mut Phase3Stats,
) -> Result<AnnotatedPlan, OptError> {
    let config = AnnotationConfig::default();
    let mut annotated = annotate(plan, registry, &config)?;
    stats.annotate_full += 1;

    for _ in 0..MAX_ROUNDS {
        if annotated.output_tuples >= k as f64 {
            return Ok(annotated);
        }
        let candidates = incrementable(plan, registry)?;
        if candidates.is_empty() {
            return Err(OptError::Unreachable {
                best_estimate: annotated.output_tuples,
                k,
            });
        }
        let chosen = match heuristic {
            Phase3Heuristic::Greedy => {
                pick_greedy_full(plan, registry, &annotated, &candidates, metric, stats)?
            }
            Phase3Heuristic::SquareIsBetter => pick_square(plan, registry, &candidates)?,
        };
        let Some(chosen) = chosen else {
            return Err(OptError::Unreachable {
                best_estimate: annotated.output_tuples,
                k,
            });
        };
        if let PlanNode::Service(s) = plan.node_mut(chosen)? {
            s.fetches += 1;
        }
        annotated = annotate(plan, registry, &config)?;
        stats.annotate_full += 1;
    }
    Err(OptError::Unreachable {
        best_estimate: annotated.output_tuples,
        k,
    })
}

/// Chunked service nodes whose factor can still usefully grow (below
/// the service's expected chunk count, and not `keep_first`).
fn incrementable(plan: &QueryPlan, registry: &ServiceRegistry) -> Result<Vec<NodeId>, OptError> {
    let mut out = Vec::new();
    for id in plan.node_ids() {
        if let PlanNode::Service(node) = plan.node(id)? {
            let iface = registry.interface(&node.service)?;
            if !iface.kind.is_chunked() || node.keep_first {
                continue;
            }
            let max_chunks = iface.stats.expected_chunks().max(1) as u32;
            if node.fetches < max_chunks {
                out.push(id);
            }
        }
    }
    Ok(out)
}

/// Greedy over delta propagations: each candidate's trial bumps one
/// factor, reads the new estimate and cost, and reverts — two cone
/// recomputations instead of two full annotations, unless the (shape,
/// vector) memo already knows the answer.
#[allow(clippy::too_many_arguments)]
fn pick_greedy_incremental(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    annotator: &mut DeltaAnnotator,
    candidates: &[NodeId],
    metric: CostMetric,
    memo: Option<(&Mutex<AnnotationMemo>, u64)>,
    ordinal_of: &dyn Fn(NodeId) -> Option<usize>,
    stats: &mut Phase3Stats,
) -> Result<Option<NodeId>, OptError> {
    let base_out = annotator.output_tuples();
    let base_cost = metric.evaluate(plan, annotator.annotated(), registry)?;
    let base_vector = annotator.fetch_vector();
    let mut best: Option<(NodeId, f64)> = None;
    for &id in candidates {
        let current = annotator.fetches(id).unwrap_or(1);
        let (out, cost) = {
            let trial_key = memo.and_then(|(_, shape)| {
                let ord = ordinal_of(id)?;
                let mut v = base_vector.clone();
                v[ord] += 1;
                Some((shape, v))
            });
            let cached = trial_key
                .as_ref()
                .and_then(|key| memo.map(|(m, _)| m.lock().get(key).copied()))
                .flatten();
            if let Some(hit) = cached {
                stats.memo_hits += 1;
                hit
            } else {
                annotator.set_fetches(id, current + 1)?;
                stats.annotate_delta += 1;
                let out = annotator.output_tuples();
                let cost = metric.evaluate(plan, annotator.annotated(), registry)?;
                annotator.set_fetches(id, current)?;
                stats.annotate_delta += 1;
                if let (Some((m, _)), Some(key)) = (memo, trial_key) {
                    m.lock().insert(key, (out, cost));
                }
                (out, cost)
            }
        };
        let gain = out - base_out;
        if gain <= 0.0 {
            continue;
        }
        let cost_delta = (cost - base_cost).max(1e-9);
        let sensitivity = gain / cost_delta;
        if best.map(|(_, s)| sensitivity > s).unwrap_or(true) {
            best = Some((id, sensitivity));
        }
    }
    Ok(best.map(|(id, _)| id))
}

/// Greedy over full re-annotations (legacy baseline): the candidate
/// with the highest Δoutput / Δcost.
fn pick_greedy_full(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    current: &AnnotatedPlan,
    candidates: &[NodeId],
    metric: CostMetric,
    stats: &mut Phase3Stats,
) -> Result<Option<NodeId>, OptError> {
    let config = AnnotationConfig::default();
    let base_cost = metric.evaluate(plan, current, registry)?;
    let mut best: Option<(NodeId, f64)> = None;
    for &id in candidates {
        let mut trial = plan.clone();
        if let PlanNode::Service(s) = trial.node_mut(id)? {
            s.fetches += 1;
        }
        let ann = annotate(&trial, registry, &config)?;
        stats.annotate_full += 1;
        let gain = ann.output_tuples - current.output_tuples;
        if gain <= 0.0 {
            continue;
        }
        let cost_delta = (metric.evaluate(&trial, &ann, registry)? - base_cost).max(1e-9);
        let sensitivity = gain / cost_delta;
        if best.map(|(_, s)| sensitivity > s).unwrap_or(true) {
            best = Some((id, sensitivity));
        }
    }
    Ok(best.map(|(id, _)| id))
}

/// Square-is-better: the candidate whose explored-tuple count
/// `F × chunk_size` is currently smallest.
fn pick_square(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    candidates: &[NodeId],
) -> Result<Option<NodeId>, OptError> {
    let mut best: Option<(NodeId, f64)> = None;
    for &id in candidates {
        if let PlanNode::Service(node) = plan.node(id)? {
            let iface = registry.interface(&node.service)?;
            let explored = node.fetches as f64 * iface.stats.chunk_size as f64;
            if best.map(|(_, e)| explored < e).unwrap_or(true) {
                best = Some((id, explored));
            }
        }
    }
    Ok(best.map(|(id, _)| id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::Phase2Heuristic;
    use crate::phase2::enumerate_topologies;
    use seco_query::builder::running_example;
    use seco_query::feasibility::analyze;
    use seco_services::domains::entertainment;

    fn parallel_topology() -> (QueryPlan, seco_services::ServiceRegistry) {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let report = analyze(&q, &reg).unwrap();
        let plans =
            enumerate_topologies(&q, &reg, &report, Phase2Heuristic::ParallelIsBetter, 64).unwrap();
        let plan = plans
            .into_iter()
            .find(|p| {
                p.node_ids()
                    .any(|id| matches!(p.node(id), Ok(PlanNode::ParallelJoin(_))))
            })
            .unwrap();
        (plan, reg)
    }

    #[test]
    fn fetches_grow_until_k_is_reached() {
        let (mut plan, reg) = parallel_topology();
        let ann = assign_fetches(
            &mut plan,
            &reg,
            5,
            Phase3Heuristic::SquareIsBetter,
            CostMetric::RequestCount,
        )
        .unwrap();
        assert!(ann.output_tuples >= 5.0);
        // Some factor must have grown beyond the initial 1 to get there.
        let grew = plan
            .node_ids()
            .any(|id| matches!(plan.node(id), Ok(PlanNode::Service(s)) if s.fetches > 1));
        assert!(grew);
    }

    #[test]
    fn trivial_k_keeps_all_factors_at_one() {
        let (mut plan, reg) = parallel_topology();
        // k=1 is reachable at F=⟨1,…,1⟩ for this plan? Check the
        // estimate first; if ⟨1⟩ suffices the factors must stay 1.
        let ann = assign_fetches(
            &mut plan,
            &reg,
            1,
            Phase3Heuristic::Greedy,
            CostMetric::RequestCount,
        );
        if let Ok(ann) = ann {
            if ann.output_tuples >= 1.0 {
                let at_one = plan
                    .node_ids()
                    .filter_map(|id| match plan.node(id) {
                        Ok(PlanNode::Service(s)) => Some(s.fetches),
                        _ => None,
                    })
                    .all(|f| f <= 2);
                assert!(at_one, "k=1 should need minimal fetching");
            }
        }
    }

    #[test]
    fn greedy_and_square_both_reach_k() {
        for h in [Phase3Heuristic::Greedy, Phase3Heuristic::SquareIsBetter] {
            let (mut plan, reg) = parallel_topology();
            let ann = assign_fetches(&mut plan, &reg, 8, h, CostMetric::RequestCount).unwrap();
            assert!(ann.output_tuples >= 8.0, "{h} must reach k=8");
        }
    }

    #[test]
    fn unreachable_k_errors_with_best_estimate() {
        let (mut plan, reg) = parallel_topology();
        // The services cannot produce thousands of combinations.
        let err = assign_fetches(
            &mut plan,
            &reg,
            1_000_000,
            Phase3Heuristic::SquareIsBetter,
            CostMetric::RequestCount,
        )
        .unwrap_err();
        match err {
            OptError::Unreachable { best_estimate, k } => {
                assert_eq!(k, 1_000_000);
                assert!(best_estimate < 1_000_000.0);
                assert!(best_estimate > 0.0);
            }
            other => panic!("expected Unreachable, got {other}"),
        }
    }

    #[test]
    fn square_is_better_balances_explored_tuples() {
        let (mut plan, reg) = parallel_topology();
        assign_fetches(
            &mut plan,
            &reg,
            10,
            Phase3Heuristic::SquareIsBetter,
            CostMetric::RequestCount,
        )
        .unwrap();
        // Movie chunks are 20-wide, Theatre 5-wide: balancing explored
        // tuples means Theatre gets more fetches than Movie, not fewer.
        let f = |atom: &str| {
            let id = plan.service_node_of(atom).unwrap();
            match plan.node(id) {
                Ok(PlanNode::Service(s)) => s.fetches,
                _ => 0,
            }
        };
        assert!(f("T") >= f("M"), "theatre F={} movie F={}", f("T"), f("M"));
    }

    /// Incremental and full phase 3 must be interchangeable: same fetch
    /// vector, same annotation, same counters shape.
    #[test]
    fn incremental_matches_full_for_both_heuristics() {
        for h in [Phase3Heuristic::Greedy, Phase3Heuristic::SquareIsBetter] {
            for k in [1usize, 5, 10, 25] {
                let (mut p_inc, reg) = parallel_topology();
                let mut p_full = p_inc.clone();
                let mut st_inc = Phase3Stats::default();
                let mut st_full = Phase3Stats::default();
                let metric = CostMetric::RequestCount;
                let a =
                    assign_fetches_with(&mut p_inc, &reg, k, h, metric, true, None, &mut st_inc);
                let b =
                    assign_fetches_with(&mut p_full, &reg, k, h, metric, false, None, &mut st_full);
                match (a, b) {
                    (Ok(ann_a), Ok(ann_b)) => {
                        assert_eq!(p_inc, p_full, "{h} k={k}: fetch vectors diverged");
                        assert_eq!(
                            ann_a.output_tuples.to_bits(),
                            ann_b.output_tuples.to_bits(),
                            "{h} k={k}"
                        );
                        assert_eq!(ann_a.calls_by_service, ann_b.calls_by_service);
                    }
                    (Err(OptError::Unreachable { .. }), Err(OptError::Unreachable { .. })) => {}
                    (a, b) => panic!("{h} k={k}: outcomes diverged: {a:?} vs {b:?}"),
                }
                assert!(
                    st_inc.annotate_full <= 1,
                    "incremental must annotate fully at most once, did {}",
                    st_inc.annotate_full
                );
                if st_full.annotate_full > 1 {
                    assert!(
                        st_inc.annotate_delta > 0,
                        "delta work must replace full work"
                    );
                }
            }
        }
    }

    /// The memo answers repeated trial evaluations for the same
    /// (shape, vector) without propagating.
    #[test]
    fn memo_short_circuits_repeated_shapes() {
        let (plan, reg) = parallel_topology();
        let memo = Mutex::new(AnnotationMemo::new());
        let shape = 0xfeed_beefu64;
        let run = || {
            let mut p = plan.clone();
            let mut stats = Phase3Stats::default();
            assign_fetches_with(
                &mut p,
                &reg,
                10,
                Phase3Heuristic::Greedy,
                CostMetric::RequestCount,
                true,
                Some((&memo, shape)),
                &mut stats,
            )
            .unwrap();
            stats
        };
        let first = run();
        assert_eq!(first.memo_hits, 0, "cold memo cannot hit");
        let second = run();
        assert!(
            second.memo_hits > 0,
            "re-instantiating the same shape must hit the memo"
        );
        assert!(
            second.annotate_delta < first.annotate_delta,
            "memo hits must replace delta propagations ({} !< {})",
            second.annotate_delta,
            first.annotate_delta
        );
    }
}
