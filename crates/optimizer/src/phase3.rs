//! Phase 3: choice of the number of fetches (§5.5).
//!
//! "Whenever a query includes chunked services cs1, …, csM, we need to
//! provide an estimate of the number of chunks that will be fetched per
//! input tuple at each csi — the *fetching factors* ⟨F1, …, FM⟩.
//! Initially, all fetching factors are set to 1, which is the lowest
//! admissible value […]. Clearly, if the n-tuple ⟨1, 1, …, 1⟩ already
//! determines h ≥ k results, then it is also the optimal solution.
//! Otherwise, the fetching factors have to be incremented until h ≥ k."
//!
//! Two increment policies are provided: **greedy** (increment the
//! factor with the highest estimated output gain per unit of cost) and
//! **square-is-better** (keep the explored tuple counts of all chunked
//! services balanced).

use seco_plan::{annotate, AnnotatedPlan, AnnotationConfig, NodeId, PlanNode, QueryPlan};
use seco_services::ServiceRegistry;

use crate::cost::CostMetric;
use crate::error::OptError;
use crate::heuristics::Phase3Heuristic;

/// Safety valve on increment rounds.
const MAX_ROUNDS: usize = 10_000;

/// Assigns fetch factors in place until the annotated plan yields at
/// least `k` expected answers; returns the final annotation.
///
/// Fails with [`OptError::Unreachable`] when even maximal fetching
/// cannot reach `k` (e.g. the services simply do not hold enough
/// matching data).
pub fn assign_fetches(
    plan: &mut QueryPlan,
    registry: &ServiceRegistry,
    k: usize,
    heuristic: Phase3Heuristic,
    metric: CostMetric,
) -> Result<AnnotatedPlan, OptError> {
    let config = AnnotationConfig::default();
    // Initialise every factor at the lowest admissible value.
    for id in plan.node_ids().collect::<Vec<_>>() {
        if let PlanNode::Service(s) = plan.node_mut(id)? {
            s.fetches = 1;
        }
    }
    let mut annotated = annotate(plan, registry, &config)?;

    for _ in 0..MAX_ROUNDS {
        if annotated.output_tuples >= k as f64 {
            return Ok(annotated);
        }
        let candidates = incrementable(plan, registry)?;
        if candidates.is_empty() {
            return Err(OptError::Unreachable {
                best_estimate: annotated.output_tuples,
                k,
            });
        }
        let chosen = match heuristic {
            Phase3Heuristic::Greedy => {
                pick_greedy(plan, registry, &annotated, &candidates, metric)?
            }
            Phase3Heuristic::SquareIsBetter => pick_square(plan, registry, &candidates)?,
        };
        let Some(chosen) = chosen else {
            // No increment improves the estimate: the output is capped
            // by the data, not by fetching.
            return Err(OptError::Unreachable {
                best_estimate: annotated.output_tuples,
                k,
            });
        };
        if let PlanNode::Service(s) = plan.node_mut(chosen)? {
            s.fetches += 1;
        }
        annotated = annotate(plan, registry, &config)?;
    }
    Err(OptError::Unreachable {
        best_estimate: annotated.output_tuples,
        k,
    })
}

/// Chunked service nodes whose factor can still usefully grow (below
/// the service's expected chunk count, and not `keep_first`).
fn incrementable(plan: &QueryPlan, registry: &ServiceRegistry) -> Result<Vec<NodeId>, OptError> {
    let mut out = Vec::new();
    for id in plan.node_ids() {
        if let PlanNode::Service(node) = plan.node(id)? {
            let iface = registry.interface(&node.service)?;
            if !iface.kind.is_chunked() || node.keep_first {
                continue;
            }
            let max_chunks = iface.stats.expected_chunks().max(1) as u32;
            if node.fetches < max_chunks {
                out.push(id);
            }
        }
    }
    Ok(out)
}

/// Greedy: the candidate with the highest Δoutput / Δcost.
fn pick_greedy(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    current: &AnnotatedPlan,
    candidates: &[NodeId],
    metric: CostMetric,
) -> Result<Option<NodeId>, OptError> {
    let config = AnnotationConfig::default();
    let base_cost = metric.evaluate(plan, current, registry)?;
    let mut best: Option<(NodeId, f64)> = None;
    for &id in candidates {
        let mut trial = plan.clone();
        if let PlanNode::Service(s) = trial.node_mut(id)? {
            s.fetches += 1;
        }
        let ann = annotate(&trial, registry, &config)?;
        let gain = ann.output_tuples - current.output_tuples;
        if gain <= 0.0 {
            continue;
        }
        let cost_delta = (metric.evaluate(&trial, &ann, registry)? - base_cost).max(1e-9);
        let sensitivity = gain / cost_delta;
        if best.map(|(_, s)| sensitivity > s).unwrap_or(true) {
            best = Some((id, sensitivity));
        }
    }
    Ok(best.map(|(id, _)| id))
}

/// Square-is-better: the candidate whose explored-tuple count
/// `F × chunk_size` is currently smallest.
fn pick_square(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    candidates: &[NodeId],
) -> Result<Option<NodeId>, OptError> {
    let mut best: Option<(NodeId, f64)> = None;
    for &id in candidates {
        if let PlanNode::Service(node) = plan.node(id)? {
            let iface = registry.interface(&node.service)?;
            let explored = node.fetches as f64 * iface.stats.chunk_size as f64;
            if best.map(|(_, e)| explored < e).unwrap_or(true) {
                best = Some((id, explored));
            }
        }
    }
    Ok(best.map(|(id, _)| id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::Phase2Heuristic;
    use crate::phase2::enumerate_topologies;
    use seco_query::builder::running_example;
    use seco_query::feasibility::analyze;
    use seco_services::domains::entertainment;

    fn parallel_topology() -> (QueryPlan, seco_services::ServiceRegistry) {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let report = analyze(&q, &reg).unwrap();
        let plans =
            enumerate_topologies(&q, &reg, &report, Phase2Heuristic::ParallelIsBetter, 64).unwrap();
        let plan = plans
            .into_iter()
            .find(|p| {
                p.node_ids()
                    .any(|id| matches!(p.node(id), Ok(PlanNode::ParallelJoin(_))))
            })
            .unwrap();
        (plan, reg)
    }

    #[test]
    fn fetches_grow_until_k_is_reached() {
        let (mut plan, reg) = parallel_topology();
        let ann = assign_fetches(
            &mut plan,
            &reg,
            5,
            Phase3Heuristic::SquareIsBetter,
            CostMetric::RequestCount,
        )
        .unwrap();
        assert!(ann.output_tuples >= 5.0);
        // Some factor must have grown beyond the initial 1 to get there.
        let grew = plan
            .node_ids()
            .any(|id| matches!(plan.node(id), Ok(PlanNode::Service(s)) if s.fetches > 1));
        assert!(grew);
    }

    #[test]
    fn trivial_k_keeps_all_factors_at_one() {
        let (mut plan, reg) = parallel_topology();
        // k=1 is reachable at F=⟨1,…,1⟩ for this plan? Check the
        // estimate first; if ⟨1⟩ suffices the factors must stay 1.
        let ann = assign_fetches(
            &mut plan,
            &reg,
            1,
            Phase3Heuristic::Greedy,
            CostMetric::RequestCount,
        );
        if let Ok(ann) = ann {
            if ann.output_tuples >= 1.0 {
                let at_one = plan
                    .node_ids()
                    .filter_map(|id| match plan.node(id) {
                        Ok(PlanNode::Service(s)) => Some(s.fetches),
                        _ => None,
                    })
                    .all(|f| f <= 2);
                assert!(at_one, "k=1 should need minimal fetching");
            }
        }
    }

    #[test]
    fn greedy_and_square_both_reach_k() {
        for h in [Phase3Heuristic::Greedy, Phase3Heuristic::SquareIsBetter] {
            let (mut plan, reg) = parallel_topology();
            let ann = assign_fetches(&mut plan, &reg, 8, h, CostMetric::RequestCount).unwrap();
            assert!(ann.output_tuples >= 8.0, "{h} must reach k=8");
        }
    }

    #[test]
    fn unreachable_k_errors_with_best_estimate() {
        let (mut plan, reg) = parallel_topology();
        // The services cannot produce thousands of combinations.
        let err = assign_fetches(
            &mut plan,
            &reg,
            1_000_000,
            Phase3Heuristic::SquareIsBetter,
            CostMetric::RequestCount,
        )
        .unwrap_err();
        match err {
            OptError::Unreachable { best_estimate, k } => {
                assert_eq!(k, 1_000_000);
                assert!(best_estimate < 1_000_000.0);
                assert!(best_estimate > 0.0);
            }
            other => panic!("expected Unreachable, got {other}"),
        }
    }

    #[test]
    fn square_is_better_balances_explored_tuples() {
        let (mut plan, reg) = parallel_topology();
        assign_fetches(
            &mut plan,
            &reg,
            10,
            Phase3Heuristic::SquareIsBetter,
            CostMetric::RequestCount,
        )
        .unwrap();
        // Movie chunks are 20-wide, Theatre 5-wide: balancing explored
        // tuples means Theatre gets more fetches than Movie, not fewer.
        let f = |atom: &str| {
            let id = plan.service_node_of(atom).unwrap();
            match plan.node(id) {
                Ok(PlanNode::Service(s)) => s.fetches,
                _ => 0,
            }
        };
        assert!(f("T") >= f("M"), "theatre F={} movie F={}", f("T"), f("M"));
    }
}
