//! The deterministic (virtual-time) plan executor.
//!
//! Executes a fully instantiated plan node by node in topological
//! order, materializing each node's output composites:
//!
//! * **service nodes** run as pipe-join stages ([`seco_join::pipe`]),
//!   fetching `F` chunks per input composite (the node's fetch factor)
//!   and filtering incrementally under the repeating-group semantics;
//! * **selection nodes** filter with their own predicates;
//! * **parallel joins** run the tile-space executor of
//!   [`seco_join::executor`] over the two branch materializations,
//!   preserving the strategy's emission order;
//! * the **output node** collects the final combinations.
//!
//! Time is accounted on the virtual clock: each node's busy time is its
//! calls × the service's response time; the plan's critical-path time
//! is computed over the DAG exactly like the execution-time cost
//! metric, so measured and estimated times are directly comparable
//! (E8/E14).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use seco_join::{score_order, ColumnarOptions, JoinStats, NaryJoin, NaryStage, PipeJoin, RankJoin};
use seco_model::{BitMask, Column, CompositeTuple};
use seco_optimizer::Optimizer;
use seco_plan::{annotate, AnnotatedPlan, AnnotationConfig, NodeId, PlanNode, QueryPlan};
use seco_query::feasibility::analyze;
use seco_query::predicate::{
    resolve_predicates, satisfies_available, ResolvedPredicate, SchemaMap,
};
use seco_query::CompiledPredicates;
use seco_services::{drift_ratio, DeviationPolicy, Prefetcher, Service, ServiceRegistry};

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::shared::SharedState;
use crate::trace::{ExecutionTrace, TraceEvent};

/// What to do when a service fails past the resilience middleware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureMode {
    /// Abort the execution with the error (historical behaviour).
    #[default]
    Abort,
    /// Degrade gracefully: the failing branch contributes whatever it
    /// produced before failing, the failed services are listed on the
    /// result, and execution continues.
    Degrade,
}

/// Fetch-layer options: the sharded response cache, request
/// coalescing, and speculative chunk prefetch
/// ([`seco_services::cache`], [`seco_services::prefetch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOptions {
    /// Shards of the per-service response cache; 0 leaves the cache
    /// off (unless `prefetch` forces it on at the default width).
    pub cache_shards: usize,
    /// Maximum cached responses per service, across all shards.
    pub cache_capacity: usize,
    /// Speculatively warm chunk `c + 1` while the join consumes chunk
    /// `c`, within each node's optimizer-assigned fetch budget.
    pub prefetch: bool,
}

impl Default for FetchOptions {
    fn default() -> Self {
        FetchOptions {
            cache_shards: 0,
            cache_capacity: 4096,
            prefetch: false,
        }
    }
}

impl FetchOptions {
    /// A cache of `shards` shards at the default capacity.
    pub fn cached(shards: usize) -> Self {
        FetchOptions {
            cache_shards: shards,
            ..Default::default()
        }
    }

    /// Enables speculative chunk prefetch.
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// `(shards, capacity)` when the cache is on. Prefetch without an
    /// explicit shard count turns the cache on at the default width —
    /// speculation needs somewhere to land its responses.
    pub fn cache(&self) -> Option<(usize, usize)> {
        if self.cache_shards > 0 {
            Some((self.cache_shards, self.cache_capacity))
        } else if self.prefetch {
            Some((seco_services::cache::DEFAULT_SHARDS, self.cache_capacity))
        } else {
            None
        }
    }

    /// True when any part of the fetch layer is active.
    pub fn enabled(&self) -> bool {
        self.cache().is_some()
    }
}

/// The outcome of executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// Final combinations, in emission order.
    pub results: Vec<CompositeTuple>,
    /// Per-node trace.
    pub trace: ExecutionTrace,
    /// Critical-path elapsed time over the DAG, in virtual ms.
    pub critical_ms: f64,
    /// Total request-responses issued.
    pub total_calls: usize,
    /// Services whose failures degraded the answer (sorted, deduplicated;
    /// empty on a clean run). Only populated under
    /// [`FailureMode::Degrade`].
    pub degraded: Vec<String>,
    /// Join-kernel counters aggregated over every pipe stage and
    /// parallel join of the plan.
    pub join_stats: JoinStats,
    /// The plan execution finished on, when adaptive re-optimization
    /// swapped it mid-flight (`None` on a non-adaptive run or when no
    /// checkpoint deviated).
    pub replanned: Option<QueryPlan>,
    /// Number of mid-flight re-plans taken.
    pub replans: usize,
}

impl ExecutionResult {
    /// True when some branch failed and the results are partial.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }
}

/// Memoized outcome of an already-executed service stage, carried
/// across adaptive restarts. Suffix re-planning pins the executed
/// services (same interface, same fetch factors, same upstream
/// structure), so on a restart the stage's recorded outcome is replayed
/// instead of re-invoking the service: calls, busy time, and the
/// virtual clock all account each invocation exactly once.
struct StageMemo {
    service: String,
    outputs: Vec<CompositeTuple>,
    calls: usize,
    busy_ms: f64,
    failed: bool,
}

/// One pass over a plan: a completed execution, or a request to restart
/// on a re-planned suffix.
enum PassOutcome {
    Done(ExecutionResult),
    Replan(QueryPlan),
}

/// Executes a plan against the registry.
///
/// With [`EngineConfig::adaptive`] on, every fresh service stage and
/// parallel join doubles as a checkpoint: when its observed output
/// cardinality deviates from the plan-time estimate by at least
/// [`EngineConfig::adaptive_threshold`], the observed statistics are
/// promoted into the registry and the unexecuted suffix is re-planned
/// ([`Optimizer::replan_suffix`]); execution restarts on the new plan,
/// replaying the executed stages from memo. Each checkpoint fires at
/// most once, so the number of restarts is bounded by the number of
/// plan stages. With adaptive off the run is byte-identical to the
/// non-adaptive engine.
pub fn execute_plan(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    options: EngineConfig,
) -> Result<ExecutionResult, EngineError> {
    execute_plan_impl(plan, registry, options, None)
}

/// [`execute_plan`] against long-lived [`SharedState`]: the per-service
/// fetch stacks (response caches, circuit breakers) and the virtual
/// clock come from — and persist in — `shared`, so repeated executions
/// hit warm caches and accumulated breaker state instead of cold ones.
/// This is the daemon entry point; results are identical to the
/// one-shot path (caches return the responses the services would).
pub fn execute_plan_shared(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    options: EngineConfig,
    shared: &SharedState,
) -> Result<ExecutionResult, EngineError> {
    execute_plan_impl(plan, registry, options, Some(shared))
}

fn execute_plan_impl(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    options: EngineConfig,
    shared: Option<&SharedState>,
) -> Result<ExecutionResult, EngineError> {
    let mut memo: BTreeMap<String, StageMemo> = BTreeMap::new();
    let mut checked: BTreeSet<String> = BTreeSet::new();
    let mut current: Option<QueryPlan> = None;
    let mut replans = 0usize;
    loop {
        let active = current.as_ref().unwrap_or(plan);
        match run_pass(active, registry, options, &mut memo, &mut checked, shared)? {
            PassOutcome::Done(mut result) => {
                result.replanned = current;
                result.replans = replans;
                return Ok(result);
            }
            PassOutcome::Replan(next) => {
                replans += 1;
                current = Some(next);
            }
        }
    }
}

/// Promotes observed deviations into the registry and re-plans the
/// unexecuted suffix. `trigger` is the deviating checkpoint's
/// `(estimated, observed)` cardinality pair — it opens the re-planner's
/// deviation gate even when the executed services' own cardinalities
/// are on target (e.g. a join whose selectivity was wrong). Returns
/// `None` when the re-plan itself fails: adaptivity is best-effort and
/// must never abort a viable execution.
fn attempt_replan(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    options: &EngineConfig,
    estimates: &AnnotatedPlan,
    memo: &BTreeMap<String, StageMemo>,
    trigger: (f64, f64),
) -> Option<seco_optimizer::Optimized> {
    let policy = DeviationPolicy {
        threshold: options.adaptive_threshold,
        min_samples: 1,
    };
    registry.promote_deviations(&policy);
    let executed: BTreeSet<String> = memo.keys().cloned().collect();
    let mut observed: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for alias in &executed {
        if let Some(id) = plan.service_node_of(alias) {
            observed.insert(
                alias.clone(),
                (
                    estimates.annotation(id).tout,
                    memo[alias].outputs.len() as f64,
                ),
            );
        }
    }
    observed.insert("(checkpoint)".to_owned(), trigger);
    let mut opt = Optimizer::new(registry, options.adaptive_metric);
    opt.replan_threshold = options.adaptive_threshold;
    opt.replan_suffix(plan, &executed, &observed).ok()
}

/// Runs one execution pass of `plan` (see [`execute_plan`]).
fn run_pass(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    options: EngineConfig,
    memo: &mut BTreeMap<String, StageMemo>,
    checked: &mut BTreeSet<String>,
    shared: Option<&SharedState>,
) -> Result<PassOutcome, EngineError> {
    plan.validate()?;
    let report = analyze(&plan.query, registry)?;
    let joins = plan.query.expanded_joins(registry)?;
    let predicates = resolve_predicates(&plan.query, &joins)?;
    let mut schemas: SchemaMap<'_> = BTreeMap::new();
    for atom in &plan.query.atoms {
        schemas.insert(
            atom.alias.clone(),
            &registry.interface(&atom.service)?.schema,
        );
    }

    let order = plan.topo_order()?;
    let mut outputs: Vec<Vec<CompositeTuple>> = vec![Vec::new(); plan.len()];
    let mut busy: Vec<f64> = vec![0.0; plan.len()];
    let mut trace = ExecutionTrace::default();
    let mut total_calls = 0usize;
    let mut join_stats = JoinStats::default();

    let degrade = options.failure_mode == FailureMode::Degrade;
    // One fetch stack per service, shared across plan nodes: the
    // resilient client (when configured) under the sharded response
    // cache, so the circuit breaker and the memoized responses both
    // accumulate over the whole execution. The clock is shared too:
    // backoff pauses and abandoned-call deadlines count toward the same
    // virtual timeline as the calls themselves. Without caller-provided
    // shared state the stacks live for this pass only (the historical
    // one-shot behaviour); a daemon passes its own `SharedState` so
    // caches and breakers persist across requests.
    let local_state;
    let state = match shared {
        Some(s) => s,
        None => {
            local_state = SharedState::new();
            &local_state
        }
    };
    let clock = state.clock().clone();
    // Morsel pool for the join kernels: with `exec_workers > 1` reuse
    // the daemon's shared pool (same worker budget for every session)
    // or spin up a pass-local one; the ordered reducer keeps output
    // byte-identical to serial either way. `exec_workers == 1` passes
    // no pool at all — the kernels take their exact serial code path.
    let exec_pool: Option<Arc<seco_exec::ExecPool>> = if options.exec_workers > 1 {
        Some(match state.exec_pool() {
            Some(p) => p.clone(),
            None => Arc::new(seco_exec::ExecPool::new(options.exec_workers)),
        })
    } else {
        None
    };
    let cache_cfg = options.fetch.cache();
    let mut degraded: BTreeSet<String> = BTreeSet::new();
    // Whether each node's output is already partial (some upstream
    // branch lost tuples to a failure).
    let mut node_degraded: Vec<bool> = vec![false; plan.len()];

    // Left-deep chains of parallel joins the n-ary kernel can fuse.
    // Rank join takes precedence: its score-sorted top-k inputs are
    // incompatible with replaying the cascade's exploration.
    let (nary_elided, nary_chains) = if options.nary_join && !options.rank_join {
        fusion_chains(plan)?
    } else {
        (vec![false; plan.len()], BTreeMap::new())
    };

    // Plan-time cardinality estimates, for the adaptive checkpoints.
    let mut estimates: Option<AnnotatedPlan> = if options.adaptive {
        Some(annotate(plan, registry, &AnnotationConfig::default())?)
    } else {
        None
    };

    for id in order.iter().copied() {
        let preds_nodes = plan.predecessors(id);
        let (tuples_in, out, calls, busy_ms, deg): (usize, Vec<CompositeTuple>, usize, f64, bool) =
            match plan.node(id)? {
                PlanNode::Input => {
                    // The user's single input tuple (§3.2).
                    (
                        0,
                        vec![CompositeTuple {
                            atoms: Vec::new(),
                            components: Vec::new(),
                        }],
                        0,
                        0.0,
                        false,
                    )
                }
                PlanNode::Output => {
                    let input = outputs[preds_nodes[0].0].clone();
                    let deg = node_degraded[preds_nodes[0].0];
                    (input.len(), input, 0, 0.0, deg)
                }
                PlanNode::Selection(sel) => {
                    let input = outputs[preds_nodes[0].0].clone();
                    let n_in = input.len();
                    let node_preds = resolve_selection_node(sel, &plan.query)?;
                    let kept = run_selection(
                        &node_preds,
                        input,
                        &schemas,
                        options.columnar,
                        &mut join_stats,
                    )?;
                    (n_in, kept, 0, 0.0, node_degraded[preds_nodes[0].0])
                }
                PlanNode::Service(node)
                    if memo
                        .get(&node.atom)
                        .is_some_and(|m| m.service == node.service) =>
                {
                    // Already executed before an adaptive restart: the
                    // re-planner pinned this stage (same service, same
                    // fetches, same upstream structure), so replay its
                    // recorded outcome instead of re-invoking.
                    let n_in = outputs[preds_nodes[0].0].len();
                    let m = &memo[&node.atom];
                    if m.failed {
                        degraded.insert(node.service.clone());
                    }
                    let deg = node_degraded[preds_nodes[0].0] || m.failed;
                    (n_in, m.outputs.clone(), m.calls, m.busy_ms, deg)
                }
                PlanNode::Service(node) => {
                    let input = outputs[preds_nodes[0].0].clone();
                    let n_in = input.len();
                    let iface = registry.interface(&node.service)?;
                    let bindings = report.bindings_of(&node.atom);
                    let stage = PipeJoin {
                        atom: &node.atom,
                        bindings: &bindings,
                        query_inputs: &plan.query.inputs,
                        predicates: &predicates,
                        schemas: &schemas,
                        fetches: node.fetches as usize,
                        keep_first: node.keep_first,
                        tolerate_failures: degrade,
                        columnar: options.columnar,
                    };
                    let recorded = registry.service(&node.service)?;
                    let (base, client, cache) =
                        state.stack_for(&node.service, &recorded, &options, false);
                    // Inline speculation: the prefetch runs on this
                    // thread, so the virtual timeline and the fault
                    // schedule stay a pure function of the seed.
                    // Never speculate past a keep-first stage: it stops
                    // at the first satisfying tuple, so chunk `c + 1`
                    // would be warmed for a join that may never ask.
                    let handle: Arc<dyn Service> =
                        if options.fetch.prefetch && node.fetches > 1 && !node.keep_first {
                            let mut pf = Prefetcher::new(base, node.fetches as usize)
                                .with_recorder(recorded.clone());
                            if let Some(c) = &client {
                                pf = pf.respecting_breaker(c.clone());
                            }
                            if let Some(c) = &cache {
                                pf = pf.probing(c.clone());
                            }
                            Arc::new(pf)
                        } else {
                            base
                        };
                    let clock_before = clock.now_ms();
                    let busy_before = recorded.stats().busy_ms;
                    let outcome = stage.run(&input, handle.as_ref())?;
                    let busy_ms = if options.client.is_some() {
                        // Busy time is the clock delta: calls plus
                        // retries, backoff pauses, and abandoned calls
                        // clipped at the deadline.
                        clock.now_ms() - clock_before
                    } else if cache_cfg.is_some() {
                        // Cache without a client: no clock runs, so
                        // charge the recorder's underlying-call time
                        // (hits and coalesced waits are free).
                        recorded.stats().busy_ms - busy_before
                    } else {
                        outcome.calls as f64 * iface.stats.response_time_ms
                    };
                    join_stats.merge(&outcome.stats);
                    recorded.note_join_counters(
                        outcome.stats.index_builds,
                        outcome.stats.probes,
                        outcome.stats.pairs_skipped,
                        outcome.stats.tiles_pruned,
                        outcome.stats.predicate_evals,
                        outcome.stats.columns_scanned,
                        outcome.stats.batch_evals,
                        outcome.stats.rows_materialized,
                        outcome.stats.chunks_fetched,
                        outcome.stats.chunks_saved,
                        outcome.stats.bound_checks,
                        outcome.stats.intermediates_elided,
                    );
                    let mut deg = node_degraded[preds_nodes[0].0];
                    if outcome.degraded {
                        degraded.insert(node.service.clone());
                        deg = true;
                    }
                    if options.adaptive {
                        memo.insert(
                            node.atom.clone(),
                            StageMemo {
                                service: node.service.clone(),
                                outputs: outcome.results.clone(),
                                calls: outcome.calls,
                                busy_ms,
                                failed: outcome.degraded,
                            },
                        );
                    }
                    (n_in, outcome.results, outcome.calls, busy_ms, deg)
                }
                PlanNode::ParallelJoin(spec) if nary_elided[id.0] => {
                    // Absorbed into a downstream n-ary fusion: the
                    // chain's top join consumes this node's inputs
                    // directly. The label `spec` stays unused here.
                    let _ = spec;
                    let deg = node_degraded[preds_nodes[0].0] || node_degraded[preds_nodes[1].0];
                    (0, Vec::new(), 0, 0.0, deg)
                }
                PlanNode::ParallelJoin(_) if nary_chains.contains_key(&id.0) => {
                    let chain = &nary_chains[&id.0];
                    // Feeder nodes: the bottom join's two inputs, then
                    // every later join's right input, in join order.
                    let fp = plan.predecessors(chain[0]);
                    let mut group_nodes = vec![fp[0], fp[1]];
                    for j in chain.iter().skip(1) {
                        group_nodes.push(plan.predecessors(*j)[1]);
                    }
                    let groups: Vec<Vec<CompositeTuple>> =
                        group_nodes.iter().map(|g| outputs[g.0].clone()).collect();
                    let any_deg = group_nodes.iter().any(|g| node_degraded[g.0]);
                    let n_in = groups.iter().map(Vec::len).sum();
                    // Per-stage parameters, identical to what each
                    // unfused join would have used.
                    let mut params = Vec::with_capacity(chain.len());
                    for j in chain {
                        let jp = plan.predecessors(*j);
                        let PlanNode::ParallelJoin(js) = plan.node(*j)? else {
                            unreachable!("fusion chains hold join nodes only");
                        };
                        let preds_j: Vec<ResolvedPredicate> = js
                            .predicates
                            .iter()
                            .cloned()
                            .map(ResolvedPredicate::Join)
                            .collect();
                        params.push((
                            preds_j,
                            js.invocation,
                            js.completion,
                            branch_step_chunks(plan, registry, jp[0]),
                            branch_chunk_size(plan, registry, jp[0]),
                            branch_chunk_size(plan, registry, jp[1]),
                        ));
                    }
                    // Degraded inputs keep the cascade's per-stage
                    // pass-through semantics; the kernel only fuses
                    // clean runs.
                    let fused = if any_deg {
                        None
                    } else {
                        let stages: Vec<NaryStage<'_>> = params
                            .iter()
                            .map(|(p, inv, comp, h, lc, rc)| NaryStage {
                                predicates: p,
                                invocation: *inv,
                                completion: *comp,
                                h: *h,
                                k: options.join_k,
                                left_chunk: *lc,
                                right_chunk: *rc,
                            })
                            .collect();
                        let nj = NaryJoin {
                            schemas: &schemas,
                            tile_prune: options.join_index.tile_prune,
                            pool: exec_pool.clone(),
                        };
                        nj.run(&groups, &stages)?
                    };
                    match fused {
                        Some(out) => {
                            join_stats.merge(&out.stats);
                            (n_in, out.results, 0, 0.0, false)
                        }
                        None => {
                            // Ineligible plan: run the byte-identical
                            // binary cascade the fusion replaced.
                            let mut cur = groups[0].clone();
                            let mut cur_deg = node_degraded[group_nodes[0].0];
                            for (gi, (p, inv, comp, h, lc, rc)) in params.iter().enumerate() {
                                let right = groups[gi + 1].clone();
                                let right_deg = node_degraded[group_nodes[gi + 1].0];
                                let exec = seco_join::ParallelJoinExecutor {
                                    predicates: p,
                                    schemas: &schemas,
                                    invocation: *inv,
                                    completion: *comp,
                                    h: *h,
                                    k: options.join_k,
                                    options: options.join_index,
                                    columnar: options.columnar,
                                    pool: exec_pool.clone(),
                                };
                                let mut sl = seco_join::executor::MemoryStream::new(cur, *lc);
                                let mut sr = seco_join::executor::MemoryStream::new(right, *rc);
                                let outcome = if degrade {
                                    exec.run_with_degradation(&mut sl, &mut sr, cur_deg, right_deg)?
                                } else {
                                    exec.run(&mut sl, &mut sr)?
                                };
                                join_stats.merge(&outcome.stats);
                                cur = outcome.results;
                                cur_deg = cur_deg || right_deg;
                            }
                            (n_in, cur, 0, 0.0, cur_deg)
                        }
                    }
                }
                PlanNode::ParallelJoin(spec) => {
                    let left = outputs[preds_nodes[0].0].clone();
                    let right = outputs[preds_nodes[1].0].clone();
                    let left_deg = node_degraded[preds_nodes[0].0];
                    let right_deg = node_degraded[preds_nodes[1].0];
                    let n_in = left.len() + right.len();
                    let candidate_pairs = (left.len() * right.len()) as u64;
                    // Chunk the branch materializations at the chunk
                    // size of their source service when identifiable.
                    let cl = branch_chunk_size(plan, registry, preds_nodes[0]);
                    let cr = branch_chunk_size(plan, registry, preds_nodes[1]);
                    let h = branch_step_chunks(plan, registry, preds_nodes[0]);
                    let join_predicates: Vec<ResolvedPredicate> = spec
                        .predicates
                        .iter()
                        .cloned()
                        .map(ResolvedPredicate::Join)
                        .collect();
                    let exec = seco_join::ParallelJoinExecutor {
                        predicates: &join_predicates,
                        schemas: &schemas,
                        invocation: spec.invocation,
                        completion: spec.completion,
                        h,
                        k: options.join_k,
                        options: options.join_index,
                        columnar: options.columnar,
                        pool: exec_pool.clone(),
                    };
                    let rank = options.rank_join
                        && options.join_k > 0
                        && !(degrade && (left_deg || right_deg));
                    let outcome = if rank {
                        // Rank join needs score-sorted streams; branch
                        // materializations arrive in emission order.
                        let mut left = left;
                        let mut right = right;
                        left.sort_by(score_order);
                        right.sort_by(score_order);
                        let mut sl = seco_join::executor::MemoryStream::new(left, cl);
                        let mut sr = seco_join::executor::MemoryStream::new(right, cr);
                        RankJoin {
                            join: exec,
                            space: None,
                        }
                        .run(&mut sl, &mut sr)?
                    } else {
                        let mut sl = seco_join::executor::MemoryStream::new(left, cl);
                        let mut sr = seco_join::executor::MemoryStream::new(right, cr);
                        if degrade {
                            exec.run_with_degradation(&mut sl, &mut sr, left_deg, right_deg)?
                        } else {
                            exec.run(&mut sl, &mut sr)?
                        }
                    };
                    join_stats.merge(&outcome.stats);
                    note_parallel_join(
                        plan,
                        registry,
                        id,
                        candidate_pairs,
                        outcome.results.len() as u64,
                    );
                    (n_in, outcome.results, 0, 0.0, left_deg || right_deg)
                }
            };
        total_calls += calls;
        busy[id.0] = busy_ms;
        node_degraded[id.0] = deg;
        trace.record(TraceEvent {
            node: id,
            label: plan.node(id)?.label(),
            tuples_in,
            tuples_out: out.len(),
            calls,
            busy_ms,
        });
        outputs[id.0] = out;

        // Adaptive checkpoint: fresh service stages and parallel joins
        // compare their observed output cardinality against the
        // plan-time estimate. Each checkpoint fires at most once across
        // restarts, and only while some atom is still unexecuted — a
        // fully executed plan has nothing left to re-plan.
        if let Some(est) = &estimates {
            let stage_key = match plan.node(id)? {
                PlanNode::Service(s) => Some(format!("svc:{}", s.atom)),
                PlanNode::ParallelJoin(_) if !nary_elided[id.0] => {
                    let atoms: Vec<String> = plan.atoms_at(id).into_iter().collect();
                    Some(format!("join:{}", atoms.join(",")))
                }
                _ => None,
            };
            if let Some(key) = stage_key {
                if checked.insert(key) && memo.len() < plan.query.atoms.len() {
                    let est_out = est.annotation(id).tout;
                    let obs = outputs[id.0].len() as f64;
                    if drift_ratio(obs, est_out) >= options.adaptive_threshold {
                        if let Some(re) =
                            attempt_replan(plan, registry, &options, est, memo, (est_out, obs))
                        {
                            if re.plan != *plan {
                                if let Some(svc) = trigger_service(plan, id) {
                                    if let Ok(rec) = registry.service(&svc) {
                                        rec.note_replan();
                                    }
                                }
                                return Ok(PassOutcome::Replan(re.plan));
                            }
                            // Same plan under the promoted statistics:
                            // later checkpoints compare against the
                            // refreshed estimates.
                            estimates = Some(re.annotated);
                        }
                    }
                }
            }
        }
    }

    // Critical path over the DAG with the measured busy times.
    let mut finish = vec![0.0f64; plan.len()];
    for id in order {
        let start = plan
            .predecessors(id)
            .iter()
            .map(|p| finish[p.0])
            .fold(0.0f64, f64::max);
        finish[id.0] = start + busy[id.0];
    }

    Ok(PassOutcome::Done(ExecutionResult {
        results: outputs[plan.output().0].clone(),
        trace,
        critical_ms: finish[plan.output().0],
        total_calls,
        degraded: degraded.into_iter().collect(),
        join_stats,
        replanned: None,
        replans: 0,
    }))
}

/// Feeds the observed selectivity of a parallel join back to the
/// registry: every query pattern connecting the two input branches is
/// credited with `pairs` candidate pairs and `matches` survivors.
pub(crate) fn note_parallel_join(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    id: NodeId,
    pairs: u64,
    matches: u64,
) {
    let preds = plan.predecessors(id);
    if preds.len() != 2 {
        return;
    }
    let left = plan.atoms_at(preds[0]);
    let right = plan.atoms_at(preds[1]);
    for p in &plan.query.patterns {
        let lr = left.contains(&p.from_atom) && right.contains(&p.to_atom);
        let rl = right.contains(&p.from_atom) && left.contains(&p.to_atom);
        if lr || rl {
            registry.note_join_observation(&p.pattern, pairs, matches);
        }
    }
}

/// The service a checkpoint's re-plan is attributed to: the stage's own
/// service, or for a join the lexicographically-first service among its
/// input atoms.
fn trigger_service(plan: &QueryPlan, id: NodeId) -> Option<String> {
    match plan.node(id) {
        Ok(PlanNode::Service(s)) => Some(s.service.clone()),
        Ok(PlanNode::ParallelJoin(_)) => plan
            .atoms_at(id)
            .iter()
            .filter_map(|alias| {
                plan.query
                    .atoms
                    .iter()
                    .find(|a| &a.alias == alias)
                    .map(|a| a.service.clone())
            })
            .min(),
        _ => None,
    }
}

/// Resolves a selection node's predicates against the query inputs.
pub(crate) fn resolve_selection_node(
    sel: &seco_plan::SelectionNode,
    query: &seco_query::Query,
) -> Result<Vec<ResolvedPredicate>, EngineError> {
    let mut out = Vec::with_capacity(sel.predicates.len() + sel.join_predicates.len());
    for p in &sel.predicates {
        out.push(ResolvedPredicate::Selection {
            left: p.left.clone(),
            op: p.op,
            value: p.right.resolve(&query.inputs).map_err(EngineError::Query)?,
        });
    }
    for j in &sel.join_predicates {
        out.push(ResolvedPredicate::Join(j.clone()));
    }
    Ok(out)
}

/// Applies a selection node's predicates to its input composites.
///
/// With `batch_eval` on, a uniform input (same atom signature on every
/// composite) is filtered by one vectorized kernel over columns
/// gathered from the composites; any failed precondition — or a value
/// only the scalar path can decide — falls back to the interpreted
/// per-composite check, which also reproduces its error behavior.
/// Selection nodes never counted `predicate_evals` (the pipe stages
/// already charged the predicates), so the kernel only moves the
/// columnar counters.
pub(crate) fn run_selection(
    preds: &[ResolvedPredicate],
    input: Vec<CompositeTuple>,
    schemas: &SchemaMap<'_>,
    columnar: ColumnarOptions,
    stats: &mut JoinStats,
) -> Result<Vec<CompositeTuple>, EngineError> {
    if columnar.batch_eval && input.len() > 1 {
        let uniform = input.iter().all(|c| c.atoms == input[0].atoms);
        if uniform {
            if let Some(plan) = CompiledPredicates::compile(preds, schemas)
                .and_then(|c| c.batch_plan(&[], &input[0].atoms))
            {
                if let Some(cols) = plan.gather_columns(&input) {
                    let refs: Vec<_> = cols.iter().map(Column::as_ref).collect();
                    let mut mask = BitMask::default();
                    mask.reset_ones(input.len());
                    if plan.eval_mask(None, &refs, &mut mask) {
                        stats.batch_evals += 1;
                        stats.columns_scanned += refs.len() as u64;
                        return Ok(input
                            .into_iter()
                            .enumerate()
                            .filter_map(|(i, c)| mask.get(i).then_some(c))
                            .collect());
                    }
                }
            }
        }
    }
    let mut kept = Vec::new();
    for c in input {
        if satisfies_available(preds, &c, schemas)? {
            kept.push(c);
        }
    }
    Ok(kept)
}

/// Finds the left-deep chains of parallel joins eligible for n-ary
/// fusion. A join is *absorbable* when its only consumer is another
/// parallel join taking it as the **left** input — then the chain's top
/// join can replay every stage in one pass. Returns per-node elision
/// flags and, for each chain top, the chain's join nodes bottom-up
/// (top included).
#[allow(clippy::type_complexity)]
pub(crate) fn fusion_chains(
    plan: &QueryPlan,
) -> Result<(Vec<bool>, BTreeMap<usize, Vec<NodeId>>), EngineError> {
    let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); plan.len()];
    for (from, to) in plan.edges() {
        succs[from.0].push(*to);
    }
    let is_join = |id: NodeId| matches!(plan.node(id), Ok(PlanNode::ParallelJoin(_)));
    let absorbable = |id: NodeId| {
        is_join(id)
            && succs[id.0].len() == 1
            && is_join(succs[id.0][0])
            && plan.predecessors(succs[id.0][0]).first() == Some(&id)
    };
    let mut elided = vec![false; plan.len()];
    let mut chains: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for id in plan.topo_order()? {
        if !is_join(id) || absorbable(id) {
            continue;
        }
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(&l) = plan.predecessors(cur).first() {
            if !absorbable(l) {
                break;
            }
            chain.push(l);
            cur = l;
        }
        if chain.len() >= 2 {
            chain.reverse();
            for j in &chain[..chain.len() - 1] {
                elided[j.0] = true;
            }
            chains.insert(id.0, chain);
        }
    }
    Ok((elided, chains))
}

/// Chunk size for re-chunking a branch: the chunk size of the nearest
/// service node upstream, defaulting to 10.
fn branch_chunk_size(plan: &QueryPlan, registry: &ServiceRegistry, from: NodeId) -> usize {
    let mut cursor = Some(from);
    while let Some(id) = cursor {
        if let Ok(PlanNode::Service(node)) = plan.node(id) {
            if let Ok(iface) = registry.interface(&node.service) {
                return iface.stats.chunk_size;
            }
        }
        cursor = plan.predecessors(id).first().copied();
    }
    10
}

/// Step parameter (chunks) of the nearest upstream service of a branch,
/// for nested-loop joins; 1 when the branch is not step-scored.
fn branch_step_chunks(plan: &QueryPlan, registry: &ServiceRegistry, from: NodeId) -> usize {
    let mut cursor = Some(from);
    while let Some(id) = cursor {
        if let Ok(PlanNode::Service(node)) = plan.node(id) {
            if let Ok(iface) = registry.interface(&node.service) {
                return iface.decay.step_chunks().unwrap_or(1);
            }
        }
        cursor = plan.predecessors(id).first().copied();
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_optimizer::{optimize, CostMetric};
    use seco_query::builder::running_example;
    use seco_query::evaluate_oracle;
    use seco_services::domains::entertainment;
    use seco_services::ClientConfig;

    #[test]
    fn executes_the_optimized_running_example() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        reg.reset_stats();
        let result = execute_plan(&best.plan, &reg, EngineConfig::default()).unwrap();
        assert!(result.total_calls > 0);
        assert!(result.critical_ms > 0.0);
        // Every emitted combination carries all three atoms.
        for c in &result.results {
            assert_eq!(c.arity(), 3);
        }
        // Trace covers every node.
        assert_eq!(result.trace.events.len(), best.plan.len());
        // The registry recorders agree with the engine's count.
        assert_eq!(reg.total_stats().calls as usize, result.total_calls);
    }

    #[test]
    fn adaptive_with_accurate_statistics_changes_nothing() {
        // When the declared statistics are right, no checkpoint
        // deviates: the adaptive run must replay the non-adaptive run
        // exactly — results, trace, virtual time, and call counts.
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        let baseline = execute_plan(&best.plan, &reg, EngineConfig::default()).unwrap();
        reg.reset_stats();
        reg.reset_observed();
        let adaptive =
            execute_plan(&best.plan, &reg, EngineConfig::default().adaptive(true)).unwrap();
        assert_eq!(adaptive.results, baseline.results);
        assert_eq!(adaptive.critical_ms, baseline.critical_ms);
        assert_eq!(adaptive.total_calls, baseline.total_calls);
        assert_eq!(adaptive.replans, 0);
        assert!(adaptive.replanned.is_none());
    }

    #[test]
    fn engine_results_are_a_subset_of_the_oracle() {
        // E16: soundness — everything the engine emits is a genuine
        // query answer.
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let oracle = evaluate_oracle(&q, &reg).unwrap();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        let result = execute_plan(&best.plan, &reg, EngineConfig::default()).unwrap();
        for c in &result.results {
            let found = oracle.iter().any(|o| {
                q.atoms
                    .iter()
                    .all(|a| o.component(&a.alias) == c.component(&a.alias))
            });
            assert!(
                found,
                "engine emitted a combination the oracle does not contain: {c}"
            );
        }
    }

    #[test]
    fn selection_nodes_filter() {
        use seco_model::{Comparator, Value};
        use seco_plan::{PlanNode, QueryPlan, SelectionNode, ServiceNode};
        use seco_query::QueryBuilder;
        let reg = seco_services::domains::travel::build_registry(5).unwrap();
        let q = QueryBuilder::new()
            .atom("C", "Conference1")
            .atom("W", "Weather1")
            .pattern("Forecast", "C", "W")
            .select_const("C", "Topic", Comparator::Eq, Value::text("databases"))
            .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(26))
            .build()
            .unwrap();
        let mut p = QueryPlan::new(q.clone());
        let c = p.add(PlanNode::Service(ServiceNode::new("C", "Conference1")));
        let w = p.add(PlanNode::Service(ServiceNode::new("W", "Weather1")));
        let s = p.add(PlanNode::Selection(
            SelectionNode::new(vec![q.selections[1].clone()]).with_selectivity(0.25),
        ));
        p.connect(p.input(), c).unwrap();
        p.connect(c, w).unwrap();
        p.connect(w, s).unwrap();
        p.connect(s, p.output()).unwrap();
        let result = execute_plan(&p, &reg, EngineConfig::default()).unwrap();
        // The Weather pipe stage filters eagerly ("immediately after
        // the service call that makes the predicate evaluable", §3.2),
        // so the explicit selection node sees pre-filtered tuples and
        // is an idempotent re-check.
        let w_event = result.trace.event(w).unwrap();
        assert_eq!(w_event.tuples_in, 20, "20 conferences pipe into Weather");
        assert!(
            w_event.tuples_out < 20,
            "the temperature predicate discards many"
        );
        let sel_event = result.trace.event(s).unwrap();
        assert_eq!(sel_event.tuples_in, w_event.tuples_out);
        assert_eq!(sel_event.tuples_out, sel_event.tuples_in);
        assert_eq!(result.results.len(), sel_event.tuples_out);
        // All survivors really are warm.
        for c in &result.results {
            let w = c.component("W").unwrap();
            match w.atomic_at(2) {
                seco_model::Value::Int(t) => assert!(*t > 26),
                other => panic!("unexpected temperature {other:?}"),
            }
        }
    }

    #[test]
    fn degrade_mode_survives_a_downed_service() {
        use seco_services::synthetic::{DomainMap, SyntheticService};
        use std::sync::Arc;
        // Movie is hard down; Theatre and Restaurant are healthy.
        let mut reg = seco_services::ServiceRegistry::new();
        reg.register_service(Arc::new(
            SyntheticService::new(entertainment::movie_interface(), DomainMap::new(), 1)
                .with_failure_every(1),
        ))
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(
            entertainment::theatre_interface(),
            DomainMap::new(),
            2,
        )))
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(
            entertainment::restaurant_interface(),
            DomainMap::new(),
            3,
        )))
        .unwrap();
        reg.register_pattern(entertainment::shows_pattern())
            .unwrap();
        reg.register_pattern(entertainment::dinner_place_pattern())
            .unwrap();

        let q = running_example();
        let healthy = entertainment::build_registry(1).unwrap();
        let best = optimize(&q, &healthy, CostMetric::RequestCount).unwrap();

        // Abort (the default) still surfaces the failure as an error.
        assert!(execute_plan(&best.plan, &reg, EngineConfig::default()).is_err());

        // Degrade completes, reporting the failed service.
        let opts = EngineConfig {
            failure_mode: FailureMode::Degrade,
            ..Default::default()
        };
        let result = execute_plan(&best.plan, &reg, opts).unwrap();
        assert!(result.is_degraded());
        assert_eq!(result.degraded, vec!["Movie1".to_string()]);
    }

    #[test]
    fn resilient_client_recovers_transient_faults_and_stays_deterministic() {
        use seco_services::FaultProfile;
        // Transient-only faults: with enough retries the run must
        // produce exactly the clean run's answers.
        let faults = FaultProfile {
            seed: 77,
            transient_rate: 0.3,
            spike_rate: 0.0,
            spike_ms: 0.0,
            empty_rate: 0.0,
            outage: None,
        };
        let flaky = entertainment::build_registry_with_faults(1, faults).unwrap();
        let clean = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &clean, CostMetric::RequestCount).unwrap();
        let baseline = execute_plan(&best.plan, &clean, EngineConfig::default()).unwrap();

        let cfg = ClientConfig {
            retries: 6,
            seed: 9,
            ..Default::default()
        };
        let opts = EngineConfig {
            failure_mode: FailureMode::Degrade,
            client: Some(cfg),
            ..Default::default()
        };
        flaky.reset_stats();
        let run_a = execute_plan(&best.plan, &flaky, opts).unwrap();
        let stats_a = flaky.total_stats();
        assert_eq!(
            run_a.results, baseline.results,
            "retries must hide transient faults"
        );
        assert!(run_a.degraded.is_empty());
        assert!(
            stats_a.retries > 0,
            "the flaky profile must have triggered retries"
        );
        // Retries consume virtual time, so the resilient run is slower.
        assert!(run_a.critical_ms > baseline.critical_ms);

        // Identical seeds ⇒ identical runs, counters included.
        let flaky2 = entertainment::build_registry_with_faults(1, faults).unwrap();
        let run_b = execute_plan(&best.plan, &flaky2, opts).unwrap();
        let stats_b = flaky2.total_stats();
        assert_eq!(run_a.results, run_b.results);
        assert_eq!(run_a.critical_ms, run_b.critical_ms);
        assert_eq!(stats_a.retries, stats_b.retries);
        assert_eq!(stats_a.timeouts, stats_b.timeouts);
    }

    #[test]
    fn diamond_plans_merge_shared_ancestry() {
        use seco_model::{Comparator, Value};
        use seco_plan::{Completion, Invocation, JoinSpec, PlanNode, QueryPlan, ServiceNode};
        use seco_query::QueryBuilder;
        let reg = seco_services::domains::travel::build_registry(5).unwrap();
        let q = QueryBuilder::new()
            .atom("C", "Conference1")
            .atom("F", "Flight1")
            .atom("H", "Hotel1")
            .pattern("ReachedBy", "C", "F")
            .pattern("StayAt", "C", "H")
            .pattern("SameTrip", "F", "H")
            .select_const("C", "Topic", Comparator::Eq, Value::text("ai"))
            .k(5)
            .build()
            .unwrap();
        let joins = q.expanded_joins(&reg).unwrap();
        let same_trip: Vec<_> = joins
            .iter()
            .filter(|j| j.connects("F", "H"))
            .cloned()
            .collect();
        let mut p = QueryPlan::new(q);
        let c = p.add(PlanNode::Service(ServiceNode::new("C", "Conference1")));
        let f = p.add(PlanNode::Service(ServiceNode::new("F", "Flight1")));
        let h = p.add(PlanNode::Service(ServiceNode::new("H", "Hotel1")));
        let j = p.add(PlanNode::ParallelJoin(JoinSpec {
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Triangular,
            predicates: same_trip,
            selectivity: 1.0,
        }));
        p.connect(p.input(), c).unwrap();
        p.connect(c, f).unwrap();
        p.connect(c, h).unwrap();
        p.connect(f, j).unwrap();
        p.connect(h, j).unwrap();
        p.connect(j, p.output()).unwrap();
        let result = execute_plan(
            &p,
            &reg,
            EngineConfig {
                join_k: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!result.results.is_empty());
        for combo in &result.results {
            // C appears once, not twice.
            assert_eq!(combo.arity(), 3);
            assert_eq!(combo.atoms.iter().filter(|a| *a == "C").count(), 1);
            // The flight and hotel really belong to the same conference
            // city (the SameTrip predicate held).
            let fl = combo.component("F").unwrap();
            let ht = combo.component("H").unwrap();
            let fs = &reg.interface("Flight1").unwrap().schema;
            let hs = &reg.interface("Hotel1").unwrap().schema;
            assert_eq!(
                fl.first_value_at(fs, &seco_model::AttributePath::atomic("To"))
                    .unwrap(),
                ht.first_value_at(hs, &seco_model::AttributePath::atomic("City"))
                    .unwrap()
            );
        }
    }
}
