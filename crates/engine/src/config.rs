//! The consolidated engine configuration.
//!
//! [`EngineConfig`] gathers everything that used to be spread across
//! the historical `ExecOptions`, [`FetchOptions`], [`JoinIndexOptions`],
//! and the columnar-plane switches into one builder-style value — the
//! single configuration surface of the engine and of `seco serve`.
//! Every `seco run` CLI flag maps 1:1 to a builder method, and both
//! executors ([`crate::execute_plan`] and [`crate::execute_parallel`])
//! consume it directly.

use seco_join::{ColumnarOptions, JoinIndexMode, JoinIndexOptions};
use seco_optimizer::CostMetric;
use seco_services::ClientConfig;

use crate::executor::{FailureMode, FetchOptions};

/// Engine-wide execution configuration.
///
/// Construct with [`EngineConfig::default`] and chain builder methods:
///
/// ```
/// use seco_engine::{EngineConfig, FailureMode};
///
/// let config = EngineConfig::default()
///     .join_k(10)
///     .failure_mode(FailureMode::Degrade)
///     .cache_shards(8)
///     .prefetch(true)
///     .columnar(true)
///     .batch_eval(true);
/// assert_eq!(config.join_k, 10);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Stop parallel joins after this many emitted results (0 = no
    /// limit). Corresponds to the optimizer's `k` when the join node is
    /// the last producer.
    pub join_k: usize,
    /// Abort on service failure (default) or degrade gracefully.
    pub failure_mode: FailureMode,
    /// When set, every service call goes through a
    /// [`seco_services::ServiceClient`] with this resilience
    /// configuration (deadline, retry/backoff, circuit breaker). One
    /// client — hence one breaker — per service.
    pub client: Option<ClientConfig>,
    /// Fetch-layer configuration (cache, coalescing, prefetch). The
    /// cache sits *above* the resilient client, so hits and coalesced
    /// waits bypass retries and breaker checks entirely.
    pub fetch: FetchOptions,
    /// Join-kernel configuration: hash-index acceleration of tile and
    /// pipe joins, and top-k tile pruning. The default (`Hash`, no
    /// pruning) is byte-identical to the nested-loop baseline.
    pub join_index: JoinIndexOptions,
    /// Columnar data-plane configuration: column-backed key extraction
    /// and vectorized batch predicate evaluation. The default (both on)
    /// is byte-identical to the row-at-a-time plane.
    pub columnar: ColumnarOptions,
    /// Runs parallel joins as true top-k rank joins when `join_k > 0`:
    /// score-sorted inputs, a threshold bound over the unseen frontier,
    /// and chunk fetches that stop as soon as the k-th buffered result
    /// meets the bound. Output is the score-correct k-prefix of the
    /// full enumeration (off by default).
    pub rank_join: bool,
    /// Fuses chains of parallel joins into the single-pass n-ary kernel
    /// when the plan is eligible, eliding intermediate composites.
    /// Output stays byte-identical to the binary cascade (off by
    /// default).
    pub nary_join: bool,
    /// Adaptive re-optimization: after each fresh service or join stage,
    /// compare observed output cardinality against the plan-time
    /// estimate; when they deviate past [`adaptive_threshold`]
    /// (`EngineConfig::adaptive_threshold`), promote the observed
    /// statistics into the registry and re-plan the unexecuted suffix
    /// mid-flight ([`seco_optimizer::Optimizer::replan_suffix`]). Off by
    /// default: execution is byte-identical to the non-adaptive engine.
    pub adaptive: bool,
    /// Deviation ratio (`max(obs/est, est/obs)`) that triggers a
    /// mid-flight re-plan when [`adaptive`](EngineConfig::adaptive) is
    /// on.
    pub adaptive_threshold: f64,
    /// Cost metric the mid-flight re-planner optimizes.
    pub adaptive_metric: CostMetric,
    /// Worker count of the shared morsel executor pool. `1` (the
    /// default) takes the exact serial join code path — no pool is
    /// consulted and output is the byte-identical baseline. Larger
    /// values decompose tile joins, n-ary intersections, and batch
    /// predicate evaluation into morsels on a work-stealing pool; a
    /// deterministic ordered reducer keeps output byte-identical to
    /// serial at any worker count.
    pub exec_workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            join_k: 0,
            failure_mode: FailureMode::default(),
            client: None,
            fetch: FetchOptions::default(),
            join_index: JoinIndexOptions::default(),
            columnar: ColumnarOptions::default(),
            rank_join: false,
            nary_join: false,
            adaptive: false,
            adaptive_threshold: 10.0,
            adaptive_metric: CostMetric::ExecutionTime,
            exec_workers: 1,
        }
    }
}

impl EngineConfig {
    /// Sets the parallel-join result target `k` (0 = no limit).
    pub fn join_k(mut self, k: usize) -> Self {
        self.join_k = k;
        self
    }

    /// Sets the failure mode.
    pub fn failure_mode(mut self, mode: FailureMode) -> Self {
        self.failure_mode = mode;
        self
    }

    /// Shorthand for [`FailureMode::Degrade`].
    pub fn degrade(self) -> Self {
        self.failure_mode(FailureMode::Degrade)
    }

    /// Routes every service call through a resilient client with this
    /// configuration.
    pub fn client(mut self, config: ClientConfig) -> Self {
        self.client = Some(config);
        self
    }

    /// Sets the response-cache shard count (0 = cache off).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.fetch.cache_shards = shards;
        self
    }

    /// Sets the maximum cached responses per service.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.fetch.cache_capacity = capacity;
        self
    }

    /// Enables or disables speculative chunk prefetch.
    pub fn prefetch(mut self, on: bool) -> Self {
        self.fetch.prefetch = on;
        self
    }

    /// Sets the candidate-enumeration mode of tile joins.
    pub fn join_index_mode(mut self, mode: JoinIndexMode) -> Self {
        self.join_index.mode = mode;
        self
    }

    /// Enables or disables the score-frontier tile bound.
    pub fn tile_prune(mut self, on: bool) -> Self {
        self.join_index.tile_prune = on;
        self
    }

    /// Enables or disables column-wise consumption of chunk bodies
    /// (columnar hash-key extraction, zero-copy kernel inputs).
    pub fn columnar(mut self, on: bool) -> Self {
        self.columnar.columnar = on;
        self
    }

    /// Enables or disables vectorized batch predicate evaluation.
    pub fn batch_eval(mut self, on: bool) -> Self {
        self.columnar.batch_eval = on;
        self
    }

    /// Enables or disables the top-k rank join (effective when
    /// `join_k > 0`).
    pub fn rank_join(mut self, on: bool) -> Self {
        self.rank_join = on;
        self
    }

    /// Enables or disables n-ary fusion of parallel-join chains.
    pub fn nary_join(mut self, on: bool) -> Self {
        self.nary_join = on;
        self
    }

    /// Enables or disables adaptive mid-flight re-optimization.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Sets the deviation ratio that triggers a re-plan.
    pub fn adaptive_threshold(mut self, ratio: f64) -> Self {
        self.adaptive_threshold = ratio;
        self
    }

    /// Sets the cost metric the mid-flight re-planner optimizes.
    pub fn adaptive_metric(mut self, metric: CostMetric) -> Self {
        self.adaptive_metric = metric;
        self
    }

    /// Sets the morsel-executor worker count (1 = exact serial path).
    pub fn exec_workers(mut self, workers: usize) -> Self {
        self.exec_workers = workers.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_cover_every_field() {
        let cfg = EngineConfig::default()
            .join_k(7)
            .degrade()
            .client(ClientConfig::default())
            .cache_shards(4)
            .cache_capacity(128)
            .prefetch(true)
            .join_index_mode(JoinIndexMode::Off)
            .tile_prune(true)
            .columnar(false)
            .batch_eval(false)
            .rank_join(true)
            .nary_join(true)
            .adaptive(true)
            .adaptive_threshold(4.0)
            .adaptive_metric(CostMetric::RequestCount)
            .exec_workers(4);
        assert_eq!(cfg.join_k, 7);
        assert_eq!(cfg.failure_mode, FailureMode::Degrade);
        assert!(cfg.client.is_some());
        assert_eq!(cfg.fetch.cache_shards, 4);
        assert_eq!(cfg.fetch.cache_capacity, 128);
        assert!(cfg.fetch.prefetch);
        assert_eq!(cfg.join_index.mode, JoinIndexMode::Off);
        assert!(cfg.join_index.tile_prune);
        assert!(!cfg.columnar.columnar);
        assert!(!cfg.columnar.batch_eval);
        assert!(cfg.rank_join && cfg.nary_join);
        assert!(cfg.adaptive);
        assert_eq!(cfg.adaptive_threshold, 4.0);
        assert_eq!(cfg.adaptive_metric, CostMetric::RequestCount);
        assert_eq!(cfg.exec_workers, 4);
        // Zero is clamped to the serial floor, never a workerless pool.
        assert_eq!(EngineConfig::default().exec_workers(0).exec_workers, 1);
    }

    #[test]
    fn defaults_keep_the_columnar_plane_on() {
        let cfg = EngineConfig::default();
        assert!(cfg.columnar.columnar && cfg.columnar.batch_eval);
        assert_eq!(cfg.join_index.mode, JoinIndexMode::Hash);
        assert!(!cfg.join_index.tile_prune);
        assert!(!cfg.rank_join && !cfg.nary_join);
        assert!(!cfg.adaptive, "adaptive must default off (byte-identity)");
        assert_eq!(cfg.adaptive_threshold, 10.0);
        assert_eq!(cfg.adaptive_metric, CostMetric::ExecutionTime);
        assert_eq!(cfg.exec_workers, 1, "serial path must be the default");
    }
}
