//! Clocks: regulating service calls by the inter-service ratio.
//!
//! §4.3.2 previews them: "In Chapter 12 we show units for controlling
//! the execution strategy, called *clocks*, whose function is to
//! regulate service calls based upon the inter-service ratio." A clock
//! is a small token-bucket-like controller: each *tick* grants every
//! registered service a number of call credits proportional to its
//! share of the inter-service ratio; an executor asks the clock for
//! permission before each request-response and reports completions
//! back. This decouples *when* a strategy wants calls (the scheduler)
//! from *whether* the pacing allows them (the clock) — which is what
//! lets an engine re-weight running joins when the user changes the
//! ranking mid-flight (§3.1's dynamic re-ranking).

use std::collections::BTreeMap;

/// One registered service's pacing state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pace {
    /// Credits granted per tick.
    per_tick: u32,
    /// Currently available credits.
    available: u32,
    /// Calls performed in total.
    performed: u64,
}

/// A call-pacing clock over a set of named services.
///
/// Credits accumulate tick by tick, capped at one tick's worth times
/// `burst` so a stalled service cannot hoard unbounded credit and then
/// flood its provider.
#[derive(Debug, Clone)]
pub struct Clock {
    paces: BTreeMap<String, Pace>,
    burst: u32,
    ticks: u64,
}

impl Clock {
    /// A clock with the given burst factor (≥ 1): how many ticks of
    /// credit a service may accumulate.
    pub fn new(burst: u32) -> Self {
        Clock {
            paces: BTreeMap::new(),
            burst: burst.max(1),
            ticks: 0,
        }
    }

    /// Registers a service with its share of the inter-service ratio
    /// (e.g. `r = 3/5` registers the first service at 3 and the second
    /// at 5). Re-registering replaces the share but keeps the call
    /// count.
    pub fn register(&mut self, service: impl Into<String>, share: u32) {
        let share = share.max(1);
        let entry = self.paces.entry(service.into()).or_insert(Pace {
            per_tick: share,
            available: 0,
            performed: 0,
        });
        entry.per_tick = share;
    }

    /// Advances the clock by one tick, granting every service its
    /// credit share.
    pub fn tick(&mut self) {
        self.ticks += 1;
        for pace in self.paces.values_mut() {
            let cap = pace.per_tick.saturating_mul(self.burst);
            pace.available = (pace.available + pace.per_tick).min(cap);
        }
    }

    /// True when the service may issue a call right now.
    pub fn may_call(&self, service: &str) -> bool {
        self.paces
            .get(service)
            .map(|p| p.available > 0)
            .unwrap_or(false)
    }

    /// Consumes one credit for a call; returns false (and consumes
    /// nothing) when no credit is available or the service is unknown.
    pub fn acquire(&mut self, service: &str) -> bool {
        match self.paces.get_mut(service) {
            Some(p) if p.available > 0 => {
                p.available -= 1;
                p.performed += 1;
                true
            }
            _ => false,
        }
    }

    /// Calls performed by a service so far.
    pub fn performed(&self, service: &str) -> u64 {
        self.paces.get(service).map(|p| p.performed).unwrap_or(0)
    }

    /// Ticks elapsed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The observed call ratio between two services (`performed_a /
    /// performed_b`), `None` until both have called at least once.
    pub fn observed_ratio(&self, a: &str, b: &str) -> Option<f64> {
        let pa = self.performed(a);
        let pb = self.performed(b);
        if pa == 0 || pb == 0 {
            None
        } else {
            Some(pa as f64 / pb as f64)
        }
    }
}

/// Adapter pacing a binary join's calls with a [`Clock`]: the next call
/// goes to whichever side has more accumulated credit (the opening pair
/// is forced, as every §4.4 strategy requires); when neither side has
/// credit, the clock ticks. Plugs into
/// [`seco_join::ParallelJoinExecutor::run_paced`].
pub struct ClockPacing {
    clock: Clock,
}

impl ClockPacing {
    /// Builds a pacer for a binary join with inter-service ratio
    /// `rx : ry` (X gets `rx` credits per tick, Y gets `ry`).
    pub fn new(rx: u32, ry: u32, burst: u32) -> Self {
        let mut clock = Clock::new(burst);
        clock.register("x", rx);
        clock.register("y", ry);
        ClockPacing { clock }
    }

    /// The underlying clock (for inspecting performed-call counters).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }
}

impl seco_join::Pacing for ClockPacing {
    fn next_target(&mut self, calls_x: usize, calls_y: usize) -> seco_join::CallTarget {
        use seco_join::CallTarget;
        // Forced opening pair so at least one tile exists (§4.4.1).
        if calls_x == 0 {
            self.clock.tick();
            self.clock.acquire("x");
            return CallTarget::X;
        }
        if calls_y == 0 {
            self.clock.acquire("y");
            return CallTarget::Y;
        }
        loop {
            let cx = self.clock.may_call("x");
            let cy = self.clock.may_call("y");
            match (cx, cy) {
                (true, true) => {
                    // More credit goes first; ties favour X.
                    let side = if self.clock.performed("x") as f64
                        / self.clock.performed("y").max(1) as f64
                        <= 1.0
                    {
                        "x"
                    } else {
                        "y"
                    };
                    self.clock.acquire(side);
                    return if side == "x" {
                        CallTarget::X
                    } else {
                        CallTarget::Y
                    };
                }
                (true, false) => {
                    self.clock.acquire("x");
                    return CallTarget::X;
                }
                (false, true) => {
                    self.clock.acquire("y");
                    return CallTarget::Y;
                }
                (false, false) => self.clock.tick(),
            }
        }
    }
}

/// Drives a two-service call loop under a clock until `total` calls
/// have been performed, returning the call sequence as service names.
/// Greedy: at each step the service with more available credit (ties:
/// lexicographic) calls first; the clock ticks whenever neither may
/// call. This is the §4.3.2 behaviour of alternating calls "with an
/// inter-service ratio r between calls to services".
pub fn drive_pair(clock: &mut Clock, a: &str, b: &str, total: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(total);
    let mut guard = 0usize;
    while out.len() < total && guard < total * 16 {
        guard += 1;
        let avail = |c: &Clock, s: &str| c.paces.get(s).map(|p| p.available).unwrap_or(0);
        let (first, second) = if avail(clock, a) >= avail(clock, b) {
            (a, b)
        } else {
            (b, a)
        };
        if clock.acquire(first) {
            out.push(first.to_owned());
        } else if clock.acquire(second) {
            out.push(second.to_owned());
        } else {
            clock.tick();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_accumulate_per_tick_and_cap_at_burst() {
        let mut c = Clock::new(2);
        c.register("X", 3);
        assert!(!c.may_call("X"), "no credit before the first tick");
        c.tick();
        assert!(c.may_call("X"));
        // Burst cap: at most 2 ticks of credit (6).
        for _ in 0..10 {
            c.tick();
        }
        let mut calls = 0;
        while c.acquire("X") {
            calls += 1;
        }
        assert_eq!(calls, 6, "credit is capped at per_tick × burst");
        assert_eq!(c.performed("X"), 6);
    }

    #[test]
    fn unknown_services_never_call() {
        let mut c = Clock::new(1);
        c.tick();
        assert!(!c.may_call("ghost"));
        assert!(!c.acquire("ghost"));
        assert_eq!(c.performed("ghost"), 0);
    }

    #[test]
    fn driven_pair_respects_the_inter_service_ratio() {
        // The chapter's example ratio r = 3/5.
        let mut c = Clock::new(1);
        c.register("X", 3);
        c.register("Y", 5);
        let seq = drive_pair(&mut c, "X", "Y", 80);
        assert_eq!(seq.len(), 80);
        let ratio = c.observed_ratio("X", "Y").unwrap();
        assert!(
            (ratio - 0.6).abs() < 0.05,
            "observed ratio {ratio} should approximate 3/5"
        );
    }

    #[test]
    fn even_ratio_alternates() {
        let mut c = Clock::new(1);
        c.register("X", 1);
        c.register("Y", 1);
        let seq = drive_pair(&mut c, "X", "Y", 10);
        let xs = seq.iter().filter(|s| *s == "X").count();
        assert_eq!(xs, 5);
        // Never more than one consecutive call to the same service.
        for w in seq.windows(3) {
            assert!(
                !(w[0] == w[1] && w[1] == w[2]),
                "burst 1 forbids long runs: {seq:?}"
            );
        }
    }

    #[test]
    fn re_registering_updates_the_share() {
        let mut c = Clock::new(1);
        c.register("X", 1);
        c.register("Y", 1);
        drive_pair(&mut c, "X", "Y", 20);
        // Mid-flight re-weighting (the dynamic re-ranking case).
        c.register("X", 4);
        drive_pair(&mut c, "X", "Y", 50);
        let ratio = c.observed_ratio("X", "Y").unwrap();
        assert!(ratio > 1.5, "X should now dominate, observed {ratio}");
    }

    #[test]
    fn clock_pacing_drives_a_real_parallel_join() {
        use seco_join::executor::MemoryStream;
        use seco_join::ParallelJoinExecutor;
        use seco_model::{
            Adornment, AttributeDef, CompositeTuple, DataType, ServiceSchema, Tuple, Value,
        };
        use seco_plan::{Completion, Invocation};
        use seco_query::predicate::SchemaMap;

        let schema = ServiceSchema::new(
            "S",
            vec![AttributeDef::atomic("L", DataType::Int, Adornment::Output)],
        )
        .unwrap();
        let mk = |atom: &str, n: usize| -> Vec<CompositeTuple> {
            (0..n)
                .map(|i| {
                    CompositeTuple::single(
                        atom,
                        Tuple::builder(&schema)
                            .set("L", Value::Int(i as i64 % 4))
                            .score(1.0 - i as f64 / n as f64)
                            .source_rank(i)
                            .build()
                            .unwrap(),
                    )
                })
                .collect()
        };
        let preds = vec![seco_query::predicate::ResolvedPredicate::Join(
            seco_query::JoinPredicate {
                left: seco_query::QualifiedPath::new("A", seco_model::AttributePath::atomic("L")),
                op: seco_model::Comparator::Eq,
                right: seco_query::QualifiedPath::new("B", seco_model::AttributePath::atomic("L")),
            },
        )];
        let mut schemas = SchemaMap::new();
        schemas.insert("A".into(), &schema);
        schemas.insert("B".into(), &schema);
        let exec = ParallelJoinExecutor {
            predicates: &preds,
            schemas: &schemas,
            invocation: Invocation::MergeScan { r1: 1, r2: 3 },
            completion: Completion::Rectangular,
            h: 1,
            k: 0,
            options: seco_join::JoinIndexOptions::default(),
            columnar: seco_join::ColumnarOptions::default(),
            pool: None,
        };
        // Clock-paced run at ratio 1:3.
        let mut pacer = ClockPacing::new(1, 3, 1);
        let mut a = MemoryStream::new(mk("A", 32), 2);
        let mut b = MemoryStream::new(mk("B", 32), 2);
        let paced = exec.run_paced(&mut a, &mut b, &mut pacer).unwrap();
        // Strategy-scheduled run for comparison.
        let mut a2 = MemoryStream::new(mk("A", 32), 2);
        let mut b2 = MemoryStream::new(mk("B", 32), 2);
        let scheduled = exec.run(&mut a2, &mut b2).unwrap();
        // Both explore everything and find the same matches.
        assert!(paced.exhausted && scheduled.exhausted);
        assert_eq!(paced.results.len(), scheduled.results.len());
        assert_eq!(
            (paced.calls_x, paced.calls_y),
            (16, 16),
            "full exploration calls per chunk"
        );
        // Mid-flight the pacer really skews toward Y: inspect the clock.
        assert!(pacer.clock().performed("y") >= pacer.clock().performed("x"));
    }

    #[test]
    fn observed_ratio_is_none_before_both_called() {
        let mut c = Clock::new(1);
        c.register("X", 1);
        c.register("Y", 1);
        assert!(c.observed_ratio("X", "Y").is_none());
        c.tick();
        c.acquire("X");
        assert!(c.observed_ratio("X", "Y").is_none());
        assert_eq!(c.ticks(), 1);
    }
}
