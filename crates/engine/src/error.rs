//! Error type of the execution engine.

use std::fmt;

use seco_join::JoinError;
use seco_plan::PlanError;
use seco_query::QueryError;
use seco_services::ServiceError;

/// Errors raised while executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Underlying plan error.
    Plan(PlanError),
    /// Underlying query error.
    Query(QueryError),
    /// Underlying join error.
    Join(JoinError),
    /// Underlying service error.
    Service(ServiceError),
    /// A worker thread of the parallel executor panicked or hung up
    /// unexpectedly.
    WorkerFailed {
        /// Which stage failed.
        stage: String,
        /// Failure description.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "plan error: {e}"),
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Join(e) => write!(f, "join error: {e}"),
            EngineError::Service(e) => write!(f, "service error: {e}"),
            EngineError::WorkerFailed { stage, detail } => {
                write!(f, "worker for stage `{stage}` failed: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Plan(e) => Some(e),
            EngineError::Query(e) => Some(e),
            EngineError::Join(e) => Some(e),
            EngineError::Service(e) => Some(e),
            EngineError::WorkerFailed { .. } => None,
        }
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}
impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}
impl From<JoinError> for EngineError {
    fn from(e: JoinError) -> Self {
        EngineError::Join(e)
    }
}
impl From<ServiceError> for EngineError {
    fn from(e: ServiceError) -> Self {
        EngineError::Service(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = PlanError::Cyclic.into();
        assert!(e.to_string().contains("plan error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::WorkerFailed {
            stage: "join".into(),
            detail: "poisoned".into(),
        };
        assert!(e.to_string().contains("join"));
        assert!(std::error::Error::source(&e).is_none());
        let e: EngineError = QueryError::UnknownAtom("x".into()).into();
        assert!(e.to_string().contains("query error"));
        let e: EngineError = JoinError::BadMethod { detail: "d".into() }.into();
        assert!(e.to_string().contains("join error"));
        let e: EngineError = ServiceError::UnknownService("s".into()).into();
        assert!(e.to_string().contains("service error"));
    }
}
