//! Execution traces: what each plan node did.

use std::fmt;

use seco_plan::NodeId;

/// One record per executed plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The node.
    pub node: NodeId,
    /// Node label at execution time.
    pub label: String,
    /// Composites flowing in.
    pub tuples_in: usize,
    /// Composites flowing out.
    pub tuples_out: usize,
    /// Request-responses issued by this node.
    pub calls: usize,
    /// Simulated service time spent in this node (ms).
    pub busy_ms: f64,
}

/// The ordered trace of one plan execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl ExecutionTrace {
    /// Appends an event.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Total request-responses across all nodes.
    pub fn total_calls(&self) -> usize {
        self.events.iter().map(|e| e.calls).sum()
    }

    /// Total simulated service time (sequential accounting), in ms.
    pub fn total_busy_ms(&self) -> f64 {
        self.events.iter().map(|e| e.busy_ms).sum()
    }

    /// The event for a node, if it executed.
    pub fn event(&self, node: NodeId) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.node == node)
    }
}

impl fmt::Display for ExecutionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(
                f,
                "{}: {} in={} out={} calls={} busy={:.1}ms",
                e.node, e.label, e.tuples_in, e.tuples_out, e.calls, e.busy_ms
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(node: usize, calls: usize, busy: f64) -> TraceEvent {
        TraceEvent {
            node: NodeId(node),
            label: format!("n{node}"),
            tuples_in: 1,
            tuples_out: 2,
            calls,
            busy_ms: busy,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut t = ExecutionTrace::default();
        t.record(event(1, 3, 30.0));
        t.record(event(2, 2, 20.0));
        assert_eq!(t.total_calls(), 5);
        assert!((t.total_busy_ms() - 50.0).abs() < 1e-12);
        assert!(t.event(NodeId(1)).is_some());
        assert!(t.event(NodeId(9)).is_none());
    }

    #[test]
    fn display_lists_events() {
        let mut t = ExecutionTrace::default();
        t.record(event(1, 3, 30.0));
        let s = t.to_string();
        assert!(s.contains("n1"));
        assert!(s.contains("calls=3"));
    }
}
