//! The pipelined multi-threaded executor.
//!
//! §2.2: "data are shipped in pipelines from one service to another, so
//! as to maximize parallelism". Every plan node runs in its own OS
//! thread; composites flow through bounded crossbeam channels along the
//! plan's arcs, so independent branches (e.g. Movie and Theatre in the
//! Fig. 10 plan) issue their service calls concurrently and downstream
//! stages start as soon as the first tuples arrive. Parallel-join
//! stages are rendezvous points: they drain both inputs, then run the
//! tile-space join and stream its emission order onward.
//!
//! Results are identical (as a set) to [`crate::executor::execute_plan`];
//! the experiments use the deterministic executor and this one exists
//! to exercise true pipelined execution (including failure propagation
//! out of worker threads).

use std::collections::BTreeMap;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use seco_model::CompositeTuple;
use seco_plan::{PlanNode, QueryPlan};
use seco_query::feasibility::analyze;
use seco_query::predicate::{resolve_predicates, satisfies_available, ResolvedPredicate, SchemaMap};
use seco_services::ServiceRegistry;

use crate::error::EngineError;
use crate::executor::ExecOptions;

/// Channel capacity per plan arc; small enough to exercise
/// backpressure, large enough to avoid senseless stalls.
const ARC_CAPACITY: usize = 256;

/// Executes a plan with one thread per node, returning the output
/// combinations (in the output stage's arrival order).
pub fn execute_parallel(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    options: ExecOptions,
) -> Result<Vec<CompositeTuple>, EngineError> {
    plan.validate()?;
    let report = analyze(&plan.query, registry)?;
    let joins = plan.query.expanded_joins(registry)?;
    let predicates = resolve_predicates(&plan.query, &joins)?;
    let mut schemas: SchemaMap<'_> = BTreeMap::new();
    for atom in &plan.query.atoms {
        schemas.insert(atom.alias.clone(), &registry.interface(&atom.service)?.schema);
    }

    // One channel per arc.
    let mut senders: Vec<Vec<Sender<CompositeTuple>>> = vec![Vec::new(); plan.len()];
    let mut receivers: Vec<Vec<Receiver<CompositeTuple>>> = vec![Vec::new(); plan.len()];
    for (from, to) in plan.edges() {
        let (tx, rx) = bounded(ARC_CAPACITY);
        senders[from.0].push(tx);
        receivers[to.0].push(rx);
    }

    let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
    let output: Mutex<Vec<CompositeTuple>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for id in plan.node_ids() {
            let node = match plan.node(id) {
                Ok(n) => n.clone(),
                Err(e) => {
                    *first_error.lock() = Some(EngineError::Plan(e));
                    continue;
                }
            };
            let my_senders = std::mem::take(&mut senders[id.0]);
            let my_receivers = std::mem::take(&mut receivers[id.0]);
            let report = &report;
            let predicates = &predicates;
            let schemas = &schemas;
            let first_error = &first_error;
            let output = &output;
            let query = &plan.query;
            scope.spawn(move || {
                let fail = |e: EngineError| {
                    let mut slot = first_error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                };
                let send_all = |c: CompositeTuple| -> bool {
                    for s in &my_senders {
                        if s.send(c.clone()).is_err() {
                            return false; // downstream hung up
                        }
                    }
                    true
                };
                match node {
                    PlanNode::Input => {
                        send_all(CompositeTuple { atoms: Vec::new(), components: Vec::new() });
                    }
                    PlanNode::Output => {
                        let mut collected = Vec::new();
                        for c in my_receivers[0].iter() {
                            collected.push(c);
                        }
                        *output.lock() = collected;
                    }
                    PlanNode::Selection(sel) => {
                        let node_preds =
                            match crate::executor::resolve_selection_node(&sel, query) {
                                Ok(p) => p,
                                Err(e) => return fail(e),
                            };
                        for c in my_receivers[0].iter() {
                            match satisfies_available(&node_preds, &c, schemas) {
                                Ok(true) => {
                                    if !send_all(c) {
                                        return;
                                    }
                                }
                                Ok(false) => {}
                                Err(e) => return fail(EngineError::Query(e)),
                            }
                        }
                    }
                    PlanNode::Service(svc) => {
                        let service = match registry.service(&svc.service) {
                            Ok(s) => s,
                            Err(e) => return fail(EngineError::Service(e)),
                        };
                        let bindings = report.bindings_of(&svc.atom);
                        for input in my_receivers[0].iter() {
                            let outcome = seco_join::pipe::pipe_join(
                                std::slice::from_ref(&input),
                                &svc.atom,
                                service.as_ref(),
                                &bindings,
                                &query.inputs,
                                predicates,
                                schemas,
                                svc.fetches as usize,
                                svc.keep_first,
                            );
                            match outcome {
                                Ok(out) => {
                                    for c in out.results {
                                        if !send_all(c) {
                                            return;
                                        }
                                    }
                                }
                                Err(e) => return fail(EngineError::Join(e)),
                            }
                        }
                    }
                    PlanNode::ParallelJoin(spec) => {
                        // Rendezvous: drain both inputs.
                        let left: Vec<CompositeTuple> = my_receivers[0].iter().collect();
                        let right: Vec<CompositeTuple> = my_receivers[1].iter().collect();
                        let join_predicates: Vec<ResolvedPredicate> = spec
                            .predicates
                            .iter()
                            .cloned()
                            .map(ResolvedPredicate::Join)
                            .collect();
                        let exec = seco_join::ParallelJoinExecutor {
                            predicates: &join_predicates,
                            schemas,
                            invocation: spec.invocation,
                            completion: spec.completion,
                            h: 1,
                            k: options.join_k,
                        };
                        let mut sl = seco_join::executor::MemoryStream::new(left, 10);
                        let mut sr = seco_join::executor::MemoryStream::new(right, 10);
                        match exec.run(&mut sl, &mut sr) {
                            Ok(outcome) => {
                                for c in outcome.results {
                                    if !send_all(c) {
                                        return;
                                    }
                                }
                            }
                            Err(e) => fail(EngineError::Join(e)),
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = first_error.lock().take() {
        return Err(e);
    }
    Ok(output.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_optimizer::{optimize, CostMetric};
    use seco_query::builder::running_example;
    use seco_services::domains::entertainment;

    #[test]
    fn parallel_matches_sequential_results_as_a_set() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        let sequential =
            crate::executor::execute_plan(&best.plan, &reg, ExecOptions::default()).unwrap();
        let parallel = execute_parallel(&best.plan, &reg, ExecOptions::default()).unwrap();
        assert_eq!(parallel.len(), sequential.results.len());
        for c in &parallel {
            assert!(
                sequential.results.iter().any(|s| {
                    q.atoms.iter().all(|a| s.component(&a.alias) == c.component(&a.alias))
                }),
                "parallel emitted {c} which the sequential run lacks"
            );
        }
    }

    #[test]
    fn failures_in_workers_surface_as_errors() {
        use seco_services::synthetic::{DomainMap, SyntheticService};
        use std::sync::Arc;
        // A registry whose Movie service always fails.
        let mut reg = seco_services::ServiceRegistry::new();
        reg.register_service(Arc::new(
            SyntheticService::new(entertainment::movie_interface(), DomainMap::new(), 1)
                .with_failure_every(1),
        ))
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(
            entertainment::theatre_interface(),
            DomainMap::new(),
            2,
        )))
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(
            entertainment::restaurant_interface(),
            DomainMap::new(),
            3,
        )))
        .unwrap();
        reg.register_pattern(entertainment::shows_pattern()).unwrap();
        reg.register_pattern(entertainment::dinner_place_pattern()).unwrap();

        let q = running_example();
        // Reuse a plan optimized against a healthy registry.
        let healthy = entertainment::build_registry(1).unwrap();
        let best = optimize(&q, &healthy, CostMetric::RequestCount).unwrap();
        let err = execute_parallel(&best.plan, &reg, ExecOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::Join(_) | EngineError::Service(_)), "{err}");
    }
}
