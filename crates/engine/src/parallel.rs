//! The pipelined multi-threaded executor.
//!
//! §2.2: "data are shipped in pipelines from one service to another, so
//! as to maximize parallelism". Every plan node runs in its own OS
//! thread; composites flow through bounded crossbeam channels along the
//! plan's arcs, so independent branches (e.g. Movie and Theatre in the
//! Fig. 10 plan) issue their service calls concurrently and downstream
//! stages start as soon as the first tuples arrive. Parallel-join
//! stages are rendezvous points: they drain both inputs, then run the
//! tile-space join and stream its emission order onward.
//!
//! Results are identical (as a set) to [`crate::executor::execute_plan`];
//! the experiments use the deterministic executor and this one exists
//! to exercise true pipelined execution (including failure propagation
//! out of worker threads).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use seco_join::{score_order, JoinStats, NaryJoin, NaryStage, PipeJoin, RankJoin};
use seco_model::CompositeTuple;
use seco_optimizer::Optimizer;
use seco_plan::{NodeId, PlanNode, QueryPlan};
use seco_query::feasibility::analyze;
use seco_query::predicate::{
    resolve_predicates, satisfies_available, ResolvedPredicate, SchemaMap,
};
use seco_services::{DeviationPolicy, Prefetcher, Service, ServiceRegistry};

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::executor::{fusion_chains, FailureMode};
use crate::shared::{SharedState, Stack};

/// Channel capacity per plan arc, in batches; small enough to exercise
/// backpressure, large enough to avoid senseless stalls.
const ARC_CAPACITY: usize = 256;

/// Tuples per channel batch. Workers buffer their output locally and
/// ship it in batches, so the per-tuple cost of the channel's internal
/// lock (and of cloning for every fan-out edge) is amortized away —
/// this is what removes the output-path contention that per-tuple
/// sends exhibited with eight producer nodes.
const BATCH_SIZE: usize = 32;

/// Concurrent speculative fetches per service node.
const PREFETCH_INFLIGHT: usize = 2;

/// A batch of composites on a plan arc. Batches are `Arc`-shared so a
/// fan-out over N consumers ships N handle bumps, not N vector copies
/// (the composites themselves are thin handles already).
type Batch = Arc<Vec<CompositeTuple>>;

/// Recovers an owned batch from the shared handle: moves when this
/// consumer was the only one, clones handles otherwise.
fn unbatch(batch: Batch) -> Vec<CompositeTuple> {
    Arc::try_unwrap(batch).unwrap_or_else(|shared| (*shared).clone())
}

/// A worker's buffered fan-out over its outgoing arcs.
struct Fanout {
    senders: Vec<Sender<Batch>>,
    buf: Vec<CompositeTuple>,
}

impl Fanout {
    fn new(senders: Vec<Sender<Batch>>) -> Self {
        Fanout {
            senders,
            buf: Vec::with_capacity(BATCH_SIZE),
        }
    }

    /// Buffers one tuple, shipping a batch when full. Returns `false`
    /// when every downstream consumer hung up.
    fn push(&mut self, tuple: CompositeTuple) -> bool {
        self.buf.push(tuple);
        if self.buf.len() >= BATCH_SIZE {
            self.flush()
        } else {
            true
        }
    }

    /// Ships whatever is buffered. Must be called before the worker
    /// drops its senders, or the tail of its output is lost.
    fn flush(&mut self) -> bool {
        if self.buf.is_empty() || self.senders.is_empty() {
            self.buf.clear();
            return true;
        }
        let batch: Batch = Arc::new(std::mem::take(&mut self.buf));
        for s in &self.senders {
            if s.send(batch.clone()).is_err() {
                return false; // downstream hung up
            }
        }
        true
    }
}

/// The outcome of a pipelined execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelOutcome {
    /// Output combinations, in the output stage's arrival order.
    pub results: Vec<CompositeTuple>,
    /// Services whose failures degraded the answer (sorted,
    /// deduplicated; empty on a clean run).
    pub degraded: Vec<String>,
    /// Join-kernel counters aggregated over every pipe stage and
    /// parallel join of the plan.
    pub join_stats: JoinStats,
    /// The plan the run actually executed, when the pre-flight adaptive
    /// checkpoint re-planned under promoted statistics (`None`
    /// otherwise).
    pub replanned: Option<QueryPlan>,
}

/// Executes a plan with one thread per node, returning the output
/// combinations (in the output stage's arrival order).
pub fn execute_parallel(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    options: EngineConfig,
) -> Result<Vec<CompositeTuple>, EngineError> {
    execute_parallel_with(plan, registry, options).map(|o| o.results)
}

/// Like [`execute_parallel`], additionally reporting which services
/// degraded the answer under [`FailureMode::Degrade`]. Resilience
/// middleware ([`EngineConfig::client`]) runs in wall-clock mode here:
/// backoff really sleeps and breaker cooldowns are real milliseconds.
pub fn execute_parallel_with(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    options: EngineConfig,
) -> Result<ParallelOutcome, EngineError> {
    execute_parallel_session(plan, registry, options, None, None)
}

/// A batch sink for streaming delivery: called from the output
/// collector thread with each arriving batch of final combinations,
/// *while upstream stages are still running* — this is what pushes
/// result chunks to a client as tiles are joined. Must be `Sync`
/// (invoked from inside the executor's thread scope).
pub type BatchSink<'s> = &'s (dyn Fn(&[CompositeTuple]) + Sync);

/// The daemon-grade pipelined entry point: executes against optional
/// long-lived [`SharedState`] (persistent per-service caches, breaker
/// state, and the speculation pool) and streams output batches into
/// `sink` as they arrive at the output stage. Both extras are
/// optional; with neither, this is exactly [`execute_parallel_with`].
pub fn execute_parallel_session(
    plan: &QueryPlan,
    registry: &ServiceRegistry,
    options: EngineConfig,
    shared: Option<&SharedState>,
    sink: Option<BatchSink<'_>>,
) -> Result<ParallelOutcome, EngineError> {
    // Pre-flight adaptive checkpoint. Wall-clock threads preclude the
    // deterministic executor's mid-flight restarts (replaying memoized
    // stages under a virtual clock), so this executor adapts *between*
    // runs: statistics observed by earlier executions are promoted and
    // the whole plan is re-planned (empty executed prefix ⇒ every
    // degree of freedom re-opens) before any thread spawns.
    let replanned: Option<QueryPlan> = if options.adaptive {
        let policy = DeviationPolicy {
            threshold: options.adaptive_threshold,
            min_samples: 1,
        };
        let promoted = registry.promote_deviations(&policy);
        if promoted.is_empty() {
            None
        } else {
            let mut observed: BTreeMap<String, (f64, f64)> = BTreeMap::new();
            for (name, drift) in registry.service_drift() {
                if let Some(card) = drift.observed_cardinality {
                    observed.insert(name, (drift.declared_cardinality, card.value));
                }
            }
            // A promotion *is* a deviation past the threshold (that is
            // the promotion criterion), so always open the re-planner's
            // gate — pattern-only drift leaves no service entry above.
            observed.insert(
                "(promoted)".to_owned(),
                (1.0, options.adaptive_threshold.max(1.0)),
            );
            let mut opt = Optimizer::new(registry, options.adaptive_metric);
            opt.replan_threshold = options.adaptive_threshold;
            opt.replan_suffix(plan, &BTreeSet::new(), &observed)
                .ok()
                .filter(|re| re.plan != *plan)
                .map(|re| re.plan)
        }
    } else {
        None
    };
    let plan = replanned.as_ref().unwrap_or(plan);
    plan.validate()?;
    let report = analyze(&plan.query, registry)?;
    let joins = plan.query.expanded_joins(registry)?;
    let predicates = resolve_predicates(&plan.query, &joins)?;
    let mut schemas: SchemaMap<'_> = BTreeMap::new();
    for atom in &plan.query.atoms {
        schemas.insert(
            atom.alias.clone(),
            &registry.interface(&atom.service)?.schema,
        );
    }

    let degrade = options.failure_mode == FailureMode::Degrade;

    // Which services feed each node, so a rendezvous join can attribute
    // a recorded failure to its left or right branch. Workers record a
    // degradation before dropping their senders, and a join only reads
    // the set after both its channels closed, so the attribution is
    // race-free.
    let mut ancestors: Vec<BTreeSet<String>> = vec![BTreeSet::new(); plan.len()];
    for id in plan.topo_order()? {
        let mut set = BTreeSet::new();
        for p in plan.predecessors(id) {
            set.extend(ancestors[p.0].iter().cloned());
        }
        if let Ok(PlanNode::Service(node)) = plan.node(id) {
            set.insert(node.service.clone());
        }
        ancestors[id.0] = set;
    }

    // Left-deep parallel-join chains fused by the n-ary kernel (rank
    // join takes precedence, exactly as in the deterministic executor).
    let (nary_elided, nary_chains) = if options.nary_join && !options.rank_join {
        fusion_chains(plan)?
    } else {
        (vec![false; plan.len()], BTreeMap::new())
    };
    // Channel rerouting for fused chains: edges into an absorbed join
    // deliver straight to the chain's top join (tagged with their group
    // index) and the chain's internal edges disappear, so the absorbed
    // joins never spawn.
    let mut skip_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut routes: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
    let mut fused_groups: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for (top, chain) in &nary_chains {
        let fp = plan.predecessors(chain[0]);
        let mut group_nodes = vec![fp[0], fp[1]];
        routes
            .entry((fp[0].0, chain[0].0))
            .or_default()
            .push((*top, 0));
        routes
            .entry((fp[1].0, chain[0].0))
            .or_default()
            .push((*top, 1));
        for (i, j) in chain.iter().enumerate().skip(1) {
            skip_edges.insert((chain[i - 1].0, j.0));
            let g = plan.predecessors(*j)[1];
            routes.entry((g.0, j.0)).or_default().push((*top, i + 1));
            group_nodes.push(g);
        }
        fused_groups.insert(*top, group_nodes);
    }

    // One channel per arc, carrying shared batches of tuples.
    let mut senders: Vec<Vec<Sender<Batch>>> = vec![Vec::new(); plan.len()];
    let mut receivers: Vec<Vec<Receiver<Batch>>> = vec![Vec::new(); plan.len()];
    let mut extra_rx: Vec<Vec<(usize, Receiver<Batch>)>> = vec![Vec::new(); plan.len()];
    for (from, to) in plan.edges() {
        if skip_edges.contains(&(from.0, to.0)) {
            continue;
        }
        let (tx, rx) = bounded(ARC_CAPACITY);
        senders[from.0].push(tx);
        match routes.get_mut(&(from.0, to.0)).and_then(Vec::pop) {
            Some((top, gi)) => extra_rx[top].push((gi, rx)),
            None => receivers[to.0].push(rx),
        }
    }

    // One fetch stack per service, shared by every node (and thread)
    // that invokes it: the wall-clock resilient client — one breaker
    // per service, matching the deterministic executor — under the
    // sharded response cache, whose singleflight layer coalesces
    // concurrent identical requests across plan nodes. With
    // caller-provided shared state the stacks (and the speculation
    // pool) persist across executions; without, they live for this
    // run only.
    let local_state;
    let state = match shared {
        Some(s) => s,
        None => {
            local_state = SharedState::new();
            &local_state
        }
    };
    let mut stacks: BTreeMap<String, Stack> = BTreeMap::new();
    for id in plan.node_ids() {
        if let Ok(PlanNode::Service(node)) = plan.node(id) {
            if stacks.contains_key(&node.service) {
                continue;
            }
            let recorded = registry.service(&node.service)?;
            stacks.insert(
                node.service.clone(),
                state.stack_for(&node.service, &recorded, &options, true),
            );
        }
    }
    let stacks = &stacks;
    // Executor pool resolution. A daemon's shared pool serves every
    // session; a one-shot run with `exec_workers > 1` builds a
    // run-local pool (dropped — drained and joined — on return). The
    // pool's *compute tier* runs join morsels and detached prefetch
    // speculation; its *elastic blocking tier* runs the plan-node
    // tasks below, which block on channel rendezvous and therefore
    // must never occupy a bounded compute worker.
    let local_pool;
    let exec_pool: Option<&Arc<seco_exec::ExecPool>> = match state.exec_pool() {
        Some(p) => Some(p),
        None if options.exec_workers > 1 => {
            local_pool = Arc::new(seco_exec::ExecPool::new(options.exec_workers));
            Some(&local_pool)
        }
        None => None,
    };
    // Morsel parallelism inside the join kernels is opt-in via
    // `exec_workers`: at 1 the kernels take their exact serial path
    // even when a daemon pool exists for prefetch and node fan-out.
    let join_pool: Option<Arc<seco_exec::ExecPool>> = if options.exec_workers > 1 {
        exec_pool.cloned()
    } else {
        None
    };
    let join_pool = &join_pool;

    let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
    let output: Mutex<Vec<CompositeTuple>> = Mutex::new(Vec::new());
    let degraded: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
    let join_stats: Mutex<JoinStats> = Mutex::new(JoinStats::default());

    let mut node_tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    {
        for id in plan.node_ids() {
            if nary_elided[id.0] {
                // Absorbed into a fused chain: its channels were
                // rerouted to the chain top, so there is nothing to run.
                continue;
            }
            let node = match plan.node(id) {
                Ok(n) => n.clone(),
                Err(e) => {
                    *first_error.lock() = Some(EngineError::Plan(e));
                    continue;
                }
            };
            let my_senders = std::mem::take(&mut senders[id.0]);
            let my_receivers = std::mem::take(&mut receivers[id.0]);
            let my_extra = std::mem::take(&mut extra_rx[id.0]);
            let fused_group_nodes = fused_groups.get(&id.0).cloned();
            let chain_nodes = nary_chains.get(&id.0).cloned();
            let plan_ref = plan;
            let my_preds = plan.predecessors(id);
            let report = &report;
            let predicates = &predicates;
            let schemas = &schemas;
            let first_error = &first_error;
            let output = &output;
            let degraded = &degraded;
            let join_stats = &join_stats;
            let ancestors = &ancestors;
            let query = &plan.query;
            node_tasks.push(Box::new(move || {
                let fail = |e: EngineError| {
                    let mut slot = first_error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                };
                let mut out = Fanout::new(my_senders);
                match node {
                    PlanNode::Input => {
                        out.push(CompositeTuple {
                            atoms: Vec::new(),
                            components: Vec::new(),
                        });
                        out.flush();
                    }
                    PlanNode::Output => {
                        // Batches arrive pre-buffered per producer, so
                        // this stays one extend per batch — not one
                        // lock acquisition per tuple. A streaming sink
                        // sees each batch the moment it lands, while
                        // upstream stages are still joining tiles.
                        let mut collected = Vec::new();
                        for batch in my_receivers[0].iter() {
                            if let Some(push) = sink {
                                push(&batch);
                            }
                            collected.extend(unbatch(batch));
                        }
                        *output.lock() = collected;
                    }
                    PlanNode::Selection(sel) => {
                        let node_preds = match crate::executor::resolve_selection_node(&sel, query)
                        {
                            Ok(p) => p,
                            Err(e) => return fail(e),
                        };
                        for c in my_receivers[0].iter().flat_map(unbatch) {
                            match satisfies_available(&node_preds, &c, schemas) {
                                Ok(true) => {
                                    if !out.push(c) {
                                        return;
                                    }
                                }
                                Ok(false) => {}
                                Err(e) => return fail(EngineError::Query(e)),
                            }
                        }
                        out.flush();
                    }
                    PlanNode::Service(svc) => {
                        let (base, client, cache) = stacks
                            .get(&svc.service)
                            .cloned()
                            .expect("every service node has a prepared stack");
                        // Background speculation: real threads warm the
                        // next chunk while the pipe loop joins this one.
                        // Keep-first stages stop at the first satisfying
                        // tuple, so speculating past them wastes calls.
                        let handle: Arc<dyn Service> =
                            if options.fetch.prefetch && svc.fetches > 1 && !svc.keep_first {
                                let recorded = match registry.service(&svc.service) {
                                    Ok(r) => r,
                                    Err(e) => return fail(EngineError::Service(e)),
                                };
                                // Daemon mode runs speculation on the
                                // shared pool (threads bounded by the
                                // engine state's lifetime); one-shot
                                // mode spawns per-fetch threads joined
                                // at stage end.
                                let mut pf = match exec_pool {
                                    Some(pool) => Prefetcher::new(base, svc.fetches as usize)
                                        .via_pool(pool.clone()),
                                    None => Prefetcher::new(base, svc.fetches as usize)
                                        .background(PREFETCH_INFLIGHT),
                                }
                                .with_recorder(recorded);
                                if let Some(c) = &client {
                                    pf = pf.respecting_breaker(c.clone());
                                }
                                if let Some(c) = &cache {
                                    pf = pf.probing(c.clone());
                                }
                                Arc::new(pf)
                            } else {
                                base
                            };
                        let bindings = report.bindings_of(&svc.atom);
                        let stage = PipeJoin {
                            atom: &svc.atom,
                            bindings: &bindings,
                            query_inputs: &query.inputs,
                            predicates,
                            schemas,
                            fetches: svc.fetches as usize,
                            keep_first: svc.keep_first,
                            tolerate_failures: degrade,
                            columnar: options.columnar,
                        };
                        let mut local = JoinStats::default();
                        for input in my_receivers[0].iter().flat_map(unbatch) {
                            match stage.run(std::slice::from_ref(&input), handle.as_ref()) {
                                Ok(stage_out) => {
                                    local.merge(&stage_out.stats);
                                    if stage_out.degraded {
                                        degraded.lock().insert(svc.service.clone());
                                    }
                                    for c in stage_out.results {
                                        if !out.push(c) {
                                            return;
                                        }
                                    }
                                }
                                Err(e) => return fail(EngineError::Join(e)),
                            }
                        }
                        join_stats.lock().merge(&local);
                        if let Ok(recorded) = registry.service(&svc.service) {
                            recorded.note_join_counters(
                                local.index_builds,
                                local.probes,
                                local.pairs_skipped,
                                local.tiles_pruned,
                                local.predicate_evals,
                                local.columns_scanned,
                                local.batch_evals,
                                local.rows_materialized,
                                local.chunks_fetched,
                                local.chunks_saved,
                                local.bound_checks,
                                local.intermediates_elided,
                            );
                        }
                        out.flush();
                    }
                    PlanNode::ParallelJoin(spec) if fused_group_nodes.is_some() => {
                        let _ = spec;
                        let group_nodes = fused_group_nodes.expect("guarded above");
                        let chain = chain_nodes.expect("tops always carry their chain");
                        // N-ary rendezvous: drain every group channel in
                        // group order.
                        let mut tagged = my_extra;
                        tagged.sort_by_key(|(gi, _)| *gi);
                        let groups: Vec<Vec<CompositeTuple>> = tagged
                            .iter()
                            .map(|(_, rx)| rx.iter().flat_map(unbatch).collect())
                            .collect();
                        // Per-stage parameters: this executor's joins run
                        // with h = 1 and chunk size 10 (see the unfused
                        // arm), so the replayed stages must too.
                        let mut stage_preds: Vec<Vec<ResolvedPredicate>> = Vec::new();
                        let mut stage_shape = Vec::new();
                        for j in &chain {
                            match plan_ref.node(*j) {
                                Ok(PlanNode::ParallelJoin(js)) => {
                                    stage_preds.push(
                                        js.predicates
                                            .iter()
                                            .cloned()
                                            .map(ResolvedPredicate::Join)
                                            .collect(),
                                    );
                                    stage_shape.push((js.invocation, js.completion));
                                }
                                Ok(_) => unreachable!("fusion chains hold join nodes only"),
                                Err(e) => return fail(EngineError::Plan(e)),
                            }
                        }
                        // All channels are closed by now, so every
                        // upstream degradation is already recorded.
                        let group_deg: Vec<bool> = if degrade {
                            let deg = degraded.lock();
                            group_nodes
                                .iter()
                                .map(|g| ancestors[g.0].iter().any(|s| deg.contains(s)))
                                .collect()
                        } else {
                            vec![false; group_nodes.len()]
                        };
                        let fused = if group_deg.iter().any(|d| *d) {
                            // Degraded inputs keep the cascade's
                            // per-stage pass-through semantics.
                            Ok(None)
                        } else {
                            let stages: Vec<NaryStage<'_>> = stage_preds
                                .iter()
                                .zip(&stage_shape)
                                .map(|(p, (inv, comp))| NaryStage {
                                    predicates: p,
                                    invocation: *inv,
                                    completion: *comp,
                                    h: 1,
                                    k: options.join_k,
                                    left_chunk: 10,
                                    right_chunk: 10,
                                })
                                .collect();
                            NaryJoin {
                                schemas,
                                tile_prune: options.join_index.tile_prune,
                                pool: join_pool.clone(),
                            }
                            .run(&groups, &stages)
                        };
                        let results = match fused {
                            Ok(Some(outcome)) => {
                                join_stats.lock().merge(&outcome.stats);
                                outcome.results
                            }
                            Ok(None) => {
                                // Ineligible or degraded: run the
                                // byte-identical binary cascade.
                                let mut cur = groups[0].clone();
                                let mut cur_deg = group_deg[0];
                                for (i, p) in stage_preds.iter().enumerate() {
                                    let exec = seco_join::ParallelJoinExecutor {
                                        predicates: p,
                                        schemas,
                                        invocation: stage_shape[i].0,
                                        completion: stage_shape[i].1,
                                        h: 1,
                                        k: options.join_k,
                                        options: options.join_index,
                                        columnar: options.columnar,
                                        pool: join_pool.clone(),
                                    };
                                    let mut sl = seco_join::executor::MemoryStream::new(cur, 10);
                                    let mut sr = seco_join::executor::MemoryStream::new(
                                        groups[i + 1].clone(),
                                        10,
                                    );
                                    let joined = if degrade {
                                        exec.run_with_degradation(
                                            &mut sl,
                                            &mut sr,
                                            cur_deg,
                                            group_deg[i + 1],
                                        )
                                    } else {
                                        exec.run(&mut sl, &mut sr)
                                    };
                                    match joined {
                                        Ok(o) => {
                                            join_stats.lock().merge(&o.stats);
                                            cur = o.results;
                                            cur_deg = cur_deg || group_deg[i + 1];
                                        }
                                        Err(e) => return fail(EngineError::Join(e)),
                                    }
                                }
                                cur
                            }
                            Err(e) => return fail(EngineError::Join(e)),
                        };
                        for c in results {
                            if !out.push(c) {
                                return;
                            }
                        }
                        out.flush();
                    }
                    PlanNode::ParallelJoin(spec) => {
                        // Rendezvous: drain both inputs.
                        let left: Vec<CompositeTuple> =
                            my_receivers[0].iter().flat_map(unbatch).collect();
                        let right: Vec<CompositeTuple> =
                            my_receivers[1].iter().flat_map(unbatch).collect();
                        let candidate_pairs = (left.len() * right.len()) as u64;
                        let join_predicates: Vec<ResolvedPredicate> = spec
                            .predicates
                            .iter()
                            .cloned()
                            .map(ResolvedPredicate::Join)
                            .collect();
                        let exec = seco_join::ParallelJoinExecutor {
                            predicates: &join_predicates,
                            schemas,
                            invocation: spec.invocation,
                            completion: spec.completion,
                            h: 1,
                            k: options.join_k,
                            options: options.join_index,
                            columnar: options.columnar,
                            pool: join_pool.clone(),
                        };
                        // Both channels are closed by now, so every
                        // upstream degradation is already recorded.
                        let (left_failed, right_failed) = if degrade {
                            let deg = degraded.lock();
                            (
                                ancestors[my_preds[0].0].iter().any(|s| deg.contains(s)),
                                ancestors[my_preds[1].0].iter().any(|s| deg.contains(s)),
                            )
                        } else {
                            (false, false)
                        };
                        let rank = options.rank_join
                            && options.join_k > 0
                            && !(left_failed || right_failed);
                        let joined = if rank {
                            // Rank join needs score-sorted streams;
                            // batches arrive in pipeline order.
                            let mut left = left;
                            let mut right = right;
                            left.sort_by(score_order);
                            right.sort_by(score_order);
                            let mut sl = seco_join::executor::MemoryStream::new(left, 10);
                            let mut sr = seco_join::executor::MemoryStream::new(right, 10);
                            RankJoin {
                                join: exec,
                                space: None,
                            }
                            .run(&mut sl, &mut sr)
                        } else {
                            let mut sl = seco_join::executor::MemoryStream::new(left, 10);
                            let mut sr = seco_join::executor::MemoryStream::new(right, 10);
                            if degrade {
                                exec.run_with_degradation(
                                    &mut sl,
                                    &mut sr,
                                    left_failed,
                                    right_failed,
                                )
                            } else {
                                exec.run(&mut sl, &mut sr)
                            }
                        };
                        match joined {
                            Ok(outcome) => {
                                join_stats.lock().merge(&outcome.stats);
                                crate::executor::note_parallel_join(
                                    plan_ref,
                                    registry,
                                    id,
                                    candidate_pairs,
                                    outcome.results.len() as u64,
                                );
                                for c in outcome.results {
                                    if !out.push(c) {
                                        return;
                                    }
                                }
                                out.flush();
                            }
                            Err(e) => fail(EngineError::Join(e)),
                        }
                    }
                }
            }));
        }
    }
    // One task per live plan node. On a pooled run the tasks go to the
    // pool's elastic blocking tier — threads there are reused across
    // queries and bounded by the pool's lifetime; without a pool this
    // is the historical scoped-thread fan-out. Both join every task
    // before returning.
    match exec_pool {
        Some(pool) => pool.scope_blocking(node_tasks),
        None => {
            std::thread::scope(|scope| {
                for task in node_tasks {
                    scope.spawn(task);
                }
            });
        }
    }

    if let Some(e) = first_error.lock().take() {
        return Err(e);
    }
    Ok(ParallelOutcome {
        results: output.into_inner(),
        degraded: degraded.into_inner().into_iter().collect(),
        join_stats: join_stats.into_inner(),
        replanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_optimizer::{optimize, CostMetric};
    use seco_query::builder::running_example;
    use seco_services::domains::entertainment;

    #[test]
    fn parallel_matches_sequential_results_as_a_set() {
        let reg = entertainment::build_registry(1).unwrap();
        let q = running_example();
        let best = optimize(&q, &reg, CostMetric::RequestCount).unwrap();
        let sequential =
            crate::executor::execute_plan(&best.plan, &reg, EngineConfig::default()).unwrap();
        let parallel = execute_parallel(&best.plan, &reg, EngineConfig::default()).unwrap();
        assert_eq!(parallel.len(), sequential.results.len());
        for c in &parallel {
            assert!(
                sequential.results.iter().any(|s| {
                    q.atoms
                        .iter()
                        .all(|a| s.component(&a.alias) == c.component(&a.alias))
                }),
                "parallel emitted {c} which the sequential run lacks"
            );
        }
    }

    #[test]
    fn failures_in_workers_surface_as_errors() {
        use seco_services::synthetic::{DomainMap, SyntheticService};
        use std::sync::Arc;
        // A registry whose Movie service always fails.
        let mut reg = seco_services::ServiceRegistry::new();
        reg.register_service(Arc::new(
            SyntheticService::new(entertainment::movie_interface(), DomainMap::new(), 1)
                .with_failure_every(1),
        ))
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(
            entertainment::theatre_interface(),
            DomainMap::new(),
            2,
        )))
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(
            entertainment::restaurant_interface(),
            DomainMap::new(),
            3,
        )))
        .unwrap();
        reg.register_pattern(entertainment::shows_pattern())
            .unwrap();
        reg.register_pattern(entertainment::dinner_place_pattern())
            .unwrap();

        let q = running_example();
        // Reuse a plan optimized against a healthy registry.
        let healthy = entertainment::build_registry(1).unwrap();
        let best = optimize(&q, &healthy, CostMetric::RequestCount).unwrap();
        let err = execute_parallel(&best.plan, &reg, EngineConfig::default()).unwrap_err();
        assert!(
            matches!(err, EngineError::Join(_) | EngineError::Service(_)),
            "{err}"
        );

        // The same downed registry under Degrade mode completes and
        // names the culprit instead of erroring.
        let opts = EngineConfig {
            failure_mode: crate::executor::FailureMode::Degrade,
            ..Default::default()
        };
        let outcome = execute_parallel_with(&best.plan, &reg, opts).unwrap();
        assert_eq!(outcome.degraded, vec!["Movie1".to_string()]);
    }

    #[test]
    fn degraded_parallel_join_passes_the_surviving_branch_through() {
        use seco_model::{Comparator, Value};
        use seco_plan::{Completion, Invocation, JoinSpec, PlanNode, QueryPlan, ServiceNode};
        use seco_query::QueryBuilder;
        use seco_services::domains::travel;
        use seco_services::synthetic::{DomainMap, FaultProfile, SyntheticService};
        use std::sync::Arc;
        // Flight is hard down; the parallel join should pass the Hotel
        // branch through instead of returning nothing. The healthy
        // services mirror travel::build_registry(5).
        let mut reg = seco_services::ServiceRegistry::new();
        let city = seco_services::ValueDomain::new("city", 12);
        let conf_domains = DomainMap::new().with(seco_model::AttributePath::atomic("City"), city);
        reg.register_service(Arc::new(SyntheticService::new(
            travel::conference_interface(),
            conf_domains,
            5 ^ 0x11,
        )))
        .unwrap();
        reg.register_service(Arc::new(
            SyntheticService::new(travel::flight_interface(), DomainMap::new(), 5 ^ 0x13)
                .with_fault_profile(FaultProfile {
                    outage: Some((0, u64::MAX)),
                    ..FaultProfile::none()
                }),
        ))
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(
            travel::hotel_interface(),
            DomainMap::new(),
            5 ^ 0x14,
        )))
        .unwrap();
        reg.register_pattern(travel::reached_by_pattern()).unwrap();
        reg.register_pattern(travel::stay_at_pattern()).unwrap();
        reg.register_pattern(travel::same_trip_pattern()).unwrap();

        let q = QueryBuilder::new()
            .atom("C", "Conference1")
            .atom("F", "Flight1")
            .atom("H", "Hotel1")
            .pattern("ReachedBy", "C", "F")
            .pattern("StayAt", "C", "H")
            .pattern("SameTrip", "F", "H")
            .select_const("C", "Topic", Comparator::Eq, Value::text("ai"))
            .k(5)
            .build()
            .unwrap();
        let joins = q.expanded_joins(&reg).unwrap();
        let same_trip: Vec<_> = joins
            .iter()
            .filter(|j| j.connects("F", "H"))
            .cloned()
            .collect();
        let mut p = QueryPlan::new(q);
        let c = p.add(PlanNode::Service(ServiceNode::new("C", "Conference1")));
        let f = p.add(PlanNode::Service(ServiceNode::new("F", "Flight1")));
        let h = p.add(PlanNode::Service(ServiceNode::new("H", "Hotel1")));
        let j = p.add(PlanNode::ParallelJoin(JoinSpec {
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Triangular,
            predicates: same_trip,
            selectivity: 1.0,
        }));
        p.connect(p.input(), c).unwrap();
        p.connect(c, f).unwrap();
        p.connect(c, h).unwrap();
        p.connect(f, j).unwrap();
        p.connect(h, j).unwrap();
        p.connect(j, p.output()).unwrap();

        let opts = EngineConfig {
            join_k: 5,
            failure_mode: crate::executor::FailureMode::Degrade,
            ..Default::default()
        };
        let outcome = execute_parallel_with(&p, &reg, opts).unwrap();
        assert_eq!(outcome.degraded, vec!["Flight1".to_string()]);
        assert!(!outcome.results.is_empty(), "the hotel branch must survive");
        for combo in &outcome.results {
            assert!(combo.component("H").is_some());
            assert!(
                combo.component("F").is_none(),
                "the downed branch contributes nothing"
            );
        }
        // The deterministic executor agrees on the degradation.
        let seq = crate::executor::execute_plan(&p, &reg, opts).unwrap();
        assert_eq!(seq.degraded, vec!["Flight1".to_string()]);
        assert!(!seq.results.is_empty());
    }
}
