//! # seco-engine — execution of fully instantiated query plans
//!
//! "The execution environment […] is a system capable of executing query
//! plans: the system can execute requests, collect their results, and
//! integrate them progressively, forming the answers as combinations of
//! partial invocation results" (§3).
//!
//! Two executors are provided:
//!
//! * [`executor::execute_plan`] — deterministic, single-threaded
//!   dataflow execution with virtual-time accounting; every experiment
//!   uses it because runs are bit-for-bit reproducible;
//! * [`parallel::execute_parallel`] — a pipelined executor that runs
//!   every service node in its own thread connected by bounded
//!   crossbeam channels, demonstrating the "data shipped in pipelines
//!   from one service to another, so as to maximize parallelism" (§2.2)
//!   design on real OS threads.
//!
//! [`output`] assembles results under the global ranking function:
//! emission order is preserved (the non-blocking dataflow of §4.1) and
//! `top_k` reorders on demand, which is exactly the chapter's
//! distinction between "the top-k tuples" and "k good tuples, emitted
//! with an approximation of the total order".

pub mod clock;
pub mod config;
pub mod error;
pub mod executor;
pub mod output;
pub mod parallel;
pub mod shared;
pub mod trace;

pub use clock::{drive_pair, Clock, ClockPacing};
pub use config::EngineConfig;
pub use error::EngineError;
pub use executor::{execute_plan, execute_plan_shared, ExecutionResult, FailureMode, FetchOptions};
pub use output::ResultSet;
pub use parallel::{
    execute_parallel, execute_parallel_session, execute_parallel_with, BatchSink, ParallelOutcome,
};
pub use seco_join::{ColumnarOptions, JoinIndexMode, JoinIndexOptions, JoinStats};
pub use shared::SharedState;
pub use trace::{ExecutionTrace, TraceEvent};

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
