//! Long-lived, cross-request execution state.
//!
//! A one-shot CLI run builds its per-service fetch stacks — the
//! resilient [`ServiceClient`] (one circuit breaker per service) under
//! the sharded, request-coalescing [`CachingService`] — from scratch,
//! uses them for a single plan, and throws them away. Those are
//! exactly the assets a long-running daemon wants to keep: warm
//! response caches, accumulated breaker state, and a stable virtual
//! timeline. [`SharedState`] owns them behind `Arc`s so any number of
//! concurrent query sessions can execute against the same stacks, and
//! every cache hit earned by one request benefits the next.
//!
//! The state also owns the optional shared [`seco_exec::ExecPool`]:
//! every thread a daemon execution needs — morsel workers for the join
//! kernels, background prefetch speculation, pipelined plan-node
//! fan-out — lives exactly as long as this value. Dropping it (or
//! calling [`SharedState::shutdown`]) stops and joins the pool's
//! workers — nothing spawned on behalf of an execution can outlive the
//! engine state that requested it.
//!
//! Accounting caveat: the virtual clock is shared too, so `busy_ms` /
//! `critical_ms` deltas measured by concurrent executions overlap on
//! one daemon-wide timeline. Results, call counts, and cache counters
//! stay exact; per-request virtual-time attribution is only meaningful
//! when requests run serially (the one-shot executors are unaffected —
//! they build a private `SharedState` per pass).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use seco_exec::ExecPool;
use seco_services::{CachingService, CallRecorder, Service, ServiceClient, VirtualClock};

use crate::config::EngineConfig;

/// One service's prepared fetch stack: the outermost handle to call,
/// plus direct handles on the middleware layers that need consulting
/// (breaker probes, cache probes).
pub(crate) type Stack = (
    Arc<dyn Service>,
    Option<Arc<ServiceClient>>,
    Option<Arc<CachingService>>,
);

/// Clock binding of a stack's resilient client: the deterministic
/// executor drives a virtual timeline, the pipelined executor real
/// wall time. The two produce distinct breaker/cooldown dynamics, so a
/// service invoked by both executors keeps one stack per mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ClockMode {
    Virtual,
    Wall,
}

/// Cross-request execution state: per-service fetch stacks, the shared
/// virtual clock, and the daemon's work-stealing executor pool — one
/// pool shared by every session's morsels, prefetches, and plan-node
/// tasks. Cheap to share (`Arc<SharedState>`), safe to use from
/// concurrent sessions.
///
/// Stacks are built lazily from the *first* execution's
/// [`EngineConfig`] that touches each service; a daemon runs all
/// sessions under one config, so later executions find the stack
/// ready-made and warm.
pub struct SharedState {
    clock: Arc<VirtualClock>,
    pool: Option<Arc<ExecPool>>,
    stacks: Mutex<BTreeMap<(String, ClockMode), Stack>>,
}

impl SharedState {
    /// Fresh state with no executor pool: joins run serially and
    /// background prefetches spawn short-lived threads exactly as the
    /// one-shot executors always did.
    pub fn new() -> Self {
        SharedState {
            clock: VirtualClock::new(),
            pool: None,
            stacks: Mutex::new(BTreeMap::new()),
        }
    }

    /// Daemon-grade state: join morsels, background speculation, and
    /// plan-node fan-out all run on one work-stealing pool of
    /// `exec_workers` threads owned by this value and stopped when it
    /// drops. `exec_workers = 1` keeps the pool for prefetch/fan-out
    /// but executions take the exact serial join code path.
    pub fn for_daemon(exec_workers: usize) -> Self {
        SharedState {
            clock: VirtualClock::new(),
            pool: Some(Arc::new(ExecPool::new(exec_workers))),
            stacks: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The shared executor pool, when this state owns one.
    pub fn exec_pool(&self) -> Option<&Arc<ExecPool>> {
        self.pool.as_ref()
    }

    /// Number of prepared per-service stacks (diagnostics).
    pub fn stack_count(&self) -> usize {
        self.stacks.lock().len()
    }

    /// Stops the executor pool: queued work is drained, workers are
    /// joined, and further submissions are refused. Prepared stacks
    /// stay usable — demand fetches never depended on the pool.
    /// Idempotent; also implied by drop.
    pub fn shutdown(&self) {
        if let Some(pool) = &self.pool {
            pool.shutdown();
        }
    }

    /// Returns `service`'s prepared stack, building it on first use
    /// from `options` (resilient client when configured, sharded cache
    /// when configured, bare recorder otherwise).
    pub(crate) fn stack_for(
        &self,
        service: &str,
        recorded: &Arc<CallRecorder>,
        options: &EngineConfig,
        wall_clock: bool,
    ) -> Stack {
        let mode = if wall_clock {
            ClockMode::Wall
        } else {
            ClockMode::Virtual
        };
        let key = (service.to_owned(), mode);
        let mut stacks = self.stacks.lock();
        if let Some(stack) = stacks.get(&key) {
            return stack.clone();
        }
        let client = options.client.map(|cfg| {
            let builder = ServiceClient::for_recorded(recorded.clone()).config(cfg);
            let builder = if wall_clock {
                builder.wall_clock()
            } else {
                builder.virtual_clock(self.clock.clone())
            };
            Arc::new(builder.build())
        });
        let inner: Arc<dyn Service> = match &client {
            Some(c) => c.clone(),
            None => recorded.clone(),
        };
        let cache = options.fetch.cache().map(|(shards, capacity)| {
            Arc::new(
                CachingService::sharded(inner.clone(), capacity, shards)
                    .with_recorder(recorded.clone()),
            )
        });
        let base: Arc<dyn Service> = match &cache {
            Some(c) => c.clone(),
            None => inner,
        };
        let stack = (base, client, cache);
        stacks.insert(key, stack.clone());
        stack
    }
}

impl Default for SharedState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_are_built_once_per_service_and_mode() {
        let state = SharedState::new();
        let registry =
            seco_services::domains::entertainment::build_registry(7).expect("registry builds");
        let recorded = registry.service("Movie1").expect("service exists");
        let options = EngineConfig::default().cache_shards(4);
        let (a, _, cache_a) = state.stack_for("Movie1", &recorded, &options, false);
        let (b, _, cache_b) = state.stack_for("Movie1", &recorded, &options, false);
        assert!(Arc::ptr_eq(&a, &b), "same stack on repeat lookup");
        assert!(Arc::ptr_eq(
            cache_a.as_ref().expect("cache configured"),
            cache_b.as_ref().expect("cache configured"),
        ));
        assert_eq!(state.stack_count(), 1);
        // Wall-clock mode is a distinct stack (distinct breaker rules).
        let (w, _, _) = state.stack_for("Movie1", &recorded, &options, true);
        assert!(!Arc::ptr_eq(&a, &w));
        assert_eq!(state.stack_count(), 2);
    }

    #[test]
    fn shutdown_stops_the_daemon_pool() {
        let state = SharedState::for_daemon(2);
        let pool = state.exec_pool().expect("daemon state has a pool");
        assert_eq!(pool.threads_alive(), 2);
        state.shutdown();
        assert_eq!(pool.threads_alive(), 0);
    }
}
