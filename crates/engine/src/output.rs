//! Result assembly under the global ranking function.
//!
//! §3.2: "Result tuples can be guaranteed to be the top-k tuples
//! according to the ranking function, or instead be just k good tuples,
//! emitted with an approximation of the total order." The engine's
//! executors emit in strategy order (non-blocking); [`ResultSet`] keeps
//! that order and offers ranked views on demand, plus the quality
//! measurements the E6/E7 experiments report.

use seco_model::CompositeTuple;
use seco_query::RankingFunction;

/// The assembled answers of one query execution.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Combinations in emission order.
    pub tuples: Vec<CompositeTuple>,
    /// The query's global ranking function.
    pub ranking: RankingFunction,
    /// Services whose failures degraded the answer (sorted; empty on a
    /// clean run). A non-empty list flags the tuples as a *partial*
    /// answer: correct combinations, but possibly missing some that the
    /// failed services would have contributed.
    pub degraded: Vec<String>,
}

impl ResultSet {
    /// Wraps an emission-ordered result list.
    pub fn new(tuples: Vec<CompositeTuple>, ranking: RankingFunction) -> Self {
        ResultSet {
            tuples,
            ranking,
            degraded: Vec::new(),
        }
    }

    /// Tags the result set with the services that degraded it.
    pub fn with_degraded(mut self, degraded: Vec<String>) -> Self {
        self.degraded = degraded;
        self
    }

    /// True when some branch failed and the results are partial.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// Number of combinations.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no combination was produced.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The first `k` answers *in emission order* — what a non-blocking
    /// interface shows while extraction continues.
    pub fn first_k(&self, k: usize) -> &[CompositeTuple] {
        &self.tuples[..k.min(self.tuples.len())]
    }

    /// The best `k` answers under the global ranking function (a sort
    /// over everything emitted so far — the "top-k of the extracted
    /// prefix", not a guaranteed global top-k).
    pub fn top_k(&self, k: usize) -> Vec<CompositeTuple> {
        let mut sorted = self.tuples.clone();
        sorted.sort_by(|a, b| {
            self.ranking
                .score(b)
                .partial_cmp(&self.ranking.score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        sorted.truncate(k);
        sorted
    }

    /// Fraction of emission-order pairs that are inverted w.r.t. the
    /// global ranking (0 = the emission already was perfectly ranked).
    pub fn ranking_inversion_rate(&self) -> f64 {
        let n = self.tuples.len();
        if n < 2 {
            return 0.0;
        }
        let scores: Vec<f64> = self.tuples.iter().map(|t| self.ranking.score(t)).collect();
        let mut inversions = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                if scores[i] < scores[j] - 1e-12 {
                    inversions += 1;
                }
            }
        }
        inversions as f64 / (n * (n - 1) / 2) as f64
    }

    /// How many of the true top-k (by ranking, within the emitted set)
    /// appear among the first k emitted — the precision@k of the
    /// emission order.
    pub fn precision_at_k(&self, k: usize) -> f64 {
        if k == 0 || self.tuples.is_empty() {
            return 1.0;
        }
        let truth = self.top_k(k);
        let head = self.first_k(k);
        let hits = head.iter().filter(|c| truth.contains(c)).count();
        hits as f64 / k.min(self.tuples.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::{Adornment, AttributeDef, DataType, ServiceSchema, Tuple};

    fn composite(score: f64, rank: usize) -> CompositeTuple {
        let schema = ServiceSchema::new(
            "S",
            vec![AttributeDef::atomic("A", DataType::Int, Adornment::Output)],
        )
        .unwrap();
        CompositeTuple::single(
            "X",
            Tuple::builder(&schema)
                .score(score)
                .source_rank(rank)
                .build()
                .unwrap(),
        )
    }

    fn set(scores: &[f64]) -> ResultSet {
        let tuples = scores
            .iter()
            .enumerate()
            .map(|(i, s)| composite(*s, i))
            .collect();
        ResultSet::new(tuples, RankingFunction::uniform(1))
    }

    #[test]
    fn first_k_preserves_emission_order() {
        let rs = set(&[0.5, 0.9, 0.1]);
        let head = rs.first_k(2);
        assert_eq!(head[0].components[0].score, 0.5);
        assert_eq!(head[1].components[0].score, 0.9);
        assert_eq!(rs.first_k(99).len(), 3);
        assert_eq!(rs.len(), 3);
        assert!(!rs.is_empty());
    }

    #[test]
    fn top_k_sorts_by_ranking() {
        let rs = set(&[0.5, 0.9, 0.1]);
        let top = rs.top_k(2);
        assert_eq!(top[0].components[0].score, 0.9);
        assert_eq!(top[1].components[0].score, 0.5);
    }

    #[test]
    fn inversion_rate_bounds() {
        assert_eq!(set(&[0.9, 0.5, 0.1]).ranking_inversion_rate(), 0.0);
        assert_eq!(set(&[0.1, 0.5, 0.9]).ranking_inversion_rate(), 1.0);
        assert_eq!(set(&[]).ranking_inversion_rate(), 0.0);
        let mid = set(&[0.5, 0.9, 0.1]).ranking_inversion_rate();
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn precision_at_k() {
        // Emission [0.9, 0.8, 0.1]: the first 2 ARE the top 2.
        assert_eq!(set(&[0.9, 0.8, 0.1]).precision_at_k(2), 1.0);
        // Emission [0.1, 0.9, 0.8]: only one of the top 2 in the head.
        assert_eq!(set(&[0.1, 0.9, 0.8]).precision_at_k(2), 0.5);
        assert_eq!(set(&[]).precision_at_k(3), 1.0);
        assert_eq!(set(&[0.3]).precision_at_k(0), 1.0);
    }
}
