//! A shared work-stealing executor pool for morsel-driven parallelism.
//!
//! One [`ExecPool`] per daemon (or per `seco run` invocation) replaces
//! every bespoke thread the engine used to spawn: the optimizer's
//! phase-2 search workers, the prefetcher's background fetches, the
//! parallel executor's per-node fan-out, and — new with this crate —
//! the join kernels' own morsels. The pool has two tiers:
//!
//! * a **compute tier**: a fixed set of workers (one per configured
//!   core), each with its own deque, plus a global injector. Idle
//!   workers first drain their own deque from the front, then the
//!   injector, then steal from the *back* of a sibling's deque.
//!   Compute jobs must never block on other compute jobs' channels —
//!   they are leaves (morsels, optimizer probes, detached prefetches).
//! * a **blocking tier**: an elastic set of cached threads for tasks
//!   that rendezvous with each other over channels (the parallel
//!   executor's plan nodes). Running those on a fixed pool would
//!   deadlock, so the pool spawns blocking threads on demand, parks
//!   them when idle, and joins them on shutdown.
//!
//! Determinism is the caller's job — [`ExecPool::scope_run`] returns
//! results in task-submission order so callers can reduce in a fixed
//! order regardless of which worker ran which morsel — but the pool
//! guarantees the plumbing: every submitted job runs exactly once
//! (even during shutdown the queues are drained before workers exit),
//! panics propagate to the scope owner, and `shutdown()` leaves zero
//! live threads behind.
//!
//! The pool also keeps a **virtual makespan** alongside measured wall
//! time. Every `scope_run` batch records each morsel's measured
//! duration; the batch contributes `sum` to `serial_micros` and
//! `max(longest_morsel, sum / workers)` to `makespan_micros` — the
//! classic greedy-scheduling bound. On a many-core host the measured
//! wall clock and the modeled makespan agree; on a starved host (CI
//! containers often expose a single core) the model still reports the
//! speedup the decomposition *admits*, from real measured morsel
//! times. Benchmarks report both, labeled.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Maximum queued detached jobs (prefetch speculation). Beyond this
/// the pool refuses new detached work instead of growing an unbounded
/// backlog — the same guardrail the dedicated `PrefetchPool` had.
const DETACHED_BACKLOG: usize = 64;

/// Snapshot of the scheduler counters, for `/stats` and `seco stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Configured compute workers.
    pub workers: usize,
    /// Jobs currently queued (injector + all worker deques).
    pub queue_depth: usize,
    /// Jobs taken from a deque other than the thief's own.
    pub steals: u64,
    /// Total jobs executed on the compute tier.
    pub morsels: u64,
    /// Milliseconds of measured compute-tier work.
    pub busy_ms: u64,
    /// Sum of per-batch morsel times (the serial cost of all batches).
    pub serial_micros: u64,
    /// Sum of per-batch `max(longest morsel, sum / workers)` — the
    /// greedy-scheduling lower bound on parallel wall time.
    pub makespan_micros: u64,
    /// Detached jobs accepted / refused (backlog full or shut down).
    pub detached_submitted: u64,
    /// Detached jobs refused.
    pub detached_rejected: u64,
    /// Live threads: compute workers + cached blocking threads.
    pub threads_alive: usize,
}

struct Inner {
    workers: usize,
    /// Per-worker deques; owners pop the front, thieves pop the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Global injector for detached jobs and caller overflow.
    injector: Mutex<VecDeque<Job>>,
    /// Park gate: compute workers wait here when every queue is empty.
    gate: Mutex<()>,
    cv: Condvar,
    stop: AtomicBool,
    /// Jobs queued but not yet claimed, across injector + deques.
    pending: AtomicUsize,
    /// Round-robin cursor for scope_run distribution.
    cursor: AtomicUsize,

    steals: AtomicU64,
    morsels: AtomicU64,
    busy_micros: AtomicU64,
    serial_micros: AtomicU64,
    makespan_micros: AtomicU64,
    detached_submitted: AtomicU64,
    detached_rejected: AtomicU64,
    detached_backlog: AtomicUsize,
    threads_alive: AtomicUsize,

    /// Blocking tier: elastic queue + free-thread balance. The balance
    /// is `ready threads - queued jobs`; a submitter that drives it
    /// negative spawns a thread so rendezvousing tasks can never wait
    /// on each other for a worker.
    blocking_queue: Mutex<VecDeque<Job>>,
    blocking_cv: Condvar,
    blocking_free: AtomicI64,
}

/// The shared two-tier worker pool. See the crate docs for the model.
pub struct ExecPool {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    done: AtomicBool,
}

struct Slot<T> {
    out: Mutex<Option<thread::Result<T>>>,
    micros: AtomicU64,
}

impl ExecPool {
    /// Builds a pool with `workers` compute workers (minimum 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            workers,
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            gate: Mutex::new(()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            morsels: AtomicU64::new(0),
            busy_micros: AtomicU64::new(0),
            serial_micros: AtomicU64::new(0),
            makespan_micros: AtomicU64::new(0),
            detached_submitted: AtomicU64::new(0),
            detached_rejected: AtomicU64::new(0),
            detached_backlog: AtomicUsize::new(0),
            threads_alive: AtomicUsize::new(0),
            blocking_queue: Mutex::new(VecDeque::new()),
            blocking_cv: Condvar::new(),
            blocking_free: AtomicI64::new(0),
        });
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let inner = Arc::clone(&inner);
            inner.threads_alive.fetch_add(1, Ordering::SeqCst);
            handles.push(
                thread::Builder::new()
                    .name(format!("seco-exec-{idx}"))
                    .spawn(move || {
                        worker_loop(&inner, idx);
                        inner.threads_alive.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn exec worker"),
            );
        }
        ExecPool {
            inner,
            handles: Mutex::new(handles),
            done: AtomicBool::new(false),
        }
    }

    /// Number of compute workers. Callers gate their parallel paths on
    /// `parallelism() > 1`: a one-worker pool exists only so detached
    /// prefetch jobs have somewhere to run.
    pub fn parallelism(&self) -> usize {
        self.inner.workers
    }

    /// Live pool threads (compute + cached blocking). Zero after
    /// [`ExecPool::shutdown`].
    pub fn threads_alive(&self) -> usize {
        self.inner.threads_alive.load(Ordering::SeqCst)
    }

    /// Current scheduler counters.
    pub fn stats(&self) -> ExecStats {
        let i = &self.inner;
        ExecStats {
            workers: i.workers,
            queue_depth: i.pending.load(Ordering::SeqCst),
            steals: i.steals.load(Ordering::SeqCst),
            morsels: i.morsels.load(Ordering::SeqCst),
            busy_ms: i.busy_micros.load(Ordering::SeqCst) / 1000,
            serial_micros: i.serial_micros.load(Ordering::SeqCst),
            makespan_micros: i.makespan_micros.load(Ordering::SeqCst),
            detached_submitted: i.detached_submitted.load(Ordering::SeqCst),
            detached_rejected: i.detached_rejected.load(Ordering::SeqCst),
            threads_alive: i.threads_alive.load(Ordering::SeqCst),
        }
    }

    /// Runs `tasks` on the compute tier and returns their results in
    /// task order. The caller participates: while waiting it pops and
    /// runs queued jobs, so `scope_run` makes progress even on a pool
    /// whose workers are all busy (or on a one-worker pool running the
    /// caller's own morsels). The first panicking task's payload is
    /// resumed after every task has finished.
    pub fn scope_run<'env, T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let slots: Arc<Vec<Slot<T>>> = Arc::new(
            (0..n)
                .map(|_| Slot {
                    out: Mutex::new(None),
                    micros: AtomicU64::new(0),
                })
                .collect(),
        );
        let remaining = Arc::new((Mutex::new(n), Condvar::new()));
        for (i, f) in tasks.into_iter().enumerate() {
            let slots = Arc::clone(&slots);
            let remaining = Arc::clone(&remaining);
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let t0 = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(f));
                slots[i]
                    .micros
                    .store(t0.elapsed().as_micros() as u64, Ordering::SeqCst);
                *slots[i].out.lock().unwrap() = Some(result);
                // Drop our slots clone *before* releasing the latch so
                // the scope owner can unwrap the Arc immediately.
                drop(slots);
                let mut left = remaining.0.lock().unwrap();
                *left -= 1;
                if *left == 0 {
                    remaining.1.notify_all();
                }
            });
            // SAFETY: this scope blocks until every job has run (the
            // `remaining` latch only reaches zero after each closure
            // completes, and workers drain their queues even during
            // shutdown), so the `'env` borrows the closure captures
            // outlive every use. This is the same lifetime erasure
            // `std::thread::scope` performs, with the join expressed
            // as a latch instead of thread handles.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            self.push_compute(job);
        }
        // Participate: run queued jobs (ours or anyone's — they are
        // all leaves) until the latch clears.
        loop {
            if *remaining.0.lock().unwrap() == 0 {
                break;
            }
            if let Some(job) = self.pop_any() {
                run_job(&self.inner, job);
                continue;
            }
            let guard = remaining.0.lock().unwrap();
            if *guard > 0 {
                drop(
                    remaining
                        .1
                        .wait_timeout(guard, std::time::Duration::from_millis(1))
                        .unwrap(),
                );
            }
        }
        // Batch accounting: serial cost vs the greedy-schedule bound.
        let times: Vec<u64> = slots
            .iter()
            .map(|s| s.micros.load(Ordering::SeqCst))
            .collect();
        let sum: u64 = times.iter().sum();
        let max: u64 = times.iter().copied().max().unwrap_or(0);
        let ideal = sum / self.inner.workers as u64;
        self.inner.serial_micros.fetch_add(sum, Ordering::SeqCst);
        self.inner
            .makespan_micros
            .fetch_add(max.max(ideal), Ordering::SeqCst);

        let slots = Arc::try_unwrap(slots).unwrap_or_else(|_| {
            unreachable!("all scope jobs completed; no clones outlive the latch")
        });
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            match slot.out.into_inner().unwrap().expect("scope job ran") {
                Ok(v) => out.push(v),
                Err(p) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    }

    /// Queues a detached fire-and-forget job (prefetch speculation) on
    /// the compute tier. Returns `false` — without running the job —
    /// when the pool is shutting down or the detached backlog is full.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let inner = &self.inner;
        if inner.stop.load(Ordering::SeqCst) {
            inner.detached_rejected.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        if inner.detached_backlog.fetch_add(1, Ordering::SeqCst) >= DETACHED_BACKLOG {
            inner.detached_backlog.fetch_sub(1, Ordering::SeqCst);
            inner.detached_rejected.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        inner.detached_submitted.fetch_add(1, Ordering::SeqCst);
        let backlog = Arc::clone(inner);
        self.push_injector(Box::new(move || {
            // The job itself re-checks any cooperative stop flag it
            // carries; the pool only guarantees it runs once.
            job();
            backlog.detached_backlog.fetch_sub(1, Ordering::SeqCst);
        }));
        true
    }

    /// Runs channel-rendezvous tasks (plan-node bodies) on the elastic
    /// blocking tier and waits for all of them. Threads are spawned on
    /// demand, cached between scopes, and joined on shutdown. The first
    /// panicking task's payload is resumed after every task finishes.
    pub fn scope_blocking<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        let remaining = Arc::new((Mutex::new(n), Condvar::new()));
        let panic: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>> = Arc::new(Mutex::new(None));
        for f in tasks {
            let remaining = Arc::clone(&remaining);
            let panic = Arc::clone(&panic);
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(f));
                if let Err(p) = result {
                    let mut slot = panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
                let mut left = remaining.0.lock().unwrap();
                *left -= 1;
                if *left == 0 {
                    remaining.1.notify_all();
                }
            });
            // SAFETY: as in `scope_run` — this scope blocks on the
            // latch until every task has completed, so `'env` borrows
            // outlive every use.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            // Balance goes non-positive => no ready thread for this
            // task: spawn one and credit the capacity it adds, so the
            // pool converges on its high-water thread count instead of
            // re-spawning for every scope.
            if self.inner.blocking_free.fetch_sub(1, Ordering::SeqCst) <= 0 {
                self.inner.blocking_free.fetch_add(1, Ordering::SeqCst);
                self.spawn_blocking_thread();
            }
            let mut q = self.inner.blocking_queue.lock().unwrap();
            q.push_back(job);
            drop(q);
            self.inner.blocking_cv.notify_one();
        }
        let mut left = remaining.0.lock().unwrap();
        while *left > 0 {
            left = remaining.1.wait(left).unwrap();
        }
        drop(left);
        let p = panic.lock().unwrap().take();
        if let Some(p) = p {
            resume_unwind(p);
        }
    }

    fn spawn_blocking_thread(&self) {
        let inner = Arc::clone(&self.inner);
        inner.threads_alive.fetch_add(1, Ordering::SeqCst);
        let handle = thread::Builder::new()
            .name("seco-exec-blk".into())
            .spawn(move || {
                loop {
                    let mut q = inner.blocking_queue.lock().unwrap();
                    let job = loop {
                        if let Some(job) = q.pop_front() {
                            break Some(job);
                        }
                        if inner.stop.load(Ordering::SeqCst) {
                            break None;
                        }
                        q = inner.blocking_cv.wait(q).unwrap();
                    };
                    drop(q);
                    match job {
                        Some(job) => {
                            job();
                            inner.blocking_free.fetch_add(1, Ordering::SeqCst);
                        }
                        None => break,
                    }
                }
                inner.threads_alive.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn blocking worker");
        self.handles.lock().unwrap().push(handle);
    }

    /// Stops and joins every pool thread. Queued compute jobs are
    /// drained (run, not dropped) before workers exit, so in-flight
    /// scopes complete. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        if self.done.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.stop.store(true, Ordering::SeqCst);
        {
            let _g = self.inner.gate.lock().unwrap();
            self.inner.cv.notify_all();
        }
        {
            let _q = self.inner.blocking_queue.lock().unwrap();
            self.inner.blocking_cv.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn push_compute(&self, job: Job) {
        let inner = &self.inner;
        let idx = inner.cursor.fetch_add(1, Ordering::SeqCst) % inner.workers;
        inner.queues[idx].lock().unwrap().push_back(job);
        inner.pending.fetch_add(1, Ordering::SeqCst);
        let _g = inner.gate.lock().unwrap();
        inner.cv.notify_all();
    }

    fn push_injector(&self, job: Job) {
        let inner = &self.inner;
        inner.injector.lock().unwrap().push_back(job);
        inner.pending.fetch_add(1, Ordering::SeqCst);
        let _g = inner.gate.lock().unwrap();
        inner.cv.notify_all();
    }

    /// Pops any queued compute job: injector first, then worker deques
    /// from the back (a steal). Used by participating scope callers.
    fn pop_any(&self) -> Option<Job> {
        let inner = &self.inner;
        if let Some(job) = inner.injector.lock().unwrap().pop_front() {
            inner.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for q in &inner.queues {
            if let Some(job) = q.lock().unwrap().pop_back() {
                inner.pending.fetch_sub(1, Ordering::SeqCst);
                inner.steals.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_job(inner: &Inner, job: Job) {
    let t0 = Instant::now();
    job();
    inner
        .busy_micros
        .fetch_add(t0.elapsed().as_micros() as u64, Ordering::SeqCst);
    inner.morsels.fetch_add(1, Ordering::SeqCst);
}

fn worker_loop(inner: &Inner, me: usize) {
    loop {
        // Own deque (front), then the injector, then steal (back).
        let job = {
            let own = inner.queues[me].lock().unwrap().pop_front();
            match own {
                Some(job) => {
                    inner.pending.fetch_sub(1, Ordering::SeqCst);
                    Some(job)
                }
                None => {
                    if let Some(job) = inner.injector.lock().unwrap().pop_front() {
                        inner.pending.fetch_sub(1, Ordering::SeqCst);
                        Some(job)
                    } else {
                        let mut stolen = None;
                        for off in 1..inner.workers {
                            let victim = (me + off) % inner.workers;
                            if let Some(job) = inner.queues[victim].lock().unwrap().pop_back() {
                                inner.pending.fetch_sub(1, Ordering::SeqCst);
                                inner.steals.fetch_add(1, Ordering::SeqCst);
                                stolen = Some(job);
                                break;
                            }
                        }
                        stolen
                    }
                }
            }
        };
        if let Some(job) = job {
            run_job(inner, job);
            continue;
        }
        // Park. Stop only once every queue is drained, so in-flight
        // scopes always complete.
        let guard = inner.gate.lock().unwrap();
        if inner.stop.load(Ordering::SeqCst) {
            if inner.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            continue;
        }
        if inner.pending.load(Ordering::SeqCst) > 0 {
            continue;
        }
        drop(
            inner
                .cv
                .wait_timeout(guard, std::time::Duration::from_millis(10))
                .unwrap(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_run_returns_results_in_task_order() {
        let pool = ExecPool::new(4);
        let tasks: Vec<_> = (0..64).map(|i| move || i * 3).collect();
        let out = pool.scope_run(tasks);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        pool.shutdown();
        assert_eq!(pool.threads_alive(), 0);
    }

    #[test]
    fn scope_run_borrows_the_environment() {
        let pool = ExecPool::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let slices: Vec<&[u64]> = data.chunks(100).collect();
        let sums = pool.scope_run(
            slices
                .iter()
                .map(|s| move || s.iter().sum::<u64>())
                .collect(),
        );
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn scope_run_propagates_panics_after_all_tasks_finish() {
        let pool = ExecPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                let ran = Arc::clone(&ran);
                Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 3 {
                        panic!("morsel {i} failed");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| pool.scope_run(tasks)));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 8, "every task still ran");
    }

    #[test]
    fn one_worker_pool_still_completes_scopes_via_caller_participation() {
        let pool = ExecPool::new(1);
        // Saturate the single worker with a detached job, then run a
        // scope: the caller must execute its own morsels.
        let out = pool.scope_run((0..16).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn detached_submit_runs_and_respects_backlog_bound() {
        let pool = ExecPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let hits = Arc::clone(&hits);
            assert!(pool.submit(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // Drain: shutdown runs queued jobs before joining.
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 8);
        assert!(!pool.submit(|| {}), "post-shutdown submits are refused");
        assert!(pool.stats().detached_rejected >= 1);
    }

    #[test]
    fn scope_blocking_supports_channel_rendezvous() {
        let pool = ExecPool::new(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(0);
        let total = Arc::new(AtomicUsize::new(0));
        let total2 = Arc::clone(&total);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            }),
            Box::new(move || {
                while let Ok(v) = rx.recv() {
                    total2.fetch_add(v as usize, Ordering::SeqCst);
                }
            }),
        ];
        pool.scope_blocking(tasks);
        assert_eq!(total.load(Ordering::SeqCst), 4950);
        pool.shutdown();
        assert_eq!(pool.threads_alive(), 0, "blocking threads joined");
    }

    #[test]
    fn shutdown_is_idempotent_and_leaves_no_threads() {
        let pool = ExecPool::new(3);
        assert_eq!(pool.threads_alive(), 3);
        pool.shutdown();
        pool.shutdown();
        assert_eq!(pool.threads_alive(), 0);
    }

    #[test]
    fn counters_track_morsels_and_makespan() {
        let pool = ExecPool::new(4);
        let _ = pool.scope_run(
            (0..32)
                .map(|i| {
                    move || {
                        // Do a little real work so timings are nonzero.
                        (0..10_000u64).fold(i as u64, |a, b| a.wrapping_add(b * b))
                    }
                })
                .collect::<Vec<_>>(),
        );
        let stats = pool.stats();
        assert!(stats.morsels >= 1);
        assert!(stats.serial_micros >= stats.makespan_micros);
        assert_eq!(stats.workers, 4);
    }
}
