//! Service marts, service interfaces, and connection patterns.
//!
//! A **service mart** is the conceptual description of an information
//! source (Chapter 9 of the book); each mart is implemented by one or
//! more **service interfaces**, concrete access patterns with adorned
//! schemas, statistics, and a scoring class. **Connection patterns** are
//! named, pre-declared join predicates between marts (e.g. `Shows(M,T)`,
//! `DinnerPlace(T,R)` in the running example), which queries may mention
//! instead of spelling out their join conditions.

use std::fmt;

use crate::attribute::AttributePath;
use crate::error::ModelError;
use crate::schema::ServiceSchema;
use crate::scoring::ScoreDecay;
use crate::stats::ServiceStats;
use crate::value::Comparator;

/// Whether a service behaves relationally or as a ranked search source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceKind {
    /// "Relational" behaviour: a single answer or a set of unranked
    /// answers. May or may not be chunked.
    Exact {
        /// Whether result delivery is chunked.
        chunked: bool,
    },
    /// Ranked answers in relevance order; always proliferative and
    /// chunked (§3.2).
    Search,
}

impl ServiceKind {
    /// True for search services.
    pub fn is_search(&self) -> bool {
        matches!(self, ServiceKind::Search)
    }

    /// True when result delivery is chunked (all search services, and
    /// exact services declared chunked).
    pub fn is_chunked(&self) -> bool {
        match self {
            ServiceKind::Exact { chunked } => *chunked,
            ServiceKind::Search => true,
        }
    }
}

/// Per-attribute statistics: the number of distinct values an attribute
/// draws from, used to estimate equality-predicate selectivity
/// (`1 / distinct`). §3.2: annotation numbers "can be computed from
/// service interface statistics, under suitable independence and value
/// distribution assumptions".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributeHints(Vec<(AttributePath, u64)>);

impl AttributeHints {
    /// No hints.
    pub fn none() -> Self {
        AttributeHints(Vec::new())
    }

    /// Adds a distinct-count hint, builder-style.
    pub fn with(mut self, path: AttributePath, distinct: u64) -> Self {
        self.0.push((path, distinct.max(1)));
        self
    }

    /// Estimated selectivity of an equality predicate on `path`, if
    /// known.
    pub fn eq_selectivity(&self, path: &AttributePath) -> Option<f64> {
        self.0
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, d)| 1.0 / *d as f64)
    }
}

/// A concrete, invocable access pattern of a service mart.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceInterface {
    /// Unique interface name, e.g. `Movie1` (marts may expose several
    /// interfaces: `Movie1`, `Movie2`, …).
    pub name: String,
    /// Name of the mart this interface implements.
    pub mart: String,
    /// Adorned schema (access pattern).
    pub schema: ServiceSchema,
    /// Exact vs. search behaviour.
    pub kind: ServiceKind,
    /// Cost-model statistics.
    pub stats: ServiceStats,
    /// Scoring-function class. Exact services use
    /// [`ScoreDecay::Constant`]; search services use step or progressive
    /// decays (§4.1).
    pub decay: ScoreDecay,
    /// Per-attribute distinct-count hints for selectivity estimation.
    pub hints: AttributeHints,
}

impl ServiceInterface {
    /// Builds an interface, enforcing the chapter's invariants:
    /// search services must have a `Ranked` attribute and a non-constant
    /// decay; exact services must not declare a step/progressive decay.
    pub fn new(
        name: impl Into<String>,
        mart: impl Into<String>,
        schema: ServiceSchema,
        kind: ServiceKind,
        stats: ServiceStats,
        decay: ScoreDecay,
    ) -> Result<Self, ModelError> {
        decay.validate()?;
        let name = name.into();
        match kind {
            ServiceKind::Search => {
                if schema.ranked_path().is_none() {
                    return Err(ModelError::SchemaViolation {
                        service: name,
                        detail: "search services must expose a Ranked attribute".into(),
                    });
                }
                if matches!(decay, ScoreDecay::Constant(_)) {
                    return Err(ModelError::InvalidParameter {
                        name: "decay",
                        detail: "search services need a non-constant scoring function".into(),
                    });
                }
            }
            ServiceKind::Exact { .. } => {
                if !matches!(decay, ScoreDecay::Constant(_)) {
                    return Err(ModelError::InvalidParameter {
                        name: "decay",
                        detail: "exact services are unranked; use ScoreDecay::Constant".into(),
                    });
                }
            }
        }
        Ok(ServiceInterface {
            name,
            mart: mart.into(),
            schema,
            kind,
            stats,
            decay,
            hints: AttributeHints::none(),
        })
    }

    /// Adds a distinct-count hint for an attribute, builder-style.
    pub fn with_hint(mut self, path: AttributePath, distinct: u64) -> Self {
        self.hints = std::mem::take(&mut self.hints).with(path, distinct);
        self
    }

    /// Number of input attributes of the access pattern — the quantity
    /// the Phase-1 heuristics *bound-is-better* / *unbound-is-easier*
    /// rank interfaces by (§5.3).
    pub fn input_arity(&self) -> usize {
        self.schema.input_paths().len()
    }

    /// True if the service is proliferative (expected to produce at
    /// least one output tuple per input tuple). Search services are
    /// always proliferative (§3.2).
    pub fn is_proliferative(&self) -> bool {
        self.kind.is_search() || !self.stats.is_selective()
    }
}

impl fmt::Display for ServiceInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ServiceKind::Exact { chunked: true } => "exact/chunked",
            ServiceKind::Exact { chunked: false } => "exact",
            ServiceKind::Search => "search",
        };
        write!(f, "{} [{kind}, {}] {}", self.name, self.decay, self.schema)
    }
}

/// A service mart: the conceptual source plus the names of its
/// registered interfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMart {
    /// Mart name, e.g. `Movie`.
    pub name: String,
    /// Names of registered [`ServiceInterface`]s implementing this mart.
    pub interfaces: Vec<String>,
}

impl ServiceMart {
    /// Creates an empty mart.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceMart {
            name: name.into(),
            interfaces: Vec::new(),
        }
    }
}

/// One attribute pair of a connection pattern, joined with a comparator
/// (almost always equality in the chapter's examples).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPair {
    /// Attribute path on the *from* mart.
    pub from: AttributePath,
    /// Attribute path on the *to* mart.
    pub to: AttributePath,
    /// Comparator relating them.
    pub op: Comparator,
}

impl JoinPair {
    /// Equality pair, the common case.
    pub fn eq(from: AttributePath, to: AttributePath) -> Self {
        JoinPair {
            from,
            to,
            op: Comparator::Eq,
        }
    }
}

/// A named, pre-declared join between two marts, e.g.
/// `Shows(Movie, Theatre): M.Title = T.Title`.
///
/// `selectivity` is the estimated probability that a random pair of
/// tuples from the two marts satisfies the pattern — §5.6 estimates
/// `Shows` at 2% and `DinnerPlace` at 40%.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionPattern {
    /// Pattern name, e.g. `Shows`.
    pub name: String,
    /// Mart on the first position.
    pub from_mart: String,
    /// Mart on the second position.
    pub to_mart: String,
    /// The join pairs the pattern stands for.
    pub pairs: Vec<JoinPair>,
    /// Estimated join selectivity in `[0, 1]`.
    pub selectivity: f64,
}

impl ConnectionPattern {
    /// Builds and validates a connection pattern.
    pub fn new(
        name: impl Into<String>,
        from_mart: impl Into<String>,
        to_mart: impl Into<String>,
        pairs: Vec<JoinPair>,
        selectivity: f64,
    ) -> Result<Self, ModelError> {
        if pairs.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "pairs",
                detail: "a connection pattern needs at least one join pair".into(),
            });
        }
        if !(0.0..=1.0).contains(&selectivity) {
            return Err(ModelError::InvalidParameter {
                name: "selectivity",
                detail: format!("must be in [0,1], got {selectivity}"),
            });
        }
        Ok(ConnectionPattern {
            name: name.into(),
            from_mart: from_mart.into(),
            to_mart: to_mart.into(),
            pairs,
            selectivity,
        })
    }
}

impl fmt::Display for ConnectionPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, {}): ", self.name, self.from_mart, self.to_mart)?;
        for (i, p) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{} {} {}", p.from, p.op, p.to)?;
        }
        write!(f, " [sel={:.3}]", self.selectivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{Adornment, AttributeDef, DataType};

    fn ranked_schema() -> ServiceSchema {
        ServiceSchema::new(
            "S1",
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Rank", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap()
    }

    fn unranked_schema() -> ServiceSchema {
        ServiceSchema::new(
            "S1",
            vec![
                AttributeDef::atomic("K", DataType::Text, Adornment::Input),
                AttributeDef::atomic("V", DataType::Text, Adornment::Output),
            ],
        )
        .unwrap()
    }

    #[test]
    fn search_service_requires_ranked_attribute() {
        let err = ServiceInterface::new(
            "S1",
            "S",
            unranked_schema(),
            ServiceKind::Search,
            ServiceStats::default(),
            ScoreDecay::Linear,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::SchemaViolation { .. }));
    }

    #[test]
    fn search_service_rejects_constant_decay() {
        let err = ServiceInterface::new(
            "S1",
            "S",
            ranked_schema(),
            ServiceKind::Search,
            ServiceStats::default(),
            ScoreDecay::Constant(1.0),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter { .. }));
    }

    #[test]
    fn exact_service_rejects_decaying_score() {
        let err = ServiceInterface::new(
            "S1",
            "S",
            unranked_schema(),
            ServiceKind::Exact { chunked: false },
            ServiceStats::default(),
            ScoreDecay::Linear,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter { .. }));
    }

    #[test]
    fn kind_predicates() {
        assert!(ServiceKind::Search.is_search());
        assert!(ServiceKind::Search.is_chunked());
        assert!(!ServiceKind::Exact { chunked: false }.is_search());
        assert!(ServiceKind::Exact { chunked: true }.is_chunked());
        assert!(!ServiceKind::Exact { chunked: false }.is_chunked());
    }

    #[test]
    fn proliferative_classification() {
        let search = ServiceInterface::new(
            "S1",
            "S",
            ranked_schema(),
            ServiceKind::Search,
            ServiceStats::new(0.5, 10, 1.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        // Search services are proliferative regardless of cardinality.
        assert!(search.is_proliferative());

        let selective = ServiceInterface::new(
            "E1",
            "E",
            unranked_schema(),
            ServiceKind::Exact { chunked: false },
            ServiceStats::new(0.5, 10, 1.0, 1.0).unwrap(),
            ScoreDecay::Constant(0.0),
        )
        .unwrap();
        assert!(!selective.is_proliferative());
        assert_eq!(selective.input_arity(), 1);
    }

    #[test]
    fn connection_pattern_validation_and_display() {
        assert!(ConnectionPattern::new("P", "A", "B", vec![], 0.5).is_err());
        let p = ConnectionPattern::new(
            "Shows",
            "Movie",
            "Theatre",
            vec![JoinPair::eq(
                AttributePath::atomic("Title"),
                AttributePath::sub("Movie", "Title"),
            )],
            0.02,
        )
        .unwrap();
        let txt = p.to_string();
        assert!(txt.contains("Shows(Movie, Theatre)"));
        assert!(txt.contains("Title = Movie.Title"));
        assert!(ConnectionPattern::new(
            "P",
            "A",
            "B",
            vec![JoinPair::eq(
                AttributePath::atomic("X"),
                AttributePath::atomic("Y")
            )],
            1.5
        )
        .is_err());
    }
}
