//! Columnar storage for service-result chunks.
//!
//! A chunk decomposes into one [`Column`] per atomic schema attribute
//! (plus row-wise storage for repeating groups), with a [`BitMask`]
//! marking nulls. Typed columns keep every value representable
//! bit-exactly — `Float` columns store the raw `f64` (including `NaN`
//! and `-0.0` as produced), `Text` columns intern to [`Symbol`]s, and
//! heterogeneously-typed slots fall back to a row-wise [`Column::Mixed`]
//! — so materializing the row view reproduces the original tuples
//! byte-for-byte.
//!
//! Predicate kernels consume borrowed [`ColumnRef`] handles and produce
//! selection [`BitMask`]s; see `seco-query`'s batch evaluator.

use crate::symbol::Symbol;
use crate::tuple::{FieldSlot, GroupTuple, Tuple};
use crate::value::{Date, Value};

/// A fixed-length bitmask over the rows of a chunk: selection masks and
/// null masks. Bit `i` set means "row `i` is selected" (or, for null
/// masks, "row `i` is null").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitMask {
    words: Vec<u64>,
    len: usize,
}

impl BitMask {
    /// All-zero mask over `len` rows.
    pub fn zeros(len: usize) -> Self {
        BitMask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one mask over `len` rows.
    pub fn ones(len: usize) -> Self {
        let mut m = BitMask {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        m.trim();
        m
    }

    /// Clears any bits above `len` in the last word.
    fn trim(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of rows covered (set or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Resets to all ones over `len` rows, reusing the allocation.
    pub fn reset_ones(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), u64::MAX);
        self.trim();
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Intersects with `other` (same length).
    pub fn and_assign(&mut self, other: &BitMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Ascending iterator over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Keeps only the set bits whose `keep(i)` is true, visiting rows a
    /// 64-bit word at a time so simple comparisons stay branch-free and
    /// auto-vectorizable in the inner loop.
    pub fn retain_with(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let len = self.len;
        for (wi, word) in self.words.iter_mut().enumerate() {
            if *word == 0 {
                continue;
            }
            let base = wi * 64;
            let top = 64.min(len - base);
            let mut m = 0u64;
            for b in 0..top {
                m |= (keep(base + b) as u64) << b;
            }
            *word &= m;
        }
    }
}

/// Typed column storage for one atomic attribute across a chunk's rows.
///
/// Nulls live in the companion [`BitMask`] (bit set = null) with an
/// arbitrary default in the data vector. A slot whose non-null values
/// span more than one [`Value`] variant degrades to [`Column::Mixed`],
/// which keeps row-wise `Value`s and stays bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>, BitMask),
    /// Raw floats; `NaN`/`-0.0` are stored as produced.
    Float(Vec<f64>, BitMask),
    /// Booleans.
    Bool(Vec<bool>, BitMask),
    /// Interned text.
    Text(Vec<Symbol>, BitMask),
    /// Calendar dates.
    Date(Vec<Date>, BitMask),
    /// Heterogeneous fallback: row-wise values, nulls inline.
    Mixed(Vec<Value>),
}

impl Column {
    /// Builds a column over `n` rows from a row accessor, choosing the
    /// narrowest typed representation that reproduces every value
    /// exactly.
    pub fn build<'a>(n: usize, get: impl Fn(usize) -> &'a Value) -> Column {
        // Pass 1: the single non-null variant, if any.
        let mut kind: Option<&'static str> = None;
        let mut mixed = false;
        for i in 0..n {
            let v = get(i);
            if v.is_null() {
                continue;
            }
            match kind {
                None => kind = Some(v.type_name()),
                Some(k) if k == v.type_name() => {}
                Some(_) => {
                    mixed = true;
                    break;
                }
            }
        }
        if mixed {
            return Column::Mixed((0..n).map(|i| get(i).clone()).collect());
        }
        // Pass 2: fill the typed vector with a null mask.
        let mut nulls = BitMask::zeros(n);
        macro_rules! fill {
            ($variant:ident, $default:expr, $pat:pat => $val:expr) => {{
                let mut data = Vec::with_capacity(n);
                for i in 0..n {
                    match get(i) {
                        $pat => data.push($val),
                        _ => {
                            nulls.set(i);
                            data.push($default);
                        }
                    }
                }
                Column::$variant(data, nulls)
            }};
        }
        match kind {
            Some("int") => fill!(Int, 0, Value::Int(v) => *v),
            Some("float") => fill!(Float, 0.0, Value::Float(v) => *v),
            Some("bool") => fill!(Bool, false, Value::Bool(v) => *v),
            Some("text") => {
                fill!(Text, Symbol::from(""), Value::Text(s) => Symbol::from(s.as_str()))
            }
            Some("date") => fill!(Date, Date::new(0, 1, 1), Value::Date(d) => *d),
            // All-null (or empty) column: any typed carrier works.
            _ => fill!(Int, 0, Value::Int(v) => *v),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v, _) => v.len(),
            Column::Float(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
            Column::Text(v, _) => v.len(),
            Column::Date(v, _) => v.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstructs the row value at `i`, bit-exactly.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int(v, nulls) => nulled(nulls, i, || Value::Int(v[i])),
            Column::Float(v, nulls) => nulled(nulls, i, || Value::Float(v[i])),
            Column::Bool(v, nulls) => nulled(nulls, i, || Value::Bool(v[i])),
            Column::Text(v, nulls) => nulled(nulls, i, || Value::Text(v[i].as_str().to_owned())),
            Column::Date(v, nulls) => nulled(nulls, i, || Value::Date(v[i])),
            Column::Mixed(v) => v[i].clone(),
        }
    }

    /// Borrowed view for kernels.
    pub fn as_ref(&self) -> ColumnRef<'_> {
        match self {
            Column::Int(v, n) => ColumnRef::Int(v, n),
            Column::Float(v, n) => ColumnRef::Float(v, n),
            Column::Bool(v, n) => ColumnRef::Bool(v, n),
            Column::Text(v, n) => ColumnRef::Text(v, n),
            Column::Date(v, n) => ColumnRef::Date(v, n),
            Column::Mixed(v) => ColumnRef::Mixed(v),
        }
    }
}

fn nulled(nulls: &BitMask, i: usize, v: impl FnOnce() -> Value) -> Value {
    if nulls.get(i) {
        Value::Null
    } else {
        v()
    }
}

/// Borrowed, typed view of a column — the handle the redesigned chunk
/// access API hands out ([`ChunkColumns::column`]) and the operand type
/// of the batch predicate kernels.
#[derive(Debug, Clone, Copy)]
pub enum ColumnRef<'a> {
    /// 64-bit integers with a null mask.
    Int(&'a [i64], &'a BitMask),
    /// Raw floats with a null mask.
    Float(&'a [f64], &'a BitMask),
    /// Booleans with a null mask.
    Bool(&'a [bool], &'a BitMask),
    /// Interned text with a null mask.
    Text(&'a [Symbol], &'a BitMask),
    /// Dates with a null mask.
    Date(&'a [Date], &'a BitMask),
    /// Row-wise fallback.
    Mixed(&'a [Value]),
}

impl<'a> ColumnRef<'a> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnRef::Int(v, _) => v.len(),
            ColumnRef::Float(v, _) => v.len(),
            ColumnRef::Bool(v, _) => v.len(),
            ColumnRef::Text(v, _) => v.len(),
            ColumnRef::Date(v, _) => v.len(),
            ColumnRef::Mixed(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when row `i` is null.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnRef::Int(_, n)
            | ColumnRef::Float(_, n)
            | ColumnRef::Bool(_, n)
            | ColumnRef::Text(_, n)
            | ColumnRef::Date(_, n) => n.get(i),
            ColumnRef::Mixed(v) => v[i].is_null(),
        }
    }

    /// Reconstructs the row value at `i`, bit-exactly.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnRef::Int(v, nulls) => nulled(nulls, i, || Value::Int(v[i])),
            ColumnRef::Float(v, nulls) => nulled(nulls, i, || Value::Float(v[i])),
            ColumnRef::Bool(v, nulls) => nulled(nulls, i, || Value::Bool(v[i])),
            ColumnRef::Text(v, nulls) => nulled(nulls, i, || Value::Text(v[i].as_str().to_owned())),
            ColumnRef::Date(v, nulls) => nulled(nulls, i, || Value::Date(v[i])),
            ColumnRef::Mixed(v) => v[i].clone(),
        }
    }
}

/// One chunk field slot in columnar form: a typed column for atomic
/// attributes, row-wise storage for repeating groups.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSlot {
    /// Atomic attribute column.
    Atomic(Column),
    /// Repeating-group rows, one `Vec<GroupTuple>` per chunk row.
    Group(Vec<Vec<GroupTuple>>),
}

/// A whole chunk decomposed into columns: per-slot storage plus the
/// per-row score and source-rank vectors. Row views are reconstructed
/// bit-exactly by [`ChunkColumns::materialize_rows`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkColumns {
    len: usize,
    scores: Vec<f64>,
    ranks: Vec<usize>,
    slots: Vec<ColumnSlot>,
}

impl ChunkColumns {
    /// Decomposes `tuples` into columns. Returns `None` when the tuples
    /// do not share one field-slot layout (same count, same kinds per
    /// position) — such chunks stay row-structured.
    pub fn from_tuples(tuples: &[Tuple]) -> Option<ChunkColumns> {
        let n = tuples.len();
        let n_fields = tuples.first().map_or(0, |t| t.fields.len());
        for t in tuples {
            if t.fields.len() != n_fields {
                return None;
            }
        }
        let mut slots = Vec::with_capacity(n_fields);
        for f in 0..n_fields {
            let group = matches!(tuples[0].fields[f], FieldSlot::Group(_));
            if tuples
                .iter()
                .any(|t| matches!(t.fields[f], FieldSlot::Group(_)) != group)
            {
                return None;
            }
            if group {
                slots.push(ColumnSlot::Group(
                    tuples
                        .iter()
                        .map(|t| match &t.fields[f] {
                            FieldSlot::Group(rows) => rows.clone(),
                            FieldSlot::Atomic(_) => unreachable!("checked above"),
                        })
                        .collect(),
                ));
            } else {
                slots.push(ColumnSlot::Atomic(Column::build(n, |i| {
                    match &tuples[i].fields[f] {
                        FieldSlot::Atomic(v) => v,
                        FieldSlot::Group(_) => unreachable!("checked above"),
                    }
                })));
            }
        }
        Some(ChunkColumns {
            len: n,
            scores: tuples.iter().map(|t| t.score).collect(),
            ranks: tuples.iter().map(|t| t.source_rank).collect(),
            slots,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of field slots.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// The slots themselves, in schema order (size accounting, tests).
    pub fn slots(&self) -> &[ColumnSlot] {
        &self.slots
    }

    /// Typed handle for the atomic column at schema position `field`;
    /// `None` for group slots or out-of-range indices.
    pub fn column(&self, field: usize) -> Option<ColumnRef<'_>> {
        match self.slots.get(field) {
            Some(ColumnSlot::Atomic(col)) => Some(col.as_ref()),
            _ => None,
        }
    }

    /// Per-row scores.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Rebuilds the full row view, bit-exact to the decomposed tuples.
    pub fn materialize_rows(&self) -> Vec<Tuple> {
        (0..self.len).map(|i| self.materialize_row(i)).collect()
    }

    /// Rebuilds row `i`.
    pub fn materialize_row(&self, i: usize) -> Tuple {
        Tuple {
            fields: self
                .slots
                .iter()
                .map(|slot| match slot {
                    ColumnSlot::Atomic(col) => FieldSlot::Atomic(col.value_at(i)),
                    ColumnSlot::Group(rows) => FieldSlot::Group(rows[i].clone()),
                })
                .collect(),
            score: self.scores[i],
            source_rank: self.ranks[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmask_basics() {
        let mut m = BitMask::ones(70);
        assert_eq!(m.count_ones(), 70);
        m.clear(0);
        m.clear(65);
        assert_eq!(m.count_ones(), 68);
        assert!(!m.get(65) && m.get(64));
        let ones: Vec<usize> = m.iter_ones().collect();
        assert_eq!(ones.len(), 68);
        assert_eq!(ones[0], 1);
        m.retain_with(|i| i % 2 == 0);
        assert!(m.iter_ones().all(|i| i % 2 == 0));
        m.clear_all();
        assert!(m.none_set());
    }

    #[test]
    fn typed_columns_round_trip_exactly() {
        let vals = [
            Value::Float(1.5),
            Value::Null,
            Value::Float(-0.0),
            Value::Float(f64::NAN),
        ];
        let col = Column::build(vals.len(), |i| &vals[i]);
        assert!(matches!(col, Column::Float(..)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(format!("{:?}", col.value_at(i)), format!("{v:?}"));
        }
    }

    #[test]
    fn mixed_columns_fall_back_row_wise() {
        let vals = [Value::Int(1), Value::text("x"), Value::Null];
        let col = Column::build(vals.len(), |i| &vals[i]);
        assert!(matches!(col, Column::Mixed(_)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&col.value_at(i), v);
        }
    }
}
