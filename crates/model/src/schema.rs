//! Service schemas: ordered attribute lists with adornments.

use std::fmt;

use crate::attribute::{Adornment, AttributeDef, AttributeKind, AttributePath, DataType};
use crate::error::ModelError;
use crate::tuple::Tuple;

/// The schema of a service interface: an ordered list of attributes
/// (atomic and repeating groups), each adorned with its access pattern.
///
/// Attribute order matters: tuples ([`Tuple`]) store their values
/// positionally, aligned with this schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSchema {
    /// Service (interface) name this schema belongs to.
    pub name: String,
    /// Ordered attribute definitions.
    pub attributes: Vec<AttributeDef>,
}

impl ServiceSchema {
    /// Creates a schema; attribute names (and sub-attribute names within
    /// each group) must be unique.
    pub fn new(name: impl Into<String>, attributes: Vec<AttributeDef>) -> Result<Self, ModelError> {
        let name = name.into();
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(ModelError::DuplicateName(format!("{name}.{}", a.name)));
            }
            if let AttributeKind::Group(subs) = &a.kind {
                for (j, s) in subs.iter().enumerate() {
                    if subs[..j].iter().any(|t| t.name == s.name) {
                        return Err(ModelError::DuplicateName(format!(
                            "{name}.{}.{}",
                            a.name, s.name
                        )));
                    }
                }
            }
        }
        Ok(ServiceSchema { name, attributes })
    }

    /// Index of a top-level attribute by name.
    pub fn attr_index(&self, attr: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == attr)
    }

    /// Looks up a top-level attribute definition by name.
    pub fn attribute(&self, attr: &str) -> Option<&AttributeDef> {
        self.attributes.iter().find(|a| a.name == attr)
    }

    /// Resolves a path to `(attribute index, optional sub index)`,
    /// checking shape: a `sub` path must address a group, a bare path must
    /// address an atomic attribute.
    pub fn resolve(&self, path: &AttributePath) -> Result<(usize, Option<usize>), ModelError> {
        let idx =
            self.attr_index(path.attr.as_str())
                .ok_or_else(|| ModelError::UnknownAttribute {
                    service: self.name.clone(),
                    attribute: path.to_string(),
                })?;
        let def = &self.attributes[idx];
        match (&def.kind, &path.sub) {
            (AttributeKind::Atomic(_), None) => Ok((idx, None)),
            (AttributeKind::Group(subs), Some(sub)) => {
                let sidx = subs.iter().position(|s| s.name == *sub).ok_or_else(|| {
                    ModelError::UnknownAttribute {
                        service: self.name.clone(),
                        attribute: path.to_string(),
                    }
                })?;
                Ok((idx, Some(sidx)))
            }
            (AttributeKind::Atomic(_), Some(_)) => Err(ModelError::KindMismatch {
                attribute: path.to_string(),
                expected: "repeating group (path has a sub-attribute)",
            }),
            (AttributeKind::Group(_), None) => Err(ModelError::KindMismatch {
                attribute: path.to_string(),
                expected: "atomic attribute (path has no sub-attribute)",
            }),
        }
    }

    /// The primitive type a path resolves to.
    pub fn type_of(&self, path: &AttributePath) -> Result<DataType, ModelError> {
        let (idx, sidx) = self.resolve(path)?;
        Ok(match (&self.attributes[idx].kind, sidx) {
            (AttributeKind::Atomic(ty), None) => *ty,
            (AttributeKind::Group(subs), Some(s)) => subs[s].ty,
            _ => unreachable!("resolve() validated the shape"),
        })
    }

    /// The abstract semantic domain a path is tagged with, if any.
    pub fn domain_of(&self, path: &AttributePath) -> Result<Option<&str>, ModelError> {
        let (idx, sidx) = self.resolve(path)?;
        Ok(match (&self.attributes[idx].kind, sidx) {
            (AttributeKind::Atomic(_), None) => self.attributes[idx].domain.as_deref(),
            (AttributeKind::Group(subs), Some(s)) => subs[s].domain.as_deref(),
            _ => unreachable!("resolve() validated the shape"),
        })
    }

    /// The adornment a path resolves to (sub-attribute adornment for
    /// group paths).
    pub fn adornment_of(&self, path: &AttributePath) -> Result<Adornment, ModelError> {
        let (idx, sidx) = self.resolve(path)?;
        Ok(match (&self.attributes[idx].kind, sidx) {
            (AttributeKind::Atomic(_), None) => self.attributes[idx].adornment,
            (AttributeKind::Group(subs), Some(s)) => subs[s].adornment,
            _ => unreachable!("resolve() validated the shape"),
        })
    }

    /// All paths adorned as `Input` — the fields that must be bound to
    /// make the service reachable (§3.1's feasibility definition).
    pub fn input_paths(&self) -> Vec<AttributePath> {
        let mut out = Vec::new();
        for a in &self.attributes {
            match &a.kind {
                AttributeKind::Atomic(_) => {
                    if a.adornment.is_input() {
                        out.push(AttributePath::atomic(a.name.clone()));
                    }
                }
                AttributeKind::Group(subs) => {
                    for s in subs {
                        if s.adornment.is_input() {
                            out.push(AttributePath::sub(a.name.clone(), s.name.clone()));
                        }
                    }
                }
            }
        }
        out
    }

    /// All paths adorned as `Output` or `Ranked`.
    pub fn output_paths(&self) -> Vec<AttributePath> {
        let mut out = Vec::new();
        for a in &self.attributes {
            match &a.kind {
                AttributeKind::Atomic(_) => {
                    if a.adornment.is_output() {
                        out.push(AttributePath::atomic(a.name.clone()));
                    }
                }
                AttributeKind::Group(subs) => {
                    for s in subs {
                        if s.adornment.is_output() {
                            out.push(AttributePath::sub(a.name.clone(), s.name.clone()));
                        }
                    }
                }
            }
        }
        out
    }

    /// The `Ranked` attribute path, if any (search services have one).
    pub fn ranked_path(&self) -> Option<AttributePath> {
        for a in &self.attributes {
            match &a.kind {
                AttributeKind::Atomic(_) if a.adornment == Adornment::Ranked => {
                    return Some(AttributePath::atomic(a.name.clone()));
                }
                AttributeKind::Group(subs) => {
                    if let Some(s) = subs.iter().find(|s| s.adornment == Adornment::Ranked) {
                        return Some(AttributePath::sub(a.name.clone(), s.name.clone()));
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Validates that a tuple structurally conforms to this schema:
    /// correct arity for atomic fields and groups, group rows with the
    /// right width, and values of the declared types (or `Null`).
    pub fn validate(&self, tuple: &Tuple) -> Result<(), ModelError> {
        let violation = |detail: String| ModelError::SchemaViolation {
            service: self.name.clone(),
            detail,
        };
        if tuple.fields.len() != self.attributes.len() {
            return Err(violation(format!(
                "expected {} attribute slots, found {}",
                self.attributes.len(),
                tuple.fields.len()
            )));
        }
        for (def, slot) in self.attributes.iter().zip(&tuple.fields) {
            match (&def.kind, slot) {
                (AttributeKind::Atomic(ty), crate::tuple::FieldSlot::Atomic(v)) => {
                    if !v.is_null() && !type_matches(*ty, v) {
                        return Err(violation(format!(
                            "attribute `{}` expects {ty}, found {}",
                            def.name,
                            v.type_name()
                        )));
                    }
                }
                (AttributeKind::Group(subs), crate::tuple::FieldSlot::Group(rows)) => {
                    for row in rows {
                        if row.values.len() != subs.len() {
                            return Err(violation(format!(
                                "group `{}` rows must have {} values, found {}",
                                def.name,
                                subs.len(),
                                row.values.len()
                            )));
                        }
                        for (sdef, v) in subs.iter().zip(&row.values) {
                            if !v.is_null() && !type_matches(sdef.ty, v) {
                                return Err(violation(format!(
                                    "sub-attribute `{}.{}` expects {}, found {}",
                                    def.name,
                                    sdef.name,
                                    sdef.ty,
                                    v.type_name()
                                )));
                            }
                        }
                    }
                }
                (AttributeKind::Atomic(_), crate::tuple::FieldSlot::Group(_)) => {
                    return Err(violation(format!(
                        "attribute `{}` is atomic but slot holds a group",
                        def.name
                    )));
                }
                (AttributeKind::Group(_), crate::tuple::FieldSlot::Atomic(_)) => {
                    return Err(violation(format!(
                        "attribute `{}` is a group but slot holds an atomic value",
                        def.name
                    )));
                }
            }
        }
        Ok(())
    }
}

fn type_matches(ty: DataType, v: &crate::value::Value) -> bool {
    use crate::value::Value;
    matches!(
        (ty, v),
        (DataType::Bool, Value::Bool(_))
            | (DataType::Int, Value::Int(_))
            | (DataType::Float, Value::Float(_))
            | (DataType::Float, Value::Int(_))
            | (DataType::Text, Value::Text(_))
            | (DataType::Date, Value::Date(_))
    )
}

impl fmt::Display for ServiceSchema {
    /// Renders the adorned listing format of §5.6, e.g.
    /// `Movie1(Title^O, ..., Genres.Genre^I, ...)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        let mut first = true;
        for a in &self.attributes {
            match &a.kind {
                AttributeKind::Atomic(_) => {
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    write!(f, "{}^{}", a.name, a.adornment)?;
                }
                AttributeKind::Group(subs) => {
                    for s in subs {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        write!(f, "{}.{}^{}", a.name, s.name, s.adornment)?;
                    }
                }
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::SubAttributeDef;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn movie_schema() -> ServiceSchema {
        ServiceSchema::new(
            "Movie1",
            vec![
                AttributeDef::atomic("Title", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
                AttributeDef::group(
                    "Genres",
                    vec![SubAttributeDef::new(
                        "Genre",
                        DataType::Text,
                        Adornment::Input,
                    )],
                ),
                AttributeDef::group(
                    "Openings",
                    vec![
                        SubAttributeDef::new("Country", DataType::Text, Adornment::Input),
                        SubAttributeDef::new("Date", DataType::Date, Adornment::Input),
                    ],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = ServiceSchema::new(
            "S",
            vec![
                AttributeDef::atomic("A", DataType::Int, Adornment::Output),
                AttributeDef::atomic("A", DataType::Int, Adornment::Output),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateName(_)));
    }

    #[test]
    fn duplicate_sub_attribute_rejected() {
        let err = ServiceSchema::new(
            "S",
            vec![AttributeDef::group(
                "G",
                vec![
                    SubAttributeDef::new("X", DataType::Int, Adornment::Output),
                    SubAttributeDef::new("X", DataType::Int, Adornment::Output),
                ],
            )],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateName(_)));
    }

    #[test]
    fn resolve_paths() {
        let s = movie_schema();
        assert_eq!(
            s.resolve(&AttributePath::atomic("Title")).unwrap(),
            (0, None)
        );
        assert_eq!(
            s.resolve(&AttributePath::sub("Genres", "Genre")).unwrap(),
            (2, Some(0))
        );
        assert_eq!(
            s.resolve(&AttributePath::sub("Openings", "Date")).unwrap(),
            (3, Some(1))
        );
        assert!(s.resolve(&AttributePath::atomic("Nope")).is_err());
        assert!(s.resolve(&AttributePath::sub("Title", "X")).is_err());
        assert!(s.resolve(&AttributePath::atomic("Genres")).is_err());
        assert!(s.resolve(&AttributePath::sub("Genres", "Nope")).is_err());
    }

    #[test]
    fn input_output_and_ranked_paths() {
        let s = movie_schema();
        let inputs = s.input_paths();
        assert_eq!(
            inputs,
            vec![
                AttributePath::sub("Genres", "Genre"),
                AttributePath::sub("Openings", "Country"),
                AttributePath::sub("Openings", "Date"),
            ]
        );
        let outputs = s.output_paths();
        assert!(outputs.contains(&AttributePath::atomic("Title")));
        assert!(outputs.contains(&AttributePath::atomic("Score")));
        assert_eq!(s.ranked_path(), Some(AttributePath::atomic("Score")));
    }

    #[test]
    fn type_of_and_adornment_of() {
        let s = movie_schema();
        assert_eq!(
            s.type_of(&AttributePath::sub("Openings", "Date")).unwrap(),
            DataType::Date
        );
        assert_eq!(
            s.adornment_of(&AttributePath::atomic("Score")).unwrap(),
            Adornment::Ranked
        );
        assert_eq!(
            s.adornment_of(&AttributePath::sub("Genres", "Genre"))
                .unwrap(),
            Adornment::Input
        );
    }

    #[test]
    fn validate_accepts_conforming_tuple() {
        let s = movie_schema();
        let t = Tuple::builder(&s)
            .set("Title", Value::text("Up"))
            .set("Score", Value::float(0.9))
            .push_group_row("Genres", vec![Value::text("Animation")])
            .push_group_row(
                "Openings",
                vec![
                    Value::text("Italy"),
                    Value::Date(crate::value::Date::new(2009, 10, 15)),
                ],
            )
            .build()
            .unwrap();
        assert!(s.validate(&t).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_group_width() {
        let s = movie_schema();
        let t = Tuple::builder(&s)
            .set("Title", Value::text("Up"))
            .push_group_row("Openings", vec![Value::text("Italy")])
            .build();
        assert!(t.is_err());
    }

    #[test]
    fn validate_rejects_wrong_type() {
        let s = movie_schema();
        let t = Tuple::builder(&s).set("Title", Value::Int(3)).build();
        assert!(t.is_err());
    }

    #[test]
    fn display_renders_adorned_listing() {
        let s = movie_schema();
        let txt = s.to_string();
        assert!(txt.starts_with("Movie1(Title^O"));
        assert!(txt.contains("Score^R"));
        assert!(txt.contains("Genres.Genre^I"));
        assert!(txt.contains("Openings.Date^I"));
    }
}
