//! Interned string symbols for attribute and atom names.
//!
//! The data plane repeats a small vocabulary of names (attribute paths,
//! query atoms, service aliases) across millions of tuples. Interning each
//! distinct name once in a process-wide table turns every per-tuple key into
//! a `Copy` handle, removes the per-clone heap traffic of `String` keys, and
//! makes equality a single pointer compare.
//!
//! Determinism contract: `Hash` and `Ord` are defined over the *string
//! content*, not the table address, so symbols hash and sort exactly like
//! the `String`s they replace. Seeded request hashing (`hash_request_key`,
//! `hash_path`) and the `BTreeMap` iteration order of bindings therefore
//! produce byte-identical results before and after interning.

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Total bytes of interned string content. The table leaks every
/// distinct string by design (entries are `&'static str` handles and
/// are never freed), so this counter only grows; operators of
/// long-running daemons watch it to confirm the vocabulary has
/// plateaued (see `Symbol::table_bytes`).
static INTERNED_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A handle to an interned string: the canonical `&'static str` for its
/// content. Cheap to copy; equality is a pointer compare. Only `intern`
/// touches the table lock — `as_str`, `Hash`, `Ord` are lock-free.
#[derive(Clone, Copy, Eq)]
pub struct Symbol(&'static str);

fn interner() -> &'static Mutex<HashSet<&'static str>> {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

impl Symbol {
    /// Intern `s`, returning its stable handle. Repeated calls with equal
    /// strings return the same (pointer-identical) symbol.
    pub fn intern(s: &str) -> Symbol {
        let mut table = interner().lock().expect("symbol table poisoned");
        if let Some(&canonical) = table.get(s) {
            return Symbol(canonical);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        table.insert(leaked);
        INTERNED_BYTES.fetch_add(leaked.len(), Ordering::Relaxed);
        Symbol(leaked)
    }

    /// The interned string. `'static` because the table never frees entries.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Number of distinct strings interned so far (diagnostics only).
    pub fn table_len() -> usize {
        interner().lock().expect("symbol table poisoned").len()
    }

    /// Total bytes of interned string content (diagnostics only).
    ///
    /// The interner leaks every distinct string on purpose — handles
    /// are `&'static str`, so entries can never be freed. Growth is
    /// bounded by the *vocabulary* of the workload (attribute paths,
    /// atom aliases, service names), not by its volume: in a
    /// multi-tenant daemon the counter climbs while new query shapes
    /// and domains arrive and plateaus once the vocabulary is covered.
    /// A counter that keeps climbing at a steady rate signals a caller
    /// interning unbounded data (e.g. tuple *values*) and must be
    /// treated as a leak.
    pub fn table_bytes() -> usize {
        INTERNED_BYTES.load(Ordering::Relaxed)
    }

    /// True if the symbol's content equals `s` (no interning of `s`).
    pub fn is(self, s: &str) -> bool {
        self.0 == s
    }
}

// Interning canonicalizes: equal content implies the same leaked allocation,
// so pointer identity is content equality.
impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

// Hash by content so `Symbol` is a drop-in replacement for `String` keys in
// seeded hashing (`DefaultHasher` over a `&str` and a `String` agree).
impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

// Order by content so BTreeMap iteration matches the pre-interning order.
impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.0 == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.0
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.0
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.0.to_owned()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn interning_is_stable_and_deduplicating() {
        let a = Symbol::intern("Topic");
        let b = Symbol::intern("Topic");
        let c = Symbol::intern("AvgTemp");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "Topic");
        assert_eq!(c.as_str(), "AvgTemp");
    }

    #[test]
    fn hashes_exactly_like_the_string_it_replaces() {
        for name in ["Topic", "AvgTemp", "Flight1", "日付", ""] {
            let sym = Symbol::intern(name);
            let mut h1 = DefaultHasher::new();
            sym.hash(&mut h1);
            let mut h2 = DefaultHasher::new();
            name.to_owned().hash(&mut h2);
            assert_eq!(h1.finish(), h2.finish(), "hash mismatch for {name:?}");
        }
    }

    #[test]
    fn orders_by_content_not_intern_order() {
        // Interned in reverse lexicographic order on purpose.
        let z = Symbol::intern("zeta-order");
        let a = Symbol::intern("alpha-order");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn byte_counter_tracks_fresh_interns() {
        // Other tests intern concurrently, so deltas are lower bounds:
        // fresh content must grow the counter by at least its length.
        let before = Symbol::table_bytes();
        let mut fresh = 0usize;
        for i in 0..16 {
            let name = format!("byte-counter-probe-{i}");
            fresh += name.len();
            Symbol::intern(&name);
        }
        assert!(Symbol::table_bytes() - before >= fresh);
        assert!(Symbol::table_bytes() >= Symbol::table_len());
    }

    #[test]
    fn compares_against_plain_strings() {
        let s = Symbol::intern("Conference1");
        assert!(s == "Conference1");
        assert!("Conference1" == s);
        let owned: String = "Conference1".into();
        assert!(s == owned);
        assert!(owned == s);
        assert!(s.is("Conference1"));
        assert!(!s.is("Conference2"));
    }
}
