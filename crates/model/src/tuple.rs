//! Tuples, repeating-group rows, and composite result tuples.
//!
//! §3.1: "A tuple of a service is a mapping that sends each attribute
//! `s.A` into a value of the domain of `A`. […] if `s.R` is a repeating
//! group, the value `t.R` is a set of tuples over the sub-attributes of
//! `s.R`." Query answers are *composite tuples* `t1 · … · tn` combining
//! one tuple from each service, ranked by the weighted sum of the
//! services' scores.

use std::fmt;
use std::sync::Arc;

use crate::attribute::{AttributeKind, AttributePath};
use crate::error::ModelError;
use crate::schema::ServiceSchema;
use crate::symbol::Symbol;
use crate::value::Value;

/// A shared, immutable tuple handle. The zero-copy data plane passes these
/// between cache, join pipes, and executors: cloning one bumps a reference
/// count instead of deep-copying fields.
pub type SharedTuple = Arc<Tuple>;

/// One row of a repeating group: values aligned with the group's
/// sub-attribute definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupTuple {
    /// Values, positionally aligned with [`crate::attribute::SubAttributeDef`]s.
    pub values: Vec<Value>,
}

impl GroupTuple {
    /// Builds a group row from values.
    pub fn new(values: Vec<Value>) -> Self {
        GroupTuple { values }
    }
}

/// Storage slot for one top-level attribute of a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldSlot {
    /// Single value of an atomic attribute.
    Atomic(Value),
    /// Set of rows of a repeating group.
    Group(Vec<GroupTuple>),
}

/// A tuple produced by one service call, positionally aligned with a
/// [`ServiceSchema`].
///
/// `score` is the value of the service's scoring function in `[0, 1]`
/// (constant for unranked/exact services, §3.1); `source_rank` is the
/// 0-based position of the tuple in the service's ranked output, which
/// also supports the chapter's footnote on *opaque* rankings (position is
/// translated into a score).
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// One slot per schema attribute, in schema order.
    pub fields: Vec<FieldSlot>,
    /// Score in `[0, 1]` assigned by the producing service.
    pub score: f64,
    /// 0-based position in the producing service's result list.
    pub source_rank: usize,
}

impl Tuple {
    /// Starts building a tuple for `schema`; unset atomic attributes
    /// default to `Null` and unset groups to empty row sets.
    pub fn builder(schema: &ServiceSchema) -> TupleBuilder<'_> {
        let fields = schema
            .attributes
            .iter()
            .map(|a| match a.kind {
                AttributeKind::Atomic(_) => FieldSlot::Atomic(Value::Null),
                AttributeKind::Group(_) => FieldSlot::Group(Vec::new()),
            })
            .collect();
        TupleBuilder {
            schema,
            tuple: Tuple {
                fields,
                score: 1.0,
                source_rank: 0,
            },
            error: None,
        }
    }

    /// The value of an atomic attribute by index (panics on group slots
    /// only in debug builds; returns `Null` in release).
    pub fn atomic_at(&self, idx: usize) -> &Value {
        match self.fields.get(idx) {
            Some(FieldSlot::Atomic(v)) => v,
            _ => {
                debug_assert!(false, "atomic_at({idx}) addressed a non-atomic slot");
                &Value::Null
            }
        }
    }

    /// The rows of a repeating group by index.
    pub fn group_at(&self, idx: usize) -> &[GroupTuple] {
        match self.fields.get(idx) {
            Some(FieldSlot::Group(rows)) => rows,
            _ => {
                debug_assert!(false, "group_at({idx}) addressed a non-group slot");
                &[]
            }
        }
    }

    /// Resolves a path against a schema and returns the set of values it
    /// denotes: a singleton for atomic attributes, one value per group
    /// row for sub-attribute paths.
    ///
    /// The multi-valued case is what gives the query language its
    /// existential repeating-group semantics: a predicate over `R.A`
    /// holds if *some* row of `R` satisfies it (together with the other
    /// predicates over `R`, handled by the semantics module in
    /// `seco-query`).
    pub fn values_at(
        &self,
        schema: &ServiceSchema,
        path: &AttributePath,
    ) -> Result<Vec<Value>, ModelError> {
        let (idx, sidx) = schema.resolve(path)?;
        Ok(match sidx {
            None => vec![self.atomic_at(idx).clone()],
            Some(s) => self
                .group_at(idx)
                .iter()
                .map(|row| row.values.get(s).cloned().unwrap_or(Value::Null))
                .collect(),
        })
    }

    /// Single-valued view of a path: the atomic value, or the value from
    /// the first group row (used when piping join-attribute values whose
    /// group has exactly one row).
    pub fn first_value_at(
        &self,
        schema: &ServiceSchema,
        path: &AttributePath,
    ) -> Result<Value, ModelError> {
        Ok(self
            .values_at(schema, path)?
            .into_iter()
            .next()
            .unwrap_or(Value::Null))
    }
}

/// Builder returned by [`Tuple::builder`]; validates against the schema
/// at [`TupleBuilder::build`] so call sites get one error path.
pub struct TupleBuilder<'a> {
    schema: &'a ServiceSchema,
    tuple: Tuple,
    error: Option<ModelError>,
}

impl<'a> TupleBuilder<'a> {
    /// Sets an atomic attribute by name.
    pub fn set(mut self, attr: &str, value: Value) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.schema.attr_index(attr) {
            Some(idx) if !self.schema.attributes[idx].is_group() => {
                self.tuple.fields[idx] = FieldSlot::Atomic(value);
            }
            Some(_) => {
                self.error = Some(ModelError::KindMismatch {
                    attribute: attr.to_owned(),
                    expected: "atomic attribute",
                })
            }
            None => {
                self.error = Some(ModelError::UnknownAttribute {
                    service: self.schema.name.clone(),
                    attribute: attr.to_owned(),
                })
            }
        }
        self
    }

    /// Appends a row to a repeating group by name.
    pub fn push_group_row(mut self, group: &str, values: Vec<Value>) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.schema.attr_index(group) {
            Some(idx) if self.schema.attributes[idx].is_group() => {
                if let FieldSlot::Group(rows) = &mut self.tuple.fields[idx] {
                    rows.push(GroupTuple::new(values));
                }
            }
            Some(_) => {
                self.error = Some(ModelError::KindMismatch {
                    attribute: group.to_owned(),
                    expected: "repeating group",
                })
            }
            None => {
                self.error = Some(ModelError::UnknownAttribute {
                    service: self.schema.name.clone(),
                    attribute: group.to_owned(),
                })
            }
        }
        self
    }

    /// Sets the service score (clamped into `[0, 1]`).
    pub fn score(mut self, score: f64) -> Self {
        self.tuple.score = score.clamp(0.0, 1.0);
        self
    }

    /// Sets the source rank (position in the service's result list).
    pub fn source_rank(mut self, rank: usize) -> Self {
        self.tuple.source_rank = rank;
        self
    }

    /// Validates against the schema and returns the tuple.
    pub fn build(self) -> Result<Tuple, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.schema.validate(&self.tuple)?;
        Ok(self.tuple)
    }
}

/// A composite tuple `t1 · … · tn`: one component tuple per query atom,
/// with the component scores retained so the global ranking function
/// (weighted sum, §3.1) can be applied and re-weighted dynamically.
///
/// Composites are *thin*: each component is a [`SharedTuple`] handle into
/// the chunk that produced it, and atom names are interned [`Symbol`]s.
/// Joining, merging, and extending a composite copies handles, never rows;
/// field data is materialized only when the final output is rendered.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeTuple {
    /// Names of the contributing query atoms (service aliases), aligned
    /// with `components`.
    pub atoms: Vec<Symbol>,
    /// Shared handles to the component tuples, in atom order.
    pub components: Vec<SharedTuple>,
}

impl CompositeTuple {
    /// A composite with a single component.
    pub fn single(atom: impl Into<Symbol>, tuple: impl Into<SharedTuple>) -> Self {
        CompositeTuple {
            atoms: vec![atom.into()],
            components: vec![tuple.into()],
        }
    }

    /// Concatenates two composites: `self · other`.
    pub fn join(&self, other: &CompositeTuple) -> Self {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().copied());
        let mut components = self.components.clone();
        components.extend(other.components.iter().cloned());
        CompositeTuple { atoms, components }
    }

    /// Merges two composites that may share atoms (branches with common
    /// ancestry, e.g. the Fig. 2 diamond where both the Flight and the
    /// Hotel branch carry the Conference and Weather components).
    ///
    /// Returns `None` when a shared atom's components differ — such a
    /// pair stems from two different upstream tuples and must not join.
    /// Otherwise the result carries each atom once. Shared components are
    /// usually pointer-identical handles into the same chunk, so the
    /// equality check short-circuits on `Arc::ptr_eq` before comparing
    /// fields.
    pub fn merge(&self, other: &CompositeTuple) -> Option<Self> {
        for (atom, tuple) in other.atoms.iter().zip(&other.components) {
            if let Some(mine) = self.component(atom.as_str()) {
                if !Arc::ptr_eq(mine, tuple) && **mine != **tuple {
                    return None;
                }
            }
        }
        let mut out = self.clone();
        for (atom, tuple) in other.atoms.iter().zip(&other.components) {
            if out.component(atom.as_str()).is_none() {
                out.atoms.push(*atom);
                out.components.push(tuple.clone());
            }
        }
        Some(out)
    }

    /// Extends the composite with one more component.
    pub fn extend_with(&self, atom: impl Into<Symbol>, tuple: impl Into<SharedTuple>) -> Self {
        let mut out = self.clone();
        out.atoms.push(atom.into());
        out.components.push(tuple.into());
        out
    }

    /// Shared handle to the component tuple for a given atom alias.
    pub fn component(&self, atom: &str) -> Option<&SharedTuple> {
        self.atoms
            .iter()
            .position(|a| *a == atom)
            .map(|i| &self.components[i])
    }

    /// Atom names as plain strings (test and display convenience).
    pub fn atom_names(&self) -> Vec<&'static str> {
        self.atoms.iter().map(|a| a.as_str()).collect()
    }

    /// Global score under a weight vector aligned with `atoms`
    /// (`w1·S1 + … + wn·Sn`, §3.1). Missing weights default to 0, which
    /// is also the chapter's convention for unranked services.
    pub fn global_score(&self, weights: &[f64]) -> f64 {
        self.components
            .iter()
            .enumerate()
            .map(|(i, t)| weights.get(i).copied().unwrap_or(0.0) * t.score)
            .sum()
    }

    /// Product of component scores — the objective of *extraction
    /// optimality* (§4.1: results in decreasing order of `ρX · ρY`).
    pub fn score_product(&self) -> f64 {
        self.components.iter().map(|t| t.score).product()
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.components.len()
    }

    /// Materializes the combination into owned rows, one `(atom, tuple)`
    /// pair per component.
    ///
    /// This is the *only* deep copy in a composite's life: everything
    /// upstream (joins, merges, fan-out, buffering) moves handles. Call
    /// it when the ranked combination leaves the engine — rendering,
    /// serialization, or handing rows to a caller that outlives the
    /// source chunks.
    pub fn materialize(&self) -> Vec<(&'static str, Tuple)> {
        self.atoms
            .iter()
            .zip(&self.components)
            .map(|(a, t)| (a.as_str(), (**t).clone()))
            .collect()
    }
}

impl fmt::Display for CompositeTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (a, t)) in self.atoms.iter().zip(&self.components).enumerate() {
            if i > 0 {
                write!(f, " · ")?;
            }
            write!(f, "{a}#{}(s={:.3})", t.source_rank, t.score)?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{Adornment, AttributeDef, DataType, SubAttributeDef};

    fn schema() -> ServiceSchema {
        ServiceSchema::new(
            "S",
            vec![
                AttributeDef::atomic("A", DataType::Int, Adornment::Output),
                AttributeDef::group(
                    "R",
                    vec![
                        SubAttributeDef::new("X", DataType::Int, Adornment::Output),
                        SubAttributeDef::new("Y", DataType::Text, Adornment::Output),
                    ],
                ),
            ],
        )
        .unwrap()
    }

    fn sample() -> Tuple {
        Tuple::builder(&schema())
            .set("A", Value::Int(7))
            .push_group_row("R", vec![Value::Int(1), Value::text("x")])
            .push_group_row("R", vec![Value::Int(2), Value::text("y")])
            .score(0.5)
            .source_rank(3)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_sets_fields_and_metadata() {
        let t = sample();
        assert_eq!(t.atomic_at(0), &Value::Int(7));
        assert_eq!(t.group_at(1).len(), 2);
        assert_eq!(t.score, 0.5);
        assert_eq!(t.source_rank, 3);
    }

    #[test]
    fn builder_rejects_unknown_and_mismatched_names() {
        assert!(Tuple::builder(&schema())
            .set("Nope", Value::Int(1))
            .build()
            .is_err());
        assert!(Tuple::builder(&schema())
            .set("R", Value::Int(1))
            .build()
            .is_err());
        assert!(Tuple::builder(&schema())
            .push_group_row("A", vec![Value::Int(1)])
            .build()
            .is_err());
    }

    #[test]
    fn score_is_clamped() {
        let t = Tuple::builder(&schema()).score(7.0).build().unwrap();
        assert_eq!(t.score, 1.0);
        let t = Tuple::builder(&schema()).score(-1.0).build().unwrap();
        assert_eq!(t.score, 0.0);
    }

    #[test]
    fn values_at_atomic_and_group_paths() {
        let t = sample();
        let s = schema();
        assert_eq!(
            t.values_at(&s, &AttributePath::atomic("A")).unwrap(),
            vec![Value::Int(7)]
        );
        assert_eq!(
            t.values_at(&s, &AttributePath::sub("R", "X")).unwrap(),
            vec![Value::Int(1), Value::Int(2)]
        );
        assert_eq!(
            t.first_value_at(&s, &AttributePath::sub("R", "Y")).unwrap(),
            Value::text("x")
        );
    }

    #[test]
    fn composite_join_and_scores() {
        let t1 = Tuple::builder(&schema()).score(0.8).build().unwrap();
        let t2 = Tuple::builder(&schema()).score(0.5).build().unwrap();
        let c1 = CompositeTuple::single("M", t1);
        let c2 = CompositeTuple::single("T", t2);
        let j = c1.join(&c2);
        assert_eq!(j.arity(), 2);
        assert_eq!(j.atom_names(), ["M", "T"]);
        assert!((j.global_score(&[0.5, 0.5]) - 0.65).abs() < 1e-12);
        assert!((j.score_product() - 0.4).abs() < 1e-12);
        assert!(j.component("T").is_some());
        assert!(j.component("Z").is_none());
    }

    #[test]
    fn composite_merge_respects_shared_atoms() {
        let t1 = Tuple::builder(&schema())
            .set("A", Value::Int(1))
            .score(0.9)
            .build()
            .unwrap();
        let t2 = Tuple::builder(&schema())
            .set("A", Value::Int(2))
            .score(0.8)
            .build()
            .unwrap();
        let t3 = Tuple::builder(&schema())
            .set("A", Value::Int(3))
            .score(0.7)
            .build()
            .unwrap();
        // Branch 1: C · F, branch 2: C · H with the SAME C.
        let b1 = CompositeTuple::single("C", t1.clone()).extend_with("F", t2.clone());
        let b2 = CompositeTuple::single("C", t1.clone()).extend_with("H", t3.clone());
        let merged = b1.merge(&b2).expect("same shared component merges");
        assert_eq!(merged.arity(), 3);
        assert_eq!(merged.atom_names(), ["C", "F", "H"]);
        // Different C components must refuse to merge.
        let b3 = CompositeTuple::single("C", t2).extend_with("H", t3);
        assert!(b1.merge(&b3).is_none());
        // Disjoint composites merge like join.
        let d1 = CompositeTuple::single("X", t1.clone());
        let d2 = CompositeTuple::single("Y", t1);
        assert_eq!(d1.merge(&d2).unwrap().arity(), 2);
    }

    #[test]
    fn composite_components_are_shared_not_copied() {
        let t: SharedTuple = Arc::new(sample());
        let b1 = CompositeTuple::single("C", t.clone()).extend_with("F", t.clone());
        let b2 = CompositeTuple::single("C", t.clone()).extend_with("H", t.clone());
        // Joining composites clones handles, not rows: every component of
        // the merge points at the one underlying allocation.
        let merged = b1.merge(&b2).unwrap();
        assert_eq!(merged.arity(), 3);
        for c in &merged.components {
            assert!(Arc::ptr_eq(c, &t));
        }
        // 1 origin + 2 in b1 + 2 in b2 + 3 in merged.
        assert_eq!(Arc::strong_count(&t), 8);
        // Materialization is the one deep copy: owned rows, detached
        // from the shared allocation.
        let rows = merged.materialize();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, "C");
        assert_eq!(rows[0].1, *t);
        assert_eq!(Arc::strong_count(&t), 8, "materialize takes no handle");
    }

    #[test]
    fn composite_extend_with() {
        let t = Tuple::builder(&schema()).score(1.0).build().unwrap();
        let c = CompositeTuple::single("A", t.clone()).extend_with("B", t);
        assert_eq!(c.arity(), 2);
        // Missing weights default to zero.
        assert_eq!(c.global_score(&[1.0]), 1.0);
    }

    #[test]
    fn composite_display_is_compact() {
        let t = Tuple::builder(&schema())
            .score(0.25)
            .source_rank(2)
            .build()
            .unwrap();
        let c = CompositeTuple::single("M", t);
        assert_eq!(c.to_string(), "⟨M#2(s=0.250)⟩");
    }
}
