//! # seco-model — the Search Computing data model
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace: values and comparators, attributes (atomic and *repeating
//! groups*), tuples and composite result tuples, service schemas with
//! access-pattern *adornments*, service marts / service interfaces /
//! connection patterns, per-service statistics, and the scoring-function
//! classes (step vs. progressive) that Chapter 10 of *Search Computing:
//! Challenges and Directions* uses to classify search services.
//!
//! The model deliberately mirrors the chapter's formalism:
//!
//! * an attribute of a service is either **atomic** (single-valued) or a
//!   **repeating group** (multi-valued set of sub-attribute tuples);
//! * every attribute and sub-attribute carries an adornment — `I`nput,
//!   `O`utput, or `R`anked — describing the access pattern of the service
//!   interface (§5.6 lists the adornments of the running example);
//! * services are partitioned into **exact** services (relational
//!   behaviour, unranked) and **search** services (ranked, chunked);
//! * search services have a **scoring function** whose decay is either a
//!   *step* (most relevant entries within the first `h` chunks) or
//!   *progressive* (e.g. linear or square decay) — §4.1.
//!
//! Everything downstream (query language, plans, join methods, the
//! optimizer, and the execution engine) is written against these types.

pub mod attribute;
pub mod column;
pub mod error;
pub mod mart;
pub mod schema;
pub mod scoring;
pub mod stats;
pub mod symbol;
pub mod tuple;
pub mod value;

pub use attribute::{
    Adornment, AttributeDef, AttributeKind, AttributePath, DataType, SubAttributeDef,
};
pub use column::{BitMask, ChunkColumns, Column, ColumnRef, ColumnSlot};
pub use error::ModelError;
pub use mart::{
    AttributeHints, ConnectionPattern, JoinPair, ServiceInterface, ServiceKind, ServiceMart,
};
pub use schema::ServiceSchema;
pub use scoring::{ScoreDecay, ScoringFunction};
pub use stats::ServiceStats;
pub use symbol::Symbol;
pub use tuple::{CompositeTuple, GroupTuple, SharedTuple, Tuple};
pub use value::{Comparator, Date, Value};

/// Result alias for fallible model operations.
pub type Result<T> = std::result::Result<T, ModelError>;
