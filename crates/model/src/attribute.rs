//! Attributes, repeating groups, adornments, and attribute paths.
//!
//! §3.1: "an attribute of a service can be either an atomic attribute or
//! a repeating group. A repeating group consists of a non-empty set of
//! atomic sub-attributes that collectively define one property of an
//! object." Access limitations (§2.3) are modelled by *adornments* on
//! attributes: `I` (input — must be bound to invoke the service), `O`
//! (output), and `R` (ranked output — the attribute the service's scoring
//! function is computed from). The §5.6 listing of the running example's
//! adorned interfaces is reproduced verbatim in `seco-services`.

use std::fmt;

use crate::symbol::Symbol;

/// Primitive type of an atomic attribute or sub-attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean flag.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Calendar date.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Date => "date",
        };
        f.write_str(s)
    }
}

/// Access-pattern adornment of an attribute (the binding pattern of §2.3).
///
/// * `Input` attributes must be bound (by a constant, an `INPUT` variable,
///   or a join with a reachable service) before the service can be called.
/// * `Output` attributes are produced by the service.
/// * `Ranked` attributes are outputs that additionally carry the service's
///   relevance order (only search services have them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Adornment {
    /// `I` — must be bound before invocation.
    Input,
    /// `O` — produced by the service.
    Output,
    /// `R` — produced by the service and determining its ranking order.
    Ranked,
}

impl Adornment {
    /// True for `Output` and `Ranked`: the service produces this value.
    pub fn is_output(&self) -> bool {
        !matches!(self, Adornment::Input)
    }

    /// True for `Input`.
    pub fn is_input(&self) -> bool {
        matches!(self, Adornment::Input)
    }

    /// One-letter rendering used in adorned schema listings (`Name^O`).
    pub fn letter(&self) -> char {
        match self {
            Adornment::Input => 'I',
            Adornment::Output => 'O',
            Adornment::Ranked => 'R',
        }
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A sub-attribute of a repeating group.
#[derive(Debug, Clone, PartialEq)]
pub struct SubAttributeDef {
    /// Sub-attribute name, unique within its group.
    pub name: String,
    /// Primitive type.
    pub ty: DataType,
    /// Access adornment.
    pub adornment: Adornment,
    /// Abstract semantic domain (§2.3: off-query services "provide
    /// useful bindings for the input fields of the services in the
    /// query with the same abstract domain"). `None` means untagged.
    pub domain: Option<String>,
}

impl SubAttributeDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: DataType, adornment: Adornment) -> Self {
        SubAttributeDef {
            name: name.into(),
            ty,
            adornment,
            domain: None,
        }
    }

    /// Tags the sub-attribute with an abstract domain, builder-style.
    pub fn with_domain(mut self, domain: impl Into<String>) -> Self {
        self.domain = Some(domain.into());
        self
    }
}

/// Shape of an attribute: atomic (single value) or a repeating group
/// (multi-valued set of sub-attribute tuples).
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeKind {
    /// Single-valued attribute of the given type.
    Atomic(DataType),
    /// Multi-valued repeating group over the given sub-attributes.
    Group(Vec<SubAttributeDef>),
}

/// A top-level attribute of a service schema.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDef {
    /// Attribute (or group) name, unique within the schema.
    pub name: String,
    /// Atomic type or repeating-group shape.
    pub kind: AttributeKind,
    /// Adornment. For a group this is the adornment applied to the whole
    /// group when none of its sub-attributes override it; the chapter's
    /// schemas adorn sub-attributes individually, which
    /// [`SubAttributeDef::adornment`] captures.
    pub adornment: Adornment,
    /// Abstract semantic domain of an atomic attribute (see
    /// [`SubAttributeDef::domain`]).
    pub domain: Option<String>,
}

impl AttributeDef {
    /// Builds an atomic attribute.
    pub fn atomic(name: impl Into<String>, ty: DataType, adornment: Adornment) -> Self {
        AttributeDef {
            name: name.into(),
            kind: AttributeKind::Atomic(ty),
            adornment,
            domain: None,
        }
    }

    /// Builds a repeating group. The group-level adornment is set to
    /// `Output`; callers adorn sub-attributes individually.
    pub fn group(name: impl Into<String>, subs: Vec<SubAttributeDef>) -> Self {
        debug_assert!(
            !subs.is_empty(),
            "repeating groups are non-empty by definition"
        );
        AttributeDef {
            name: name.into(),
            kind: AttributeKind::Group(subs),
            adornment: Adornment::Output,
            domain: None,
        }
    }

    /// Tags an atomic attribute with an abstract domain, builder-style.
    pub fn with_domain(mut self, domain: impl Into<String>) -> Self {
        self.domain = Some(domain.into());
        self
    }

    /// True if this attribute is a repeating group.
    pub fn is_group(&self) -> bool {
        matches!(self.kind, AttributeKind::Group(_))
    }

    /// Sub-attributes, if this is a group.
    pub fn sub_attributes(&self) -> Option<&[SubAttributeDef]> {
        match &self.kind {
            AttributeKind::Group(subs) => Some(subs),
            AttributeKind::Atomic(_) => None,
        }
    }
}

/// A (possibly sub-)attribute reference: `A` or `R.A` in the notation of
/// §3.1 (service prefixes are handled one level up, in the query AST).
///
/// Names are interned [`Symbol`]s: a path is two machine words, `Copy`-like
/// to clone, and free of per-tuple heap allocations. `Hash` and `Ord` are
/// implemented manually over the string content so the path behaves exactly
/// like the `(String, Option<String>)` pair it replaces — seeded request
/// hashing and `BTreeMap` binding order depend on that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributePath {
    /// The top-level attribute (or repeating-group) name.
    pub attr: Symbol,
    /// For repeating groups, the addressed sub-attribute.
    pub sub: Option<Symbol>,
}

// Matches the derived hash of the former `{ attr: String, sub: Option<String> }`
// layout: `Symbol` hashes like the string it interns, and `Option<Symbol>`
// hashes its discriminant + payload exactly like `Option<String>`.
impl std::hash::Hash for AttributePath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.attr.hash(state);
        self.sub.hash(state);
    }
}

// Lexicographic by content, `None < Some` — the derived order of the former
// String-backed struct.
impl Ord for AttributePath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.attr
            .cmp(&other.attr)
            .then_with(|| self.sub.cmp(&other.sub))
    }
}

impl PartialOrd for AttributePath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl AttributePath {
    /// Path to an atomic attribute `A`.
    pub fn atomic(attr: impl Into<Symbol>) -> Self {
        AttributePath {
            attr: attr.into(),
            sub: None,
        }
    }

    /// Path to a sub-attribute `R.A` of a repeating group.
    pub fn sub(group: impl Into<Symbol>, sub: impl Into<Symbol>) -> Self {
        AttributePath {
            attr: group.into(),
            sub: Some(sub.into()),
        }
    }

    /// Parses `"A"` or `"R.A"`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('.');
        let attr = parts.next()?.trim();
        if attr.is_empty() {
            return None;
        }
        match (parts.next(), parts.next()) {
            (None, _) => Some(AttributePath::atomic(attr)),
            (Some(sub), None) if !sub.trim().is_empty() => {
                Some(AttributePath::sub(attr, sub.trim()))
            }
            _ => None,
        }
    }

    /// True when the path addresses a sub-attribute of a repeating group.
    pub fn is_sub(&self) -> bool {
        self.sub.is_some()
    }
}

impl fmt::Display for AttributePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.sub {
            Some(sub) => write!(f, "{}.{}", self.attr, sub),
            None => f.write_str(self.attr.as_str()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adornment_classification() {
        assert!(Adornment::Input.is_input());
        assert!(!Adornment::Input.is_output());
        assert!(Adornment::Output.is_output());
        assert!(Adornment::Ranked.is_output());
        assert_eq!(Adornment::Ranked.letter(), 'R');
    }

    #[test]
    fn attribute_constructors() {
        let a = AttributeDef::atomic("Title", DataType::Text, Adornment::Output);
        assert!(!a.is_group());
        assert!(a.sub_attributes().is_none());

        let g = AttributeDef::group(
            "Openings",
            vec![
                SubAttributeDef::new("Country", DataType::Text, Adornment::Input),
                SubAttributeDef::new("Date", DataType::Date, Adornment::Input),
            ],
        );
        assert!(g.is_group());
        assert_eq!(g.sub_attributes().unwrap().len(), 2);
    }

    #[test]
    fn path_parse_and_display() {
        let p = AttributePath::parse("Title").unwrap();
        assert_eq!(p, AttributePath::atomic("Title"));
        assert_eq!(p.to_string(), "Title");
        assert!(!p.is_sub());

        let p = AttributePath::parse("Genres.Genre").unwrap();
        assert_eq!(p, AttributePath::sub("Genres", "Genre"));
        assert_eq!(p.to_string(), "Genres.Genre");
        assert!(p.is_sub());

        assert!(AttributePath::parse("").is_none());
        assert!(AttributePath::parse("a.b.c").is_none());
        assert!(AttributePath::parse("a.").is_none());
    }

    #[test]
    fn path_hash_matches_the_string_layout_it_replaced() {
        // Seeded data generation hashes request bindings through
        // `AttributePath`'s Hash impl; interning must not change the hash,
        // or every generated dataset (and ranked output) would shift.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        for (attr, sub) in [
            ("Topic", None),
            ("Openings", Some("Country")),
            ("AvgTemp", None),
        ] {
            let path = match sub {
                None => AttributePath::atomic(attr),
                Some(s) => AttributePath::sub(attr, s),
            };
            let mut by_path = DefaultHasher::new();
            path.hash(&mut by_path);
            let mut by_strings = DefaultHasher::new();
            attr.to_owned().hash(&mut by_strings);
            sub.map(str::to_owned).hash(&mut by_strings);
            assert_eq!(
                by_path.finish(),
                by_strings.finish(),
                "hash drift for {attr:?}.{sub:?}"
            );
        }
    }

    #[test]
    fn path_order_is_lexicographic_by_content() {
        let mut paths = [
            AttributePath::sub("R", "B"),
            AttributePath::atomic("R"),
            AttributePath::atomic("A"),
            AttributePath::sub("R", "A"),
        ];
        paths.sort();
        assert_eq!(
            paths.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
            ["A", "R", "R.A", "R.B"]
        );
    }

    #[test]
    fn datatype_display() {
        assert_eq!(DataType::Text.to_string(), "text");
        assert_eq!(DataType::Date.to_string(), "date");
    }
}
