//! Scoring functions: step vs. progressive decay (§4.1).
//!
//! The chapter classifies search services by the way their ranking
//! decreases from values close to 1 down to values close to 0:
//!
//! 1. **Step scoring** — "by performing a limited number `h` of
//!    request-responses, most of the relevant entries will be retrieved,
//!    because the entry scores decrease with a deep step after `h`
//!    request-responses"; `h` is a parameter of the service.
//! 2. **Progressive scoring** — "the scoring function decreases
//!    progressively, with no step", e.g. linear or square distributions.
//!
//! The optimizer only needs the *class* and its parameters; the service
//! substrate uses the same object to generate concrete scores so the
//! optimizer's assumptions and the simulated reality agree by
//! construction (the experiments then perturb them to measure
//! robustness).

use std::fmt;

use crate::error::ModelError;

/// Decay shape of a search service's scoring function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreDecay {
    /// Scores stay near `high` for the first `h` *chunks* worth of
    /// results, then drop to `low`. `h` is expressed in chunks, matching
    /// §4.3.1 ("extracting all the `h` chunks corresponding to the high
    /// ranking values").
    Step {
        /// Number of chunks before the drop.
        h: usize,
        /// Score plateau before the drop (close to 1).
        high: f64,
        /// Score plateau after the drop (close to 0).
        low: f64,
    },
    /// Linear decay from 1 at rank 0 to ~0 at the last result.
    Linear,
    /// Quadratic ("square value distribution"): decays as `(1 - x)^2`,
    /// i.e. fast at the top and flat near the tail.
    Quadratic,
    /// Exponential decay `exp(-lambda * x)` over normalised rank `x`.
    Exponential {
        /// Decay rate; larger = steeper.
        lambda: f64,
    },
    /// Constant score — the convention for unranked (exact) services,
    /// whose scoring function "is a fixed constant" (§3.1).
    Constant(f64),
}

impl ScoreDecay {
    /// Validates parameters (plateaus in `[0,1]`, `high > low`,
    /// `lambda > 0`).
    pub fn validate(&self) -> Result<(), ModelError> {
        match *self {
            ScoreDecay::Step { h, high, low } => {
                if !(0.0..=1.0).contains(&high) || !(0.0..=1.0).contains(&low) || high <= low {
                    return Err(ModelError::InvalidParameter {
                        name: "step plateaus",
                        detail: format!("need 0 <= low < high <= 1, got low={low}, high={high}"),
                    });
                }
                if h == 0 {
                    return Err(ModelError::InvalidParameter {
                        name: "h",
                        detail: "step position must be at least one chunk".into(),
                    });
                }
                Ok(())
            }
            ScoreDecay::Exponential { lambda } => {
                if lambda <= 0.0 {
                    return Err(ModelError::InvalidParameter {
                        name: "lambda",
                        detail: format!("must be positive, got {lambda}"),
                    });
                }
                Ok(())
            }
            ScoreDecay::Constant(c) => {
                if !(0.0..=1.0).contains(&c) {
                    return Err(ModelError::InvalidParameter {
                        name: "constant score",
                        detail: format!("must be in [0,1], got {c}"),
                    });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// True for the step class (drives the nested-loop heuristic, §4.3.1).
    pub fn is_step(&self) -> bool {
        matches!(self, ScoreDecay::Step { .. })
    }

    /// The step parameter `h` in chunks, if this is a step function.
    pub fn step_chunks(&self) -> Option<usize> {
        match self {
            ScoreDecay::Step { h, .. } => Some(*h),
            _ => None,
        }
    }
}

impl fmt::Display for ScoreDecay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreDecay::Step { h, high, low } => write!(f, "step(h={h}, {high}→{low})"),
            ScoreDecay::Linear => write!(f, "linear"),
            ScoreDecay::Quadratic => write!(f, "quadratic"),
            ScoreDecay::Exponential { lambda } => write!(f, "exp(λ={lambda})"),
            ScoreDecay::Constant(c) => write!(f, "const({c})"),
        }
    }
}

/// A concrete scoring function: a decay shape instantiated over a result
/// list of known length and chunk size.
///
/// Produces the score of the `i`-th result (0-based) of a service whose
/// full result list has `total` entries grouped into chunks of
/// `chunk_size`. Scores are non-increasing in `i` — search services
/// "return results in decreasing ranking order" (§4.1) — and live in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoringFunction {
    /// Decay shape.
    pub decay: ScoreDecay,
    /// Total length of the service's ranked result list.
    pub total: usize,
    /// Chunk size of the service (needed to place the step).
    pub chunk_size: usize,
}

impl ScoringFunction {
    /// Builds and validates a scoring function.
    pub fn new(decay: ScoreDecay, total: usize, chunk_size: usize) -> Result<Self, ModelError> {
        decay.validate()?;
        if chunk_size == 0 {
            return Err(ModelError::InvalidParameter {
                name: "chunk_size",
                detail: "must be positive".into(),
            });
        }
        Ok(ScoringFunction {
            decay,
            total,
            chunk_size,
        })
    }

    /// Score of the `i`-th ranked result.
    pub fn score_at(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let i = i.min(self.total.saturating_sub(1));
        // Normalised rank in [0, 1): 0 is the top result.
        let x = i as f64 / self.total as f64;
        match self.decay {
            ScoreDecay::Step { h, high, low } => {
                let step_at = h * self.chunk_size;
                if i < step_at {
                    // Slight within-plateau decay keeps scores strictly
                    // informative (distinct ranks ⇒ non-identical scores)
                    // while preserving the "deep step" shape.
                    high - (high - low) * 0.05 * (i as f64 / step_at.max(1) as f64)
                } else {
                    low * (1.0 - x).max(0.0)
                }
            }
            ScoreDecay::Linear => 1.0 - x,
            ScoreDecay::Quadratic => (1.0 - x) * (1.0 - x),
            ScoreDecay::Exponential { lambda } => (-lambda * x).exp(),
            ScoreDecay::Constant(c) => c,
        }
        .clamp(0.0, 1.0)
    }

    /// Score of the first tuple of chunk `c` (0-based) — the tile
    /// representative used by extraction-optimal orders ("using the
    /// ranking of the first tuple of the tile as representative for the
    /// entire tile", §4.1).
    pub fn chunk_head_score(&self, c: usize) -> f64 {
        self.score_at(c * self.chunk_size)
    }

    /// Number of chunks in the full result list.
    pub fn chunk_count(&self) -> usize {
        self.total.div_ceil(self.chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_non_increasing(f: &ScoringFunction) {
        let mut prev = f64::INFINITY;
        for i in 0..f.total {
            let s = f.score_at(i);
            assert!((0.0..=1.0).contains(&s), "score {s} out of range at {i}");
            assert!(
                s <= prev + 1e-12,
                "score increased at rank {i}: {prev} -> {s}"
            );
            prev = s;
        }
    }

    #[test]
    fn all_decays_are_non_increasing_and_bounded() {
        for decay in [
            ScoreDecay::Step {
                h: 3,
                high: 0.95,
                low: 0.1,
            },
            ScoreDecay::Linear,
            ScoreDecay::Quadratic,
            ScoreDecay::Exponential { lambda: 3.0 },
            ScoreDecay::Constant(0.5),
        ] {
            let f = ScoringFunction::new(decay, 100, 10).unwrap();
            assert_non_increasing(&f);
        }
    }

    #[test]
    fn step_drops_after_h_chunks() {
        let f = ScoringFunction::new(
            ScoreDecay::Step {
                h: 2,
                high: 1.0,
                low: 0.05,
            },
            100,
            10,
        )
        .unwrap();
        let before = f.score_at(19);
        let after = f.score_at(20);
        assert!(before > 0.9, "plateau score was {before}");
        assert!(after < 0.1, "post-step score was {after}");
    }

    #[test]
    fn chunk_head_score_matches_first_of_chunk() {
        let f = ScoringFunction::new(ScoreDecay::Linear, 50, 7).unwrap();
        assert_eq!(f.chunk_head_score(3), f.score_at(21));
        assert_eq!(f.chunk_count(), 8);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ScoreDecay::Step {
            h: 0,
            high: 1.0,
            low: 0.0
        }
        .validate()
        .is_err());
        assert!(ScoreDecay::Step {
            h: 1,
            high: 0.2,
            low: 0.5
        }
        .validate()
        .is_err());
        assert!(ScoreDecay::Exponential { lambda: 0.0 }.validate().is_err());
        assert!(ScoreDecay::Constant(1.5).validate().is_err());
        assert!(ScoringFunction::new(ScoreDecay::Linear, 10, 0).is_err());
    }

    #[test]
    fn step_classification_helpers() {
        let s = ScoreDecay::Step {
            h: 4,
            high: 1.0,
            low: 0.0,
        };
        assert!(s.is_step());
        assert_eq!(s.step_chunks(), Some(4));
        assert!(!ScoreDecay::Linear.is_step());
        assert_eq!(ScoreDecay::Linear.step_chunks(), None);
    }

    #[test]
    fn empty_list_scores_zero() {
        let f = ScoringFunction::new(ScoreDecay::Linear, 0, 10).unwrap();
        assert_eq!(f.score_at(0), 0.0);
        assert_eq!(f.chunk_count(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ScoreDecay::Linear.to_string(), "linear");
        assert!(ScoreDecay::Step {
            h: 3,
            high: 0.9,
            low: 0.1
        }
        .to_string()
        .contains("h=3"));
    }
}
