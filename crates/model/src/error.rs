//! Error type shared by the model layer.

use std::fmt;

/// Errors raised while building or interrogating model objects.
///
/// The model layer is the bottom of the workspace dependency graph, so
/// this type is intentionally small; higher layers wrap it into their own
/// error enums (`QueryError`, `PlanError`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An attribute (or sub-attribute) name was not found in a schema.
    UnknownAttribute {
        /// Service or schema name the lookup ran against.
        service: String,
        /// Dotted attribute path that failed to resolve.
        attribute: String,
    },
    /// A path such as `R.A` addressed an atomic attribute as a group, or
    /// vice versa.
    KindMismatch {
        /// Dotted attribute path that was addressed with the wrong shape.
        attribute: String,
        /// Human-readable description of the expected shape.
        expected: &'static str,
    },
    /// A tuple did not conform to the schema it was validated against.
    SchemaViolation {
        /// Schema (service) name.
        service: String,
        /// What was wrong.
        detail: String,
    },
    /// Two values of incomparable types were compared.
    IncomparableValues {
        /// Rendering of the left operand.
        left: String,
        /// Rendering of the right operand.
        right: String,
    },
    /// An identifier (mart, interface, connection pattern) was registered twice.
    DuplicateName(String),
    /// An identifier was looked up but never registered.
    UnknownName(String),
    /// A numeric parameter was outside its admissible range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownAttribute { service, attribute } => {
                write!(f, "unknown attribute `{attribute}` on service `{service}`")
            }
            ModelError::KindMismatch {
                attribute,
                expected,
            } => {
                write!(
                    f,
                    "attribute `{attribute}` has the wrong kind: expected {expected}"
                )
            }
            ModelError::SchemaViolation { service, detail } => {
                write!(f, "tuple violates schema of `{service}`: {detail}")
            }
            ModelError::IncomparableValues { left, right } => {
                write!(f, "cannot compare values {left} and {right}")
            }
            ModelError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            ModelError::UnknownName(name) => write!(f, "unknown name `{name}`"),
            ModelError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = ModelError::UnknownAttribute {
            service: "Movie".into(),
            attribute: "Genres.Genre".into(),
        };
        assert!(e.to_string().contains("Genres.Genre"));
        assert!(e.to_string().contains("Movie"));

        let e = ModelError::KindMismatch {
            attribute: "Title".into(),
            expected: "repeating group",
        };
        assert!(e.to_string().contains("repeating group"));

        let e = ModelError::IncomparableValues {
            left: "1".into(),
            right: "\"x\"".into(),
        };
        assert!(e.to_string().contains("cannot compare"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ModelError>();
    }
}
