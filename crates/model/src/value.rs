//! Values, dates, and the comparator vocabulary of the query language.
//!
//! §3.1 of the chapter defines selection predicates `A op const` and join
//! predicates `A op B` with `op ∈ {=, <, <=, >, >=, like}`. This module
//! provides the runtime [`Value`] representation and the evaluation of
//! those comparators, including SQL-style `like` pattern matching with
//! `%` (any sequence) and `_` (any single character).

use std::cmp::Ordering;
use std::fmt;

use crate::error::ModelError;

/// A calendar date, used for attributes such as `Movie.Openings.Date`.
///
/// Ordering is chronological. Only the fields needed by the running
/// example are modelled; no time-zone or time-of-day support is required
/// by the chapter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Four-digit year.
    pub year: i32,
    /// Month in `1..=12`.
    pub month: u8,
    /// Day in `1..=31`.
    pub day: u8,
}

impl Date {
    /// Builds a date, clamping month and day into their calendar ranges.
    ///
    /// Synthetic data generators produce arbitrary integers; clamping
    /// keeps the invariant `1 <= month <= 12 && 1 <= day <= 31` without
    /// forcing every generator to handle an error case.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        Date {
            year,
            month: month.clamp(1, 12),
            day: day.clamp(1, 31),
        }
    }

    /// A total order key useful for arithmetic on synthetic dates.
    pub fn ordinal(&self) -> i64 {
        self.year as i64 * 372 + (self.month as i64 - 1) * 31 + (self.day as i64 - 1)
    }

    /// Inverse of [`Date::ordinal`].
    pub fn from_ordinal(ord: i64) -> Self {
        let year = ord.div_euclid(372);
        let rem = ord.rem_euclid(372);
        let month = rem / 31 + 1;
        let day = rem % 31 + 1;
        Date {
            year: year as i32,
            month: month as u8,
            day: day as u8,
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A runtime value for an atomic attribute or sub-attribute.
///
/// `Int`/`Float` compare across variants (numeric promotion); all other
/// cross-variant comparisons are errors surfaced as
/// [`ModelError::IncomparableValues`] so that a mistyped query fails
/// loudly instead of silently filtering everything out.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value; compares equal only to itself under `=`, and
    /// is incomparable under ordering comparators.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is rejected at construction via [`Value::float`].
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Builds a float value, normalising `NaN` to `Null` so that every
    /// stored float participates in a total order.
    pub fn float(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }

    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Returns a short name of the variant, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Date(_) => "date",
        }
    }

    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Three-way comparison with numeric promotion.
    ///
    /// Returns an error for incomparable variants (e.g. text vs int).
    /// `Null` is only comparable to `Null`, and only for equality: the
    /// ordering of `Null` against anything (including itself) is `Equal`
    /// for `Null`/`Null` and an error otherwise, matching the chapter's
    /// "natural interpretation of comparators".
    pub fn compare(&self, other: &Value) -> Result<Ordering, ModelError> {
        use Value::*;
        let incomparable = || ModelError::IncomparableValues {
            left: self.to_string(),
            right: other.to_string(),
        };
        match (self, other) {
            (Null, Null) => Ok(Ordering::Equal),
            (Bool(a), Bool(b)) => Ok(a.cmp(b)),
            (Int(a), Int(b)) => Ok(a.cmp(b)),
            (Date(a), Date(b)) => Ok(a.cmp(b)),
            (Text(a), Text(b)) => Ok(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).ok_or_else(incomparable),
                _ => Err(incomparable()),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "\"{s}\""),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

/// The comparators of §3.1: `{=, <, <=, >, >=, like}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparator {
    /// Equality.
    Eq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// SQL-style pattern match; right operand is the pattern.
    Like,
}

impl Comparator {
    /// Evaluates `left op right`.
    ///
    /// Comparisons involving `Null` under ordering comparators evaluate
    /// to `false` (three-valued logic collapsed to boolean, as in SQL
    /// `WHERE`), while type errors between non-null values are reported.
    pub fn eval(&self, left: &Value, right: &Value) -> Result<bool, ModelError> {
        if let Comparator::Like = self {
            return match (left, right) {
                (Value::Text(s), Value::Text(p)) => Ok(like_match(s, p)),
                (Value::Null, _) | (_, Value::Null) => Ok(false),
                _ => Err(ModelError::IncomparableValues {
                    left: left.to_string(),
                    right: right.to_string(),
                }),
            };
        }
        if left.is_null() || right.is_null() {
            // SQL semantics: NULL op x is unknown -> filtered out.
            return Ok(matches!(self, Comparator::Eq) && left.is_null() && right.is_null());
        }
        let ord = left.compare(right)?;
        Ok(match self {
            Comparator::Eq => ord == Ordering::Equal,
            Comparator::Lt => ord == Ordering::Less,
            Comparator::Le => ord != Ordering::Greater,
            Comparator::Gt => ord == Ordering::Greater,
            Comparator::Ge => ord != Ordering::Less,
            Comparator::Like => unreachable!("handled above"),
        })
    }

    /// Parses the textual form used in the query language.
    pub fn parse(token: &str) -> Option<Comparator> {
        Some(match token {
            "=" => Comparator::Eq,
            "<" => Comparator::Lt,
            "<=" => Comparator::Le,
            ">" => Comparator::Gt,
            ">=" => Comparator::Ge,
            tok if tok.eq_ignore_ascii_case("like") => Comparator::Like,
            _ => return None,
        })
    }

    /// An estimate of the fraction of uniformly distributed candidate
    /// pairs satisfying this comparator, used by the cost model when no
    /// per-predicate selectivity is supplied (§3.2's uniformity
    /// assumption). Equality is assumed highly selective; range
    /// comparators pass roughly half of the pairs.
    pub fn default_selectivity(&self) -> f64 {
        match self {
            Comparator::Eq => 0.1,
            Comparator::Like => 0.25,
            _ => 0.5,
        }
    }
}

impl fmt::Display for Comparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparator::Eq => "=",
            Comparator::Lt => "<",
            Comparator::Le => "<=",
            Comparator::Gt => ">",
            Comparator::Ge => ">=",
            Comparator::Like => "like",
        };
        f.write_str(s)
    }
}

/// SQL-`LIKE` matcher: `%` matches any (possibly empty) sequence, `_`
/// matches exactly one character. Matching is case-sensitive; services
/// that want case-insensitive behaviour normalise their data.
///
/// Implemented as an iterative two-pointer scan with backtracking to the
/// last `%`, which runs in `O(|s| * |p|)` worst case without recursion.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, s idx)
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp;
            si = ss + 1;
            star = Some((sp, ss + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_ordering_is_chronological() {
        let a = Date::new(2009, 3, 29);
        let b = Date::new(2009, 4, 1);
        let c = Date::new(2010, 1, 1);
        assert!(a < b && b < c);
        assert_eq!(Date::from_ordinal(a.ordinal()), a);
        assert_eq!(Date::from_ordinal(c.ordinal()), c);
    }

    #[test]
    fn date_clamps_out_of_range_fields() {
        let d = Date::new(2009, 13, 0);
        assert_eq!((d.month, d.day), (12, 1));
    }

    #[test]
    fn numeric_promotion_compares_int_and_float() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            Value::Float(1.5).compare(&Value::Int(2)).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn incompatible_types_error() {
        let err = Value::text("x").compare(&Value::Int(1)).unwrap_err();
        assert!(matches!(err, ModelError::IncomparableValues { .. }));
    }

    #[test]
    fn nan_is_normalised_to_null() {
        assert!(Value::float(f64::NAN).is_null());
    }

    #[test]
    fn comparator_eval_covers_all_operators() {
        let one = Value::Int(1);
        let two = Value::Int(2);
        assert!(Comparator::Lt.eval(&one, &two).unwrap());
        assert!(Comparator::Le.eval(&one, &one).unwrap());
        assert!(Comparator::Gt.eval(&two, &one).unwrap());
        assert!(Comparator::Ge.eval(&two, &two).unwrap());
        assert!(Comparator::Eq.eval(&one, &one).unwrap());
        assert!(!Comparator::Eq.eval(&one, &two).unwrap());
    }

    #[test]
    fn null_semantics_follow_sql_where() {
        assert!(!Comparator::Lt.eval(&Value::Null, &Value::Int(1)).unwrap());
        assert!(!Comparator::Eq.eval(&Value::Null, &Value::Int(1)).unwrap());
        // Two nulls are treated as equal so duplicate-elimination joins work.
        assert!(Comparator::Eq.eval(&Value::Null, &Value::Null).unwrap());
    }

    #[test]
    fn like_basic_patterns() {
        assert!(like_match("restaurant", "rest%"));
        assert!(like_match("restaurant", "%rant"));
        assert!(like_match("restaurant", "%taur%"));
        assert!(like_match("restaurant", "r_staurant"));
        assert!(!like_match("restaurant", "rest"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
    }

    #[test]
    fn like_backtracking_cases() {
        assert!(like_match("aaab", "%ab"));
        assert!(like_match("mississippi", "%iss%ppi"));
        assert!(!like_match("mississippi", "%issa%"));
        assert!(like_match("abc", "%%%abc%%"));
    }

    #[test]
    fn like_via_comparator() {
        assert!(Comparator::Like
            .eval(&Value::text("Pizzeria Roma"), &Value::text("Pizzeria%"))
            .unwrap());
        assert!(Comparator::Like
            .eval(&Value::Null, &Value::text("x%"))
            .map(|b| !b)
            .unwrap());
        assert!(Comparator::Like
            .eval(&Value::Int(3), &Value::text("3"))
            .is_err());
    }

    #[test]
    fn comparator_parse_round_trips() {
        for op in ["=", "<", "<=", ">", ">=", "like"] {
            let c = Comparator::parse(op).unwrap();
            assert_eq!(c.to_string(), op);
        }
        assert_eq!(Comparator::parse("LIKE"), Some(Comparator::Like));
        assert_eq!(Comparator::parse("!="), None);
    }

    #[test]
    fn value_display_renders_each_variant() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::text("x").to_string(), "\"x\"");
        assert_eq!(Value::Date(Date::new(2009, 1, 2)).to_string(), "2009-01-02");
    }
}
