//! Per-service statistics used by the cost model (§3.2, §5.1).
//!
//! "Cost models use estimates of the average result size of exact
//! services and of chunk sizes"; the execution-time and sum-cost metrics
//! additionally need a per-request-response time and a monetary/abstract
//! per-call cost. All estimates assume value independence and uniform
//! distributions, as the chapter does.

use crate::error::ModelError;

/// Statistics describing one service interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Expected number of result tuples per invocation for an exact
    /// service ("average cardinality"); for a search service this is the
    /// expected total length of the ranked result list.
    pub avg_cardinality: f64,
    /// Tuples per chunk. Exact services may be unchunked, in which case
    /// this equals the full expected result size; search services "are
    /// always proliferative and chunked" (§3.2).
    pub chunk_size: usize,
    /// Expected wall-clock time of one request-response, in milliseconds.
    pub response_time_ms: f64,
    /// Abstract cost charged per service invocation (used by the sum
    /// cost metric; set to 1 to make that metric count calls).
    pub cost_per_call: f64,
}

impl ServiceStats {
    /// Builds and validates statistics.
    pub fn new(
        avg_cardinality: f64,
        chunk_size: usize,
        response_time_ms: f64,
        cost_per_call: f64,
    ) -> Result<Self, ModelError> {
        if avg_cardinality < 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "avg_cardinality",
                detail: format!("must be non-negative, got {avg_cardinality}"),
            });
        }
        if chunk_size == 0 {
            return Err(ModelError::InvalidParameter {
                name: "chunk_size",
                detail: "must be positive".into(),
            });
        }
        if response_time_ms < 0.0 || cost_per_call < 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "response_time_ms/cost_per_call",
                detail: "must be non-negative".into(),
            });
        }
        Ok(ServiceStats {
            avg_cardinality,
            chunk_size,
            response_time_ms,
            cost_per_call,
        })
    }

    /// Uniform defaults for quickly-sketched services: 10 tuples per
    /// call, chunks of 10, 100 ms per request-response, unit cost.
    pub fn uniform_default() -> Self {
        ServiceStats {
            avg_cardinality: 10.0,
            chunk_size: 10,
            response_time_ms: 100.0,
            cost_per_call: 1.0,
        }
    }

    /// True if, on average, the service produces fewer output tuples
    /// than input tuples ("an exact service is selective if it produces
    /// in average less than one tuple per invocation", §3.2).
    pub fn is_selective(&self) -> bool {
        self.avg_cardinality < 1.0
    }

    /// Expected number of chunks in a full result list.
    pub fn expected_chunks(&self) -> usize {
        (self.avg_cardinality / self.chunk_size as f64)
            .ceil()
            .max(0.0) as usize
    }
}

impl Default for ServiceStats {
    fn default() -> Self {
        Self::uniform_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ServiceStats::new(-1.0, 10, 1.0, 1.0).is_err());
        assert!(ServiceStats::new(1.0, 0, 1.0, 1.0).is_err());
        assert!(ServiceStats::new(1.0, 1, -1.0, 1.0).is_err());
        assert!(ServiceStats::new(1.0, 1, 1.0, -1.0).is_err());
        assert!(ServiceStats::new(0.0, 1, 0.0, 0.0).is_ok());
    }

    #[test]
    fn selectivity_threshold_is_one_tuple_per_call() {
        assert!(ServiceStats::new(0.25, 1, 1.0, 1.0).unwrap().is_selective());
        assert!(!ServiceStats::new(1.0, 1, 1.0, 1.0).unwrap().is_selective());
        assert!(!ServiceStats::new(20.0, 10, 1.0, 1.0)
            .unwrap()
            .is_selective());
    }

    #[test]
    fn expected_chunks_rounds_up() {
        let s = ServiceStats::new(95.0, 10, 1.0, 1.0).unwrap();
        assert_eq!(s.expected_chunks(), 10);
        let s = ServiceStats::new(90.0, 10, 1.0, 1.0).unwrap();
        assert_eq!(s.expected_chunks(), 9);
    }

    #[test]
    fn defaults_are_sane() {
        let s = ServiceStats::default();
        assert_eq!(s.chunk_size, 10);
        assert!(!s.is_selective());
    }
}
