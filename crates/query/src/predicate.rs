//! Predicate evaluation under the repeating-group mapping semantics.
//!
//! §3.1 defines the semantics of a query via a mapping `M` that sends
//! *each repeating group occurring in the predicate set* to **one** row
//! of that group in the candidate tuple; the predicates must all hold
//! under the same mapping. The chapter's own example: with
//! `t1 = ({<1,x>,<2,x>})` and `t2 = ({<2,x>,<1,y>})`, the selection
//! `R.A=1 and R.B=x` keeps `t1` (row `<1,x>` satisfies both) but not
//! `t2` (its sub-attributes satisfy the two conjuncts only in
//! *different* rows).
//!
//! This module implements that semantics by enumerating row choices per
//! referenced group (an "odometer" over the groups' rows) and checking
//! all predicates under each choice. Groups are small (a handful of
//! rows), so exhaustive enumeration is the honest and cheap
//! implementation.

use std::collections::BTreeMap;

use seco_model::{Comparator, CompositeTuple, ServiceSchema, Tuple, Value};

use crate::ast::{JoinPredicate, QualifiedPath, Query, SelectionPredicate};
use crate::error::QueryError;

/// A predicate with its constant side already resolved (no `INPUT`
/// variables left).
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedPredicate {
    /// `atom.path op value`.
    Selection {
        /// The constrained attribute.
        left: QualifiedPath,
        /// Comparator.
        op: Comparator,
        /// The resolved constant.
        value: Value,
    },
    /// `atomA.path op atomB.path`.
    Join(JoinPredicate),
}

impl ResolvedPredicate {
    /// The atoms this predicate mentions.
    pub fn atoms(&self) -> Vec<&str> {
        match self {
            ResolvedPredicate::Selection { left, .. } => vec![left.atom.as_str()],
            ResolvedPredicate::Join(j) => vec![j.left.atom.as_str(), j.right.atom.as_str()],
        }
    }
}

/// Resolves a query's selection predicates against its `INPUT`
/// assignment, and appends the expanded join predicates.
pub fn resolve_predicates(
    query: &Query,
    expanded_joins: &[JoinPredicate],
) -> Result<Vec<ResolvedPredicate>, QueryError> {
    let mut out = Vec::with_capacity(query.selections.len() + expanded_joins.len());
    for s in &query.selections {
        out.push(ResolvedPredicate::Selection {
            left: s.left.clone(),
            op: s.op,
            value: s.right.resolve(&query.inputs)?,
        });
    }
    for j in expanded_joins {
        out.push(ResolvedPredicate::Join(j.clone()));
    }
    Ok(out)
}

/// Schema lookup for the atoms of a query: alias → schema.
pub type SchemaMap<'a> = BTreeMap<String, &'a ServiceSchema>;

/// Identifies one repeating group of one atom (atom alias, group symbol).
type GroupKey = (String, seco_model::Symbol);

/// Evaluation support: the value of `path` in `tuple` under a group-row
/// assignment.
fn value_under<'t>(
    tuple: &'t Tuple,
    schema: &ServiceSchema,
    path: &seco_model::AttributePath,
    assignment: &BTreeMap<GroupKey, usize>,
    atom: &str,
) -> Result<&'t Value, QueryError> {
    let (idx, sidx) = schema.resolve(path)?;
    match sidx {
        None => Ok(tuple.atomic_at(idx)),
        Some(s) => {
            let key = (atom.to_owned(), path.attr);
            let row = *assignment.get(&key).unwrap_or(&0);
            let rows = tuple.group_at(idx);
            rows.get(row).and_then(|r| r.values.get(s)).ok_or_else(|| {
                QueryError::Model(seco_model::ModelError::SchemaViolation {
                    service: schema.name.clone(),
                    detail: format!("group `{}` has no row {row}", path.attr),
                })
            })
        }
    }
}

/// Evaluates a predicate set on a composite tuple under the mapping
/// semantics. `strict` controls what happens when a predicate mentions
/// an atom that is not (yet) part of the composite: strict evaluation
/// errors, non-strict skips the predicate (used for incremental
/// filtering while a composite is still being assembled).
fn evaluate_inner(
    predicates: &[ResolvedPredicate],
    composite: &CompositeTuple,
    schemas: &SchemaMap<'_>,
    strict: bool,
) -> Result<bool, QueryError> {
    // Keep only predicates whose atoms are all present.
    let mut active: Vec<&ResolvedPredicate> = Vec::with_capacity(predicates.len());
    for p in predicates {
        let all_present = p.atoms().iter().all(|a| composite.component(a).is_some());
        if all_present {
            active.push(p);
        } else if strict {
            return Err(QueryError::UnknownAtom(
                p.atoms()
                    .iter()
                    .find(|a| composite.component(a).is_none())
                    .map(|s| (*s).to_owned())
                    .unwrap_or_default(),
            ));
        }
    }
    if active.is_empty() {
        return Ok(true);
    }

    // Collect the repeating groups referenced by active predicates.
    let mut groups: Vec<(GroupKey, usize)> = Vec::new();
    {
        let mut seen = BTreeMap::new();
        let mut visit = |qp: &QualifiedPath| -> Result<(), QueryError> {
            if qp.path.sub.is_none() {
                return Ok(());
            }
            let schema = schemas
                .get(&qp.atom)
                .ok_or_else(|| QueryError::UnknownAtom(qp.atom.clone()))?;
            let (idx, _) = schema.resolve(&qp.path)?;
            let tuple = composite
                .component(&qp.atom)
                .ok_or_else(|| QueryError::UnknownAtom(qp.atom.clone()))?;
            let key = (qp.atom.clone(), qp.path.attr);
            seen.entry(key).or_insert_with(|| tuple.group_at(idx).len());
            Ok(())
        };
        for p in &active {
            match p {
                ResolvedPredicate::Selection { left, .. } => visit(left)?,
                ResolvedPredicate::Join(j) => {
                    visit(&j.left)?;
                    visit(&j.right)?;
                }
            }
        }
        groups.extend(seen);
    }

    // No mapping exists if a referenced group is empty.
    if groups.iter().any(|(_, n)| *n == 0) {
        return Ok(false);
    }

    // Odometer over row choices.
    let mut choice = vec![0usize; groups.len()];
    loop {
        let assignment: BTreeMap<GroupKey, usize> = groups
            .iter()
            .zip(&choice)
            .map(|((key, _), row)| (key.clone(), *row))
            .collect();
        let mut all_hold = true;
        for p in &active {
            let holds = match p {
                ResolvedPredicate::Selection { left, op, value } => {
                    let schema = schemas
                        .get(&left.atom)
                        .ok_or_else(|| QueryError::UnknownAtom(left.atom.clone()))?;
                    let tuple = composite
                        .component(&left.atom)
                        .ok_or_else(|| QueryError::UnknownAtom(left.atom.clone()))?;
                    let lv = value_under(tuple, schema, &left.path, &assignment, &left.atom)?;
                    op.eval(lv, value).map_err(QueryError::Model)?
                }
                ResolvedPredicate::Join(j) => {
                    let ls = schemas
                        .get(&j.left.atom)
                        .ok_or_else(|| QueryError::UnknownAtom(j.left.atom.clone()))?;
                    let rs = schemas
                        .get(&j.right.atom)
                        .ok_or_else(|| QueryError::UnknownAtom(j.right.atom.clone()))?;
                    let lt = composite
                        .component(&j.left.atom)
                        .ok_or_else(|| QueryError::UnknownAtom(j.left.atom.clone()))?;
                    let rt = composite
                        .component(&j.right.atom)
                        .ok_or_else(|| QueryError::UnknownAtom(j.right.atom.clone()))?;
                    let lv = value_under(lt, ls, &j.left.path, &assignment, &j.left.atom)?;
                    let rv = value_under(rt, rs, &j.right.path, &assignment, &j.right.atom)?;
                    j.op.eval(lv, rv).map_err(QueryError::Model)?
                }
            };
            if !holds {
                all_hold = false;
                break;
            }
        }
        if all_hold {
            return Ok(true);
        }
        // Advance odometer.
        let mut i = 0;
        loop {
            if i == groups.len() {
                return Ok(false);
            }
            choice[i] += 1;
            if choice[i] < groups[i].1 {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

/// Strict evaluation: every predicate's atoms must be present in the
/// composite.
pub fn satisfies(
    predicates: &[ResolvedPredicate],
    composite: &CompositeTuple,
    schemas: &SchemaMap<'_>,
) -> Result<bool, QueryError> {
    evaluate_inner(predicates, composite, schemas, true)
}

/// Partial evaluation: predicates mentioning atoms not yet in the
/// composite are skipped (they will be checked once those atoms join).
pub fn satisfies_available(
    predicates: &[ResolvedPredicate],
    composite: &CompositeTuple,
    schemas: &SchemaMap<'_>,
) -> Result<bool, QueryError> {
    evaluate_inner(predicates, composite, schemas, false)
}

/// Estimated selectivity of a selection predicate set on one atom, used
/// by the annotation step for services that are "selective in the
/// context of a query" (§3.2). Equality on a key-like attribute is
/// highly selective, ranges keep about half: the per-comparator defaults
/// of [`Comparator::default_selectivity`] multiply.
pub fn estimate_selection_selectivity(selections: &[&SelectionPredicate]) -> f64 {
    selections
        .iter()
        .map(|s| s.op.default_selectivity())
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Operand;
    use seco_model::AttributePath;
    use seco_services::table::chapter_semantics_example;
    use seco_services::Service;

    /// Sets up the chapter's S1/S2 data and the schema map.
    fn setup() -> (
        Vec<seco_model::SharedTuple>,
        Vec<seco_model::SharedTuple>,
        ServiceSchema,
        ServiceSchema,
    ) {
        let (s1, s2) = chapter_semantics_example();
        (
            s1.rows().to_vec(),
            s2.rows().to_vec(),
            s1.interface().schema.clone(),
            s2.interface().schema.clone(),
        )
    }

    fn schema_map<'a>(entries: &[(&str, &'a ServiceSchema)]) -> SchemaMap<'a> {
        entries.iter().map(|(a, s)| ((*a).to_owned(), *s)).collect()
    }

    #[test]
    fn q1_selection_keeps_t1_but_not_t2() {
        // Q1: select S1 where S1.R.A=1 and S1.R.B=x
        let (s1_rows, _, s1_schema, _) = setup();
        let preds = vec![
            ResolvedPredicate::Selection {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
                op: Comparator::Eq,
                value: Value::Int(1),
            },
            ResolvedPredicate::Selection {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "B")),
                op: Comparator::Eq,
                value: Value::text("x"),
            },
        ];
        let schemas = schema_map(&[("S1", &s1_schema)]);
        let t1 = CompositeTuple::single("S1", s1_rows[0].clone());
        let t2 = CompositeTuple::single("S1", s1_rows[1].clone());
        assert!(
            satisfies(&preds, &t1, &schemas).unwrap(),
            "t1 must be in Q1's result"
        );
        assert!(
            !satisfies(&preds, &t2, &schemas).unwrap(),
            "t2 must NOT be in Q1's result"
        );
    }

    #[test]
    fn q2_join_produces_exactly_the_chapter_pairs() {
        // Q2: select S1, S2 where S1.R.A=S2.R.A and S1.R.B=S2.R.B
        // Expected result: {t1·t3, t1·t4, t2·t4}.
        let (s1_rows, s2_rows, s1_schema, s2_schema) = setup();
        let preds = vec![
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
                op: Comparator::Eq,
                right: QualifiedPath::new("S2", AttributePath::sub("R", "A")),
            }),
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "B")),
                op: Comparator::Eq,
                right: QualifiedPath::new("S2", AttributePath::sub("R", "B")),
            }),
        ];
        let schemas = schema_map(&[("S1", &s1_schema), ("S2", &s2_schema)]);
        let mut result = Vec::new();
        for (i, x) in s1_rows.iter().enumerate() {
            for (j, y) in s2_rows.iter().enumerate() {
                let c = CompositeTuple::single("S1", x.clone()).extend_with("S2", y.clone());
                if satisfies(&preds, &c, &schemas).unwrap() {
                    result.push((i, j));
                }
            }
        }
        // (t1,t3), (t1,t4), (t2,t4) — and crucially NOT (t2,t3).
        assert_eq!(result, vec![(0, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn empty_group_means_no_mapping_and_false() {
        let (_, _, s1_schema, _) = setup();
        let empty = seco_model::Tuple::builder(&s1_schema).build().unwrap();
        let preds = vec![ResolvedPredicate::Selection {
            left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
            op: Comparator::Eq,
            value: Value::Int(1),
        }];
        let schemas = schema_map(&[("S1", &s1_schema)]);
        let c = CompositeTuple::single("S1", empty);
        assert!(!satisfies(&preds, &c, &schemas).unwrap());
    }

    #[test]
    fn strict_vs_available_evaluation() {
        let (s1_rows, _, s1_schema, s2_schema) = setup();
        let preds = vec![ResolvedPredicate::Join(JoinPredicate {
            left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
            op: Comparator::Eq,
            right: QualifiedPath::new("S2", AttributePath::sub("R", "A")),
        })];
        let schemas = schema_map(&[("S1", &s1_schema), ("S2", &s2_schema)]);
        let partial = CompositeTuple::single("S1", s1_rows[0].clone());
        // Strict: S2 missing -> error.
        assert!(satisfies(&preds, &partial, &schemas).is_err());
        // Available: join skipped -> true.
        assert!(satisfies_available(&preds, &partial, &schemas).unwrap());
    }

    #[test]
    fn resolve_predicates_substitutes_inputs() {
        let mut q = crate::builder::QueryBuilder::new()
            .atom("S1", "S1")
            .select_input("S1", "R.A", Comparator::Eq, "INPUT1")
            .build()
            .unwrap();
        q.inputs.insert("INPUT1".into(), Value::Int(1));
        let resolved = resolve_predicates(&q, &[]).unwrap();
        match &resolved[0] {
            ResolvedPredicate::Selection { value, .. } => assert_eq!(value, &Value::Int(1)),
            other => panic!("unexpected {other:?}"),
        }
        // Unbound input errors.
        q.inputs.clear();
        assert!(matches!(
            resolve_predicates(&q, &[]),
            Err(QueryError::UnboundInput(_))
        ));
    }

    #[test]
    fn selection_selectivity_estimate_multiplies() {
        let s1 = SelectionPredicate {
            left: QualifiedPath::new("A", AttributePath::atomic("X")),
            op: Comparator::Eq,
            right: Operand::Const(Value::Int(1)),
        };
        let s2 = SelectionPredicate {
            left: QualifiedPath::new("A", AttributePath::atomic("Y")),
            op: Comparator::Gt,
            right: Operand::Const(Value::Int(1)),
        };
        let est = estimate_selection_selectivity(&[&s1, &s2]);
        assert!((est - 0.05).abs() < 1e-12);
        assert_eq!(estimate_selection_selectivity(&[]), 1.0);
    }
}
