//! Reachability and feasibility analysis (§3.1).
//!
//! "A service s from a query is *reachable* if, for every input
//! (sub-)attribute A of s, the query contains a selection predicate of
//! the form A = const, or a join predicate of the form A = B where B is
//! a (sub-)attribute of a reachable service. A query is *feasible* if
//! all its services are reachable."
//!
//! Two deliberate, documented liberalizations match the chapter's own
//! usage:
//!
//! * The running example counts `M.Openings.Date > INPUT3` as covering
//!   the `Openings.Date` input, so *any* comparator against a constant
//!   or `INPUT` variable binds an input path (the value is shipped to
//!   the service; non-equality semantics are re-checked downstream as a
//!   selection, which is what makes services "selective in the context
//!   of a query").
//! * For join-based binding, the bound side of a reachable service may
//!   be any of its attributes: inputs were necessarily bound to reach
//!   it, outputs are produced by it.
//!
//! The analysis also returns the induced **I/O dependencies** — which
//! atom pipes which value into which input — the raw material of
//! Phase 2 topology construction (§5.4).

use std::collections::BTreeSet;

use seco_model::{AttributePath, Comparator};
use seco_services::ServiceRegistry;

use crate::ast::{Operand, Query};
use crate::error::QueryError;

/// Where a bound input value comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum BindingSource {
    /// A selection predicate supplies the value (constant or `INPUT`).
    Constant {
        /// The operand of the covering selection predicate.
        operand: Operand,
        /// The comparator of that predicate (`Eq` means the service can
        /// answer exactly; anything else ships the value and re-checks).
        op: Comparator,
    },
    /// An equality join pipes the value from another atom's attribute.
    Piped {
        /// Producing atom.
        from_atom: String,
        /// Producing attribute path.
        from_path: AttributePath,
    },
}

/// One resolved input binding: `to_atom.input` gets its value from
/// `source`.
#[derive(Debug, Clone, PartialEq)]
pub struct IoDependency {
    /// Consuming atom alias.
    pub to_atom: String,
    /// The input path being bound.
    pub input: AttributePath,
    /// Where the value comes from.
    pub source: BindingSource,
}

impl IoDependency {
    /// True when the binding pipes a value from another atom.
    pub fn is_pipe(&self) -> bool {
        matches!(self.source, BindingSource::Piped { .. })
    }
}

/// Result of the feasibility analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityReport {
    /// Atoms in one admissible invocation order (the order they became
    /// reachable under a greedy fixpoint).
    pub order: Vec<String>,
    /// Every input binding, constant and piped.
    pub dependencies: Vec<IoDependency>,
    /// The atom-level pipe edges `(from, to)` induced by piped bindings,
    /// deduplicated. These are precedence constraints every topology
    /// must respect.
    pub pipe_edges: Vec<(String, String)>,
}

impl FeasibilityReport {
    /// Dependencies binding the inputs of one atom.
    pub fn bindings_of(&self, atom: &str) -> Vec<&IoDependency> {
        self.dependencies
            .iter()
            .filter(|d| d.to_atom == atom)
            .collect()
    }

    /// The atoms that must precede `atom` (pipe sources).
    pub fn predecessors_of(&self, atom: &str) -> Vec<&str> {
        self.pipe_edges
            .iter()
            .filter(|(_, t)| t == atom)
            .map(|(f, _)| f.as_str())
            .collect()
    }

    /// True when `atom` has no pipe predecessors (it can start a chain).
    pub fn is_source(&self, atom: &str) -> bool {
        self.predecessors_of(atom).is_empty()
    }
}

/// Runs the reachability fixpoint. Returns the report, or
/// [`QueryError::Infeasible`] naming the unreachable atoms and their
/// unbound inputs.
pub fn analyze(query: &Query, registry: &ServiceRegistry) -> Result<FeasibilityReport, QueryError> {
    query.validate()?;
    let joins = query.expanded_joins(registry)?;

    let mut reachable: BTreeSet<String> = BTreeSet::new();
    let mut order: Vec<String> = Vec::new();
    let mut dependencies: Vec<IoDependency> = Vec::new();

    loop {
        let mut progressed = false;
        for atom in &query.atoms {
            if reachable.contains(&atom.alias) {
                continue;
            }
            let iface = registry.interface(&atom.service)?;
            let mut atom_deps = Vec::new();
            let mut all_bound = true;
            for input in iface.schema.input_paths() {
                // 1. A selection predicate covering this input.
                let by_selection = query
                    .selections
                    .iter()
                    .find(|s| s.left.atom == atom.alias && s.left.path == input);
                if let Some(s) = by_selection {
                    atom_deps.push(IoDependency {
                        to_atom: atom.alias.clone(),
                        input: input.clone(),
                        source: BindingSource::Constant {
                            operand: s.right.clone(),
                            op: s.op,
                        },
                    });
                    continue;
                }
                // 2. An equality join with a reachable atom.
                let by_join = joins.iter().find_map(|j| {
                    if j.op != Comparator::Eq {
                        return None;
                    }
                    let o = j.oriented_from(&atom.alias);
                    if o.left.atom == atom.alias
                        && o.left.path == input
                        && o.right.atom != atom.alias
                        && reachable.contains(&o.right.atom)
                    {
                        Some((o.right.atom.clone(), o.right.path.clone()))
                    } else {
                        None
                    }
                });
                if let Some((from_atom, from_path)) = by_join {
                    atom_deps.push(IoDependency {
                        to_atom: atom.alias.clone(),
                        input: input.clone(),
                        source: BindingSource::Piped {
                            from_atom,
                            from_path,
                        },
                    });
                    continue;
                }
                all_bound = false;
                break;
            }
            if all_bound {
                reachable.insert(atom.alias.clone());
                order.push(atom.alias.clone());
                dependencies.extend(atom_deps);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    if reachable.len() != query.atoms.len() {
        let mut unreachable = Vec::new();
        let mut unbound_inputs = Vec::new();
        for atom in &query.atoms {
            if reachable.contains(&atom.alias) {
                continue;
            }
            unreachable.push(atom.alias.clone());
            let iface = registry.interface(&atom.service)?;
            for input in iface.schema.input_paths() {
                let covered_by_selection = query
                    .selections
                    .iter()
                    .any(|s| s.left.atom == atom.alias && s.left.path == input);
                if !covered_by_selection {
                    unbound_inputs.push(format!("{}.{}", atom.alias, input));
                }
            }
        }
        return Err(QueryError::Infeasible {
            unreachable,
            unbound_inputs,
        });
    }

    let mut pipe_edges: Vec<(String, String)> = Vec::new();
    for d in &dependencies {
        if let BindingSource::Piped { from_atom, .. } = &d.source {
            let edge = (from_atom.clone(), d.to_atom.clone());
            if !pipe_edges.contains(&edge) {
                pipe_edges.push(edge);
            }
        }
    }

    Ok(FeasibilityReport {
        order,
        dependencies,
        pipe_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{running_example, QueryBuilder};
    use seco_model::Value;
    use seco_services::domains::entertainment;

    #[test]
    fn running_example_is_feasible_with_theatre_feeding_restaurant() {
        let reg = entertainment::build_registry(1).unwrap();
        let report = analyze(&running_example(), &reg).unwrap();
        assert_eq!(report.order.len(), 3);
        // M and T are reachable from INPUTs; R only via T.
        assert!(report.is_source("M"));
        assert!(report.is_source("T"));
        assert!(!report.is_source("R"));
        assert_eq!(report.predecessors_of("R"), vec!["T"]);
        assert_eq!(report.pipe_edges, vec![("T".to_owned(), "R".to_owned())]);
        // R's three address inputs are piped, the category is constant.
        let r_bindings = report.bindings_of("R");
        let piped = r_bindings.iter().filter(|d| d.is_pipe()).count();
        assert_eq!(piped, 3);
        assert_eq!(r_bindings.len(), 4);
    }

    #[test]
    fn missing_input_makes_query_infeasible() {
        let reg = entertainment::build_registry(1).unwrap();
        // Theatre without its address inputs bound.
        let q = QueryBuilder::new()
            .atom("T", "Theatre1")
            .select_const(
                "T",
                "UCity",
                seco_model::Comparator::Eq,
                Value::text("Milano"),
            )
            .build()
            .unwrap();
        let err = analyze(&q, &reg).unwrap_err();
        match err {
            QueryError::Infeasible {
                unreachable,
                unbound_inputs,
            } => {
                assert_eq!(unreachable, vec!["T"]);
                assert!(unbound_inputs.contains(&"T.UAddress".to_owned()));
                assert!(unbound_inputs.contains(&"T.UCountry".to_owned()));
            }
            other => panic!("expected Infeasible, got {other}"),
        }
    }

    #[test]
    fn non_equality_selection_binds_an_input() {
        // The chapter's own example: Openings.Date > INPUT3 counts.
        let reg = entertainment::build_registry(1).unwrap();
        let q = QueryBuilder::new()
            .atom("M", "Movie1")
            .select_input("M", "Genres.Genre", seco_model::Comparator::Eq, "I1")
            .select_input("M", "Language", seco_model::Comparator::Eq, "I2")
            .select_input("M", "Openings.Country", seco_model::Comparator::Eq, "I3")
            .select_input("M", "Openings.Date", seco_model::Comparator::Gt, "I4")
            .build()
            .unwrap();
        let report = analyze(&q, &reg).unwrap();
        assert_eq!(report.order, vec!["M"]);
        // The Date binding records its non-equality comparator.
        let date = report
            .bindings_of("M")
            .into_iter()
            .find(|d| d.input == AttributePath::sub("Openings", "Date"))
            .unwrap();
        match &date.source {
            BindingSource::Constant { op, .. } => assert_eq!(*op, Comparator::Gt),
            other => panic!("expected constant binding, got {other:?}"),
        }
    }

    #[test]
    fn chains_of_pipes_are_resolved_transitively() {
        // M -> T (via join on outputs feeding T's inputs is not the real
        // schema; instead verify R is only reachable after T).
        let reg = entertainment::build_registry(1).unwrap();
        let mut q = running_example();
        // Remove the DinnerPlace pattern: R loses its piped inputs.
        q.patterns.retain(|p| p.pattern != "DinnerPlace");
        let err = analyze(&q, &reg).unwrap_err();
        assert!(matches!(err, QueryError::Infeasible { .. }));
    }

    #[test]
    fn order_respects_dependencies() {
        let reg = entertainment::build_registry(1).unwrap();
        let report = analyze(&running_example(), &reg).unwrap();
        let pos = |a: &str| report.order.iter().position(|x| x == a).unwrap();
        assert!(pos("T") < pos("R"), "T must become reachable before R");
    }
}
