//! Compile-once predicate evaluation for the join hot path.
//!
//! The interpreted evaluator in [`crate::predicate`] re-resolves every
//! `QualifiedPath` through the schema map, allocates `String` group keys,
//! and builds a fresh `BTreeMap` assignment per candidate pair. A join
//! stage evaluates the same predicate set once per candidate — up to
//! `nX × nY` times per tile — so this module compiles the set once per
//! stage: every path becomes a direct `(component, field, sub)` accessor,
//! repeating groups become pre-sorted slots, and the row odometer runs
//! over caller-owned scratch buffers without touching the heap.
//!
//! The compiled evaluator is a *mirror* of
//! [`crate::predicate::satisfies_available`], not a rewrite: the
//! active-predicate filter, the `(atom, group)`-sorted group collection,
//! the odometer advance order, and the in-order short-circuit evaluation
//! reproduce the interpreter decision-for-decision and error-for-error,
//! so swapping it in cannot change results. [`CompiledPredicates::compile`]
//! returns `None` whenever anything cannot be pre-resolved (unknown atom,
//! unresolvable path); callers then fall back to the interpreted path,
//! which also preserves the interpreter's error behavior for malformed
//! inputs.
//!
//! Compilation additionally classifies predicates: conjuncts of the form
//! `X.a = Y.b` over *atomic* attributes of *distinct* atoms with
//! compatible types are surfaced as [`EquiCandidate`]s, which the join
//! layer uses to build hash indexes (see `seco-join`). Such a predicate
//! is independent of any group-row assignment, so a key mismatch falsifies
//! the conjunction under every mapping — skipping non-matching pairs is
//! exact. Predicates with incompatible operand types are *not* surfaced:
//! the baseline raises `IncomparableValues` on them, and the fallback path
//! must keep doing so.

use seco_model::{Comparator, CompositeTuple, DataType, Symbol, Value};

use crate::ast::QualifiedPath;
use crate::error::QueryError;
use crate::predicate::{ResolvedPredicate, SchemaMap};

/// A pre-resolved reference to one side of a predicate: which atom, which
/// field slot, and (for grouped paths) which sub-attribute and group slot.
#[derive(Debug, Clone, Copy)]
struct Accessor {
    /// Index into [`CompiledPredicates::atoms`].
    atom_idx: usize,
    /// Field slot index in the atom's tuple.
    field: usize,
    /// Sub-attribute index within a group row, when the path is grouped.
    sub: Option<usize>,
    /// Index into [`CompiledPredicates::groups`]; only valid when `sub`
    /// is `Some`.
    group_slot: usize,
    /// Attribute name, kept for error messages.
    attr: Symbol,
}

#[derive(Debug, Clone)]
enum CompiledPred {
    Selection {
        left: Accessor,
        op: Comparator,
        value: Value,
    },
    Join {
        left: Accessor,
        op: Comparator,
        right: Accessor,
    },
}

/// One repeating group referenced by the predicate set.
#[derive(Debug, Clone, Copy)]
struct GroupSlot {
    /// Index into [`CompiledPredicates::atoms`].
    atom_idx: usize,
    /// Field slot of the group in the atom's tuple.
    field: usize,
}

/// An equality conjunct `left_atom.field = right_atom.field` over atomic
/// attributes of two distinct atoms: the raw material for hash-join keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquiCandidate {
    /// Alias of the left atom.
    pub left_atom: Symbol,
    /// Atomic field slot on the left tuple.
    pub left_field: usize,
    /// Alias of the right atom.
    pub right_atom: Symbol,
    /// Atomic field slot on the right tuple.
    pub right_field: usize,
}

/// A predicate set compiled against a schema map: direct accessors, slot
/// numbers for every referenced repeating group, and the extracted
/// equi-join candidates.
#[derive(Debug, Clone)]
pub struct CompiledPredicates {
    /// Distinct atom aliases referenced by the predicates.
    atoms: Vec<Symbol>,
    /// Schema (service) name per atom, for error messages.
    schema_names: Vec<String>,
    preds: Vec<CompiledPred>,
    /// Referenced repeating groups, sorted by `(alias, group name)` — the
    /// same order the interpreter's `BTreeMap` iterates in.
    groups: Vec<GroupSlot>,
    equi: Vec<EquiCandidate>,
}

/// Reusable buffers for [`CompiledPredicates::eval`]. Owned by the caller
/// so a join stage performs zero allocations per candidate.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Per compiled atom: its position in the composite, or `usize::MAX`.
    comp_idx: Vec<usize>,
    /// Indices of predicates whose atoms are all present.
    active: Vec<usize>,
    /// Per group slot: referenced by an active predicate this call?
    group_used: Vec<bool>,
    /// Per group slot: row count in the current composite.
    counts: Vec<usize>,
    /// Per group slot: the row selected by the current odometer state.
    rows: Vec<usize>,
    /// Referenced group slots in slot (= sorted) order; the odometer
    /// advances `order[0]` fastest, exactly like the interpreter.
    order: Vec<usize>,
}

fn types_compatible(a: DataType, b: DataType) -> bool {
    let numeric = |t| matches!(t, DataType::Int | DataType::Float);
    a == b || (numeric(a) && numeric(b))
}

/// The declared type of a constant operand, `None` for `Null` (which
/// never raises a comparison error: `eval` short-circuits on it).
fn const_type(v: &Value) -> Option<DataType> {
    match v {
        Value::Null => None,
        Value::Bool(_) => Some(DataType::Bool),
        Value::Int(_) => Some(DataType::Int),
        Value::Float(_) => Some(DataType::Float),
        Value::Text(_) => Some(DataType::Text),
        Value::Date(_) => Some(DataType::Date),
    }
}

/// True when `op` over operands of these types can never return an
/// error for schema-conforming values. `Like` demands text on both
/// sides; the other comparators accept identical or numeric-promotable
/// pairs. `None` (a `Null` constant) is always safe.
fn cmp_is_total(op: Comparator, left: DataType, right: Option<DataType>) -> bool {
    match right {
        None => true,
        Some(r) => {
            if op == Comparator::Like {
                left == DataType::Text && r == DataType::Text
            } else {
                types_compatible(left, r)
            }
        }
    }
}

/// Intermediate per-path resolution used during compilation.
struct ResolvedPath {
    atom_idx: usize,
    alias: Symbol,
    field: usize,
    sub: Option<usize>,
    attr: Symbol,
    dtype: DataType,
}

impl CompiledPredicates {
    /// Compiles `predicates` against `schemas`. Returns `None` when any
    /// path fails to resolve — callers must fall back to the interpreted
    /// evaluator so error behavior on malformed inputs is unchanged.
    pub fn compile(predicates: &[ResolvedPredicate], schemas: &SchemaMap<'_>) -> Option<Self> {
        let mut atoms: Vec<Symbol> = Vec::new();
        let mut schema_names: Vec<String> = Vec::new();
        // (alias, group name) -> (atom_idx, field); BTreeMap iteration
        // gives the interpreter's sorted group order.
        let mut group_keys: std::collections::BTreeMap<(Symbol, Symbol), GroupSlot> =
            std::collections::BTreeMap::new();

        let mut resolve_path = |qp: &QualifiedPath| -> Option<ResolvedPath> {
            let schema = schemas.get(&qp.atom)?;
            let (field, sub) = schema.resolve(&qp.path).ok()?;
            let dtype = schema.type_of(&qp.path).ok()?;
            let alias = Symbol::intern(&qp.atom);
            let atom_idx = match atoms.iter().position(|a| *a == alias) {
                Some(i) => i,
                None => {
                    atoms.push(alias);
                    schema_names.push(schema.name.clone());
                    atoms.len() - 1
                }
            };
            if sub.is_some() {
                group_keys
                    .entry((alias, qp.path.attr))
                    .or_insert(GroupSlot { atom_idx, field });
            }
            Some(ResolvedPath {
                atom_idx,
                alias,
                field,
                sub,
                attr: qp.path.attr,
                dtype,
            })
        };

        // First pass: resolve every path (collecting atoms and groups).
        enum Partial {
            Selection(ResolvedPath, Comparator, Value),
            Join(ResolvedPath, Comparator, ResolvedPath),
        }
        let mut partial = Vec::with_capacity(predicates.len());
        for p in predicates {
            match p {
                ResolvedPredicate::Selection { left, op, value } => {
                    partial.push(Partial::Selection(resolve_path(left)?, *op, value.clone()));
                }
                ResolvedPredicate::Join(j) => {
                    partial.push(Partial::Join(
                        resolve_path(&j.left)?,
                        j.op,
                        resolve_path(&j.right)?,
                    ));
                }
            }
        }

        // Assign group slots in sorted-key order.
        let groups: Vec<GroupSlot> = group_keys.values().copied().collect();
        let slot_of = |alias: Symbol, attr: Symbol| -> usize {
            group_keys
                .keys()
                .position(|k| *k == (alias, attr))
                .unwrap_or(usize::MAX)
        };
        let accessor = |rp: &ResolvedPath| -> Accessor {
            Accessor {
                atom_idx: rp.atom_idx,
                field: rp.field,
                sub: rp.sub,
                group_slot: match rp.sub {
                    Some(_) => slot_of(rp.alias, rp.attr),
                    None => usize::MAX,
                },
                attr: rp.attr,
            }
        };

        // A skipped pair must not hide an error the interpreter would
        // have raised from *any* predicate in the set, so equi keys are
        // only extracted when every predicate is statically total.
        let mut all_total = true;
        let mut preds = Vec::with_capacity(partial.len());
        let mut equi = Vec::new();
        for p in &partial {
            match p {
                Partial::Selection(left, op, value) => {
                    all_total &= cmp_is_total(*op, left.dtype, const_type(value));
                    preds.push(CompiledPred::Selection {
                        left: accessor(left),
                        op: *op,
                        value: value.clone(),
                    });
                }
                Partial::Join(left, op, right) => {
                    all_total &= cmp_is_total(*op, left.dtype, Some(right.dtype));
                    if *op == Comparator::Eq
                        && left.sub.is_none()
                        && right.sub.is_none()
                        && left.alias != right.alias
                        && types_compatible(left.dtype, right.dtype)
                    {
                        equi.push(EquiCandidate {
                            left_atom: left.alias,
                            left_field: left.field,
                            right_atom: right.alias,
                            right_field: right.field,
                        });
                    }
                    preds.push(CompiledPred::Join {
                        left: accessor(left),
                        op: *op,
                        right: accessor(right),
                    });
                }
            }
        }

        if !all_total {
            equi.clear();
        }
        Some(CompiledPredicates {
            atoms,
            schema_names,
            preds,
            groups,
            equi,
        })
    }

    /// The extracted equality conjuncts usable as hash-join keys.
    pub fn equi_candidates(&self) -> &[EquiCandidate] {
        &self.equi
    }

    /// Number of compiled predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the set is empty (every composite satisfies it).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Non-strict evaluation, mirroring
    /// [`crate::predicate::satisfies_available`]: predicates whose atoms
    /// are not all present are skipped; the rest must hold under a single
    /// group-row mapping.
    pub fn eval(
        &self,
        composite: &CompositeTuple,
        s: &mut EvalScratch,
    ) -> Result<bool, QueryError> {
        // Locate each compiled atom in this composite.
        s.comp_idx.clear();
        for a in &self.atoms {
            let pos = composite
                .atoms
                .iter()
                .position(|x| x == a)
                .unwrap_or(usize::MAX);
            s.comp_idx.push(pos);
        }

        // Active-predicate filter, in predicate order.
        s.active.clear();
        for (i, p) in self.preds.iter().enumerate() {
            let present = match p {
                CompiledPred::Selection { left, .. } => s.comp_idx[left.atom_idx] != usize::MAX,
                CompiledPred::Join { left, right, .. } => {
                    s.comp_idx[left.atom_idx] != usize::MAX
                        && s.comp_idx[right.atom_idx] != usize::MAX
                }
            };
            if present {
                s.active.push(i);
            }
        }
        if s.active.is_empty() {
            return Ok(true);
        }

        // Collect the groups referenced by active predicates; slot order
        // is the interpreter's sorted order.
        s.group_used.clear();
        s.group_used.resize(self.groups.len(), false);
        for &i in &s.active {
            match &self.preds[i] {
                CompiledPred::Selection { left, .. } => {
                    if left.sub.is_some() {
                        s.group_used[left.group_slot] = true;
                    }
                }
                CompiledPred::Join { left, right, .. } => {
                    if left.sub.is_some() {
                        s.group_used[left.group_slot] = true;
                    }
                    if right.sub.is_some() {
                        s.group_used[right.group_slot] = true;
                    }
                }
            }
        }
        s.counts.clear();
        s.counts.resize(self.groups.len(), 0);
        s.order.clear();
        for (slot, g) in self.groups.iter().enumerate() {
            if !s.group_used[slot] {
                continue;
            }
            let n = composite.components[s.comp_idx[g.atom_idx]]
                .group_at(g.field)
                .len();
            if n == 0 {
                // No mapping exists for an empty referenced group.
                return Ok(false);
            }
            s.counts[slot] = n;
            s.order.push(slot);
        }

        // Odometer over row choices; order[0] advances fastest.
        s.rows.clear();
        s.rows.resize(self.groups.len(), 0);
        loop {
            let mut all_hold = true;
            for &i in &s.active {
                let holds = match &self.preds[i] {
                    CompiledPred::Selection { left, op, value } => {
                        let lv = self.value_of(left, composite, s)?;
                        op.eval(lv, value).map_err(QueryError::Model)?
                    }
                    CompiledPred::Join { left, op, right } => {
                        let lv = self.value_of(left, composite, s)?;
                        let rv = self.value_of(right, composite, s)?;
                        op.eval(lv, rv).map_err(QueryError::Model)?
                    }
                };
                if !holds {
                    all_hold = false;
                    break;
                }
            }
            if all_hold {
                return Ok(true);
            }
            let mut k = 0;
            loop {
                if k == s.order.len() {
                    return Ok(false);
                }
                let slot = s.order[k];
                s.rows[slot] += 1;
                if s.rows[slot] < s.counts[slot] {
                    break;
                }
                s.rows[slot] = 0;
                k += 1;
            }
        }
    }

    fn value_of<'t>(
        &self,
        acc: &Accessor,
        composite: &'t CompositeTuple,
        s: &EvalScratch,
    ) -> Result<&'t Value, QueryError> {
        let tuple = &composite.components[s.comp_idx[acc.atom_idx]];
        match acc.sub {
            None => Ok(tuple.atomic_at(acc.field)),
            Some(sub) => {
                let row = s.rows[acc.group_slot];
                tuple
                    .group_at(acc.field)
                    .get(row)
                    .and_then(|r| r.values.get(sub))
                    .ok_or_else(|| {
                        QueryError::Model(seco_model::ModelError::SchemaViolation {
                            service: self.schema_names[acc.atom_idx].clone(),
                            detail: format!("group `{}` has no row {row}", acc.attr),
                        })
                    })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::JoinPredicate;
    use crate::predicate::satisfies_available;
    use seco_model::{AttributePath, ServiceSchema};
    use seco_services::table::chapter_semantics_example;
    use seco_services::Service;

    fn setup() -> (
        Vec<seco_model::SharedTuple>,
        Vec<seco_model::SharedTuple>,
        ServiceSchema,
        ServiceSchema,
    ) {
        let (s1, s2) = chapter_semantics_example();
        (
            s1.rows().to_vec(),
            s2.rows().to_vec(),
            s1.interface().schema.clone(),
            s2.interface().schema.clone(),
        )
    }

    fn schema_map<'a>(entries: &[(&str, &'a ServiceSchema)]) -> SchemaMap<'a> {
        entries.iter().map(|(a, s)| ((*a).to_owned(), *s)).collect()
    }

    #[test]
    fn compiled_matches_interpreter_on_the_chapter_example() {
        // Q1 selections (grouped paths) and Q2 joins over S1/S2.
        let (s1_rows, s2_rows, s1_schema, s2_schema) = setup();
        let schemas = schema_map(&[("S1", &s1_schema), ("S2", &s2_schema)]);
        let preds = vec![
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
                op: Comparator::Eq,
                right: QualifiedPath::new("S2", AttributePath::sub("R", "A")),
            }),
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "B")),
                op: Comparator::Eq,
                right: QualifiedPath::new("S2", AttributePath::sub("R", "B")),
            }),
        ];
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let mut scratch = EvalScratch::default();
        for x in &s1_rows {
            for y in &s2_rows {
                let c = CompositeTuple::single("S1", x.clone()).extend_with("S2", y.clone());
                let interp = satisfies_available(&preds, &c, &schemas).unwrap();
                let comp = compiled.eval(&c, &mut scratch).unwrap();
                assert_eq!(interp, comp, "divergence on {c}");
            }
        }
        // Grouped paths must not become equi candidates.
        assert!(compiled.equi_candidates().is_empty());
    }

    #[test]
    fn compiled_skips_predicates_with_missing_atoms() {
        let (s1_rows, _, s1_schema, s2_schema) = setup();
        let schemas = schema_map(&[("S1", &s1_schema), ("S2", &s2_schema)]);
        let preds = vec![ResolvedPredicate::Join(JoinPredicate {
            left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
            op: Comparator::Eq,
            right: QualifiedPath::new("S2", AttributePath::sub("R", "A")),
        })];
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let mut scratch = EvalScratch::default();
        let partial = CompositeTuple::single("S1", s1_rows[0].clone());
        assert!(compiled.eval(&partial, &mut scratch).unwrap());
        assert!(satisfies_available(&preds, &partial, &schemas).unwrap());
    }

    #[test]
    fn selection_on_grouped_path_matches_interpreter() {
        let (s1_rows, _, s1_schema, _) = setup();
        let schemas = schema_map(&[("S1", &s1_schema)]);
        let preds = vec![
            ResolvedPredicate::Selection {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
                op: Comparator::Eq,
                value: Value::Int(1),
            },
            ResolvedPredicate::Selection {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "B")),
                op: Comparator::Eq,
                value: Value::text("x"),
            },
        ];
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let mut scratch = EvalScratch::default();
        for row in &s1_rows {
            let c = CompositeTuple::single("S1", row.clone());
            assert_eq!(
                satisfies_available(&preds, &c, &schemas).unwrap(),
                compiled.eval(&c, &mut scratch).unwrap(),
            );
        }
    }

    #[test]
    fn unknown_atom_fails_compilation() {
        let (_, _, s1_schema, _) = setup();
        let schemas = schema_map(&[("S1", &s1_schema)]);
        let preds = vec![ResolvedPredicate::Selection {
            left: QualifiedPath::new("Nope", AttributePath::atomic("X")),
            op: Comparator::Eq,
            value: Value::Int(1),
        }];
        assert!(CompiledPredicates::compile(&preds, &schemas).is_none());
    }

    #[test]
    fn equi_candidates_require_atomic_distinct_compatible_sides() {
        use seco_model::{Adornment, AttributeDef, DataType};
        let left = ServiceSchema::new(
            "L1",
            vec![
                AttributeDef::atomic("Key", DataType::Text, Adornment::Output),
                AttributeDef::atomic("N", DataType::Int, Adornment::Output),
            ],
        )
        .unwrap();
        let right = ServiceSchema::new(
            "R1",
            vec![
                AttributeDef::atomic("Key", DataType::Text, Adornment::Output),
                AttributeDef::atomic("M", DataType::Float, Adornment::Output),
                AttributeDef::atomic("Flag", DataType::Bool, Adornment::Output),
            ],
        )
        .unwrap();
        let schemas = schema_map(&[("L", &left), ("R", &right)]);
        let preds = vec![
            // Text = Text: candidate.
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("Key")),
                op: Comparator::Eq,
                right: QualifiedPath::new("R", AttributePath::atomic("Key")),
            }),
            // Int = Float: numeric promotion, still a candidate.
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("N")),
                op: Comparator::Eq,
                right: QualifiedPath::new("R", AttributePath::atomic("M")),
            }),
            // Lt: not an equality, but total — does not block the others.
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("N")),
                op: Comparator::Lt,
                right: QualifiedPath::new("R", AttributePath::atomic("M")),
            }),
        ];
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let equi = compiled.equi_candidates();
        assert_eq!(equi.len(), 2);
        assert!(equi[0].left_atom.is("L") && equi[0].right_atom.is("R"));
        assert_eq!(equi[0].left_field, 0);
        assert_eq!(equi[0].right_field, 0);
        assert_eq!(equi[1].left_field, 1);
        assert_eq!(equi[1].right_field, 1);

        // An incomparable predicate (Int = Bool) makes the interpreter
        // error at runtime; its presence suppresses every equi key so the
        // fallback path keeps erroring on the same pairs.
        let with_incomparable = [
            preds[0].clone(),
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("N")),
                op: Comparator::Eq,
                right: QualifiedPath::new("R", AttributePath::atomic("Flag")),
            }),
        ];
        let compiled = CompiledPredicates::compile(&with_incomparable, &schemas).expect("compiles");
        assert!(compiled.equi_candidates().is_empty());
    }
}
