//! Compile-once predicate evaluation for the join hot path.
//!
//! The interpreted evaluator in [`crate::predicate`] re-resolves every
//! `QualifiedPath` through the schema map, allocates `String` group keys,
//! and builds a fresh `BTreeMap` assignment per candidate pair. A join
//! stage evaluates the same predicate set once per candidate — up to
//! `nX × nY` times per tile — so this module compiles the set once per
//! stage: every path becomes a direct `(component, field, sub)` accessor,
//! repeating groups become pre-sorted slots, and the row odometer runs
//! over caller-owned scratch buffers without touching the heap.
//!
//! The compiled evaluator is a *mirror* of
//! [`crate::predicate::satisfies_available`], not a rewrite: the
//! active-predicate filter, the `(atom, group)`-sorted group collection,
//! the odometer advance order, and the in-order short-circuit evaluation
//! reproduce the interpreter decision-for-decision and error-for-error,
//! so swapping it in cannot change results. [`CompiledPredicates::compile`]
//! returns `None` whenever anything cannot be pre-resolved (unknown atom,
//! unresolvable path); callers then fall back to the interpreted path,
//! which also preserves the interpreter's error behavior for malformed
//! inputs.
//!
//! Compilation additionally classifies predicates: conjuncts of the form
//! `X.a = Y.b` over *atomic* attributes of *distinct* atoms with
//! compatible types are surfaced as [`EquiCandidate`]s, which the join
//! layer uses to build hash indexes (see `seco-join`). Such a predicate
//! is independent of any group-row assignment, so a key mismatch falsifies
//! the conjunction under every mapping — skipping non-matching pairs is
//! exact. Predicates with incompatible operand types are *not* surfaced:
//! the baseline raises `IncomparableValues` on them, and the fallback path
//! must keep doing so.

use seco_model::value::like_match;
use seco_model::{BitMask, Column, ColumnRef, Comparator, CompositeTuple, DataType, Symbol, Value};

use crate::ast::QualifiedPath;
use crate::error::QueryError;
use crate::predicate::{ResolvedPredicate, SchemaMap};

/// A pre-resolved reference to one side of a predicate: which atom, which
/// field slot, and (for grouped paths) which sub-attribute and group slot.
#[derive(Debug, Clone, Copy)]
struct Accessor {
    /// Index into [`CompiledPredicates::atoms`].
    atom_idx: usize,
    /// Field slot index in the atom's tuple.
    field: usize,
    /// Sub-attribute index within a group row, when the path is grouped.
    sub: Option<usize>,
    /// Index into [`CompiledPredicates::groups`]; only valid when `sub`
    /// is `Some`.
    group_slot: usize,
    /// Attribute name, kept for error messages.
    attr: Symbol,
}

#[derive(Debug, Clone)]
enum CompiledPred {
    Selection {
        left: Accessor,
        op: Comparator,
        value: Value,
    },
    Join {
        left: Accessor,
        op: Comparator,
        right: Accessor,
    },
}

/// One repeating group referenced by the predicate set.
#[derive(Debug, Clone, Copy)]
struct GroupSlot {
    /// Index into [`CompiledPredicates::atoms`].
    atom_idx: usize,
    /// Field slot of the group in the atom's tuple.
    field: usize,
}

/// An equality conjunct `left_atom.field = right_atom.field` over atomic
/// attributes of two distinct atoms: the raw material for hash-join keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquiCandidate {
    /// Alias of the left atom.
    pub left_atom: Symbol,
    /// Atomic field slot on the left tuple.
    pub left_field: usize,
    /// Alias of the right atom.
    pub right_atom: Symbol,
    /// Atomic field slot on the right tuple.
    pub right_field: usize,
}

/// A predicate set compiled against a schema map: direct accessors, slot
/// numbers for every referenced repeating group, and the extracted
/// equi-join candidates.
#[derive(Debug, Clone)]
pub struct CompiledPredicates {
    /// Distinct atom aliases referenced by the predicates.
    atoms: Vec<Symbol>,
    /// Schema (service) name per atom, for error messages.
    schema_names: Vec<String>,
    preds: Vec<CompiledPred>,
    /// Per predicate: statically total per [`cmp_is_total`] (can never
    /// raise a comparison error on schema-conforming values). Batch
    /// kernels only cover total predicates.
    totals: Vec<bool>,
    /// Referenced repeating groups, sorted by `(alias, group name)` — the
    /// same order the interpreter's `BTreeMap` iterates in.
    groups: Vec<GroupSlot>,
    equi: Vec<EquiCandidate>,
}

/// Reusable buffers for [`CompiledPredicates::eval`]. Owned by the caller
/// so a join stage performs zero allocations per candidate.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Per compiled atom: its position in the composite, or `usize::MAX`.
    comp_idx: Vec<usize>,
    /// Indices of predicates whose atoms are all present.
    active: Vec<usize>,
    /// Per group slot: referenced by an active predicate this call?
    group_used: Vec<bool>,
    /// Per group slot: row count in the current composite.
    counts: Vec<usize>,
    /// Per group slot: the row selected by the current odometer state.
    rows: Vec<usize>,
    /// Referenced group slots in slot (= sorted) order; the odometer
    /// advances `order[0]` fastest, exactly like the interpreter.
    order: Vec<usize>,
}

fn types_compatible(a: DataType, b: DataType) -> bool {
    let numeric = |t| matches!(t, DataType::Int | DataType::Float);
    a == b || (numeric(a) && numeric(b))
}

/// The declared type of a constant operand, `None` for `Null` (which
/// never raises a comparison error: `eval` short-circuits on it).
fn const_type(v: &Value) -> Option<DataType> {
    match v {
        Value::Null => None,
        Value::Bool(_) => Some(DataType::Bool),
        Value::Int(_) => Some(DataType::Int),
        Value::Float(_) => Some(DataType::Float),
        Value::Text(_) => Some(DataType::Text),
        Value::Date(_) => Some(DataType::Date),
    }
}

/// True when `op` over operands of these types can never return an
/// error for schema-conforming values. `Like` demands text on both
/// sides; the other comparators accept identical or numeric-promotable
/// pairs. `None` (a `Null` constant) is always safe.
fn cmp_is_total(op: Comparator, left: DataType, right: Option<DataType>) -> bool {
    match right {
        None => true,
        Some(r) => {
            if op == Comparator::Like {
                left == DataType::Text && r == DataType::Text
            } else {
                types_compatible(left, r)
            }
        }
    }
}

/// Intermediate per-path resolution used during compilation.
struct ResolvedPath {
    atom_idx: usize,
    alias: Symbol,
    field: usize,
    sub: Option<usize>,
    attr: Symbol,
    dtype: DataType,
}

impl CompiledPredicates {
    /// Compiles `predicates` against `schemas`. Returns `None` when any
    /// path fails to resolve — callers must fall back to the interpreted
    /// evaluator so error behavior on malformed inputs is unchanged.
    pub fn compile(predicates: &[ResolvedPredicate], schemas: &SchemaMap<'_>) -> Option<Self> {
        let mut atoms: Vec<Symbol> = Vec::new();
        let mut schema_names: Vec<String> = Vec::new();
        // (alias, group name) -> (atom_idx, field); BTreeMap iteration
        // gives the interpreter's sorted group order.
        let mut group_keys: std::collections::BTreeMap<(Symbol, Symbol), GroupSlot> =
            std::collections::BTreeMap::new();

        let mut resolve_path = |qp: &QualifiedPath| -> Option<ResolvedPath> {
            let schema = schemas.get(&qp.atom)?;
            let (field, sub) = schema.resolve(&qp.path).ok()?;
            let dtype = schema.type_of(&qp.path).ok()?;
            let alias = Symbol::intern(&qp.atom);
            let atom_idx = match atoms.iter().position(|a| *a == alias) {
                Some(i) => i,
                None => {
                    atoms.push(alias);
                    schema_names.push(schema.name.clone());
                    atoms.len() - 1
                }
            };
            if sub.is_some() {
                group_keys
                    .entry((alias, qp.path.attr))
                    .or_insert(GroupSlot { atom_idx, field });
            }
            Some(ResolvedPath {
                atom_idx,
                alias,
                field,
                sub,
                attr: qp.path.attr,
                dtype,
            })
        };

        // First pass: resolve every path (collecting atoms and groups).
        enum Partial {
            Selection(ResolvedPath, Comparator, Value),
            Join(ResolvedPath, Comparator, ResolvedPath),
        }
        let mut partial = Vec::with_capacity(predicates.len());
        for p in predicates {
            match p {
                ResolvedPredicate::Selection { left, op, value } => {
                    partial.push(Partial::Selection(resolve_path(left)?, *op, value.clone()));
                }
                ResolvedPredicate::Join(j) => {
                    partial.push(Partial::Join(
                        resolve_path(&j.left)?,
                        j.op,
                        resolve_path(&j.right)?,
                    ));
                }
            }
        }

        // Assign group slots in sorted-key order.
        let groups: Vec<GroupSlot> = group_keys.values().copied().collect();
        let slot_of = |alias: Symbol, attr: Symbol| -> usize {
            group_keys
                .keys()
                .position(|k| *k == (alias, attr))
                .unwrap_or(usize::MAX)
        };
        let accessor = |rp: &ResolvedPath| -> Accessor {
            Accessor {
                atom_idx: rp.atom_idx,
                field: rp.field,
                sub: rp.sub,
                group_slot: match rp.sub {
                    Some(_) => slot_of(rp.alias, rp.attr),
                    None => usize::MAX,
                },
                attr: rp.attr,
            }
        };

        // A skipped pair must not hide an error the interpreter would
        // have raised from *any* predicate in the set, so equi keys are
        // only extracted when every predicate is statically total.
        let mut preds = Vec::with_capacity(partial.len());
        let mut totals = Vec::with_capacity(partial.len());
        let mut equi = Vec::new();
        for p in &partial {
            match p {
                Partial::Selection(left, op, value) => {
                    totals.push(cmp_is_total(*op, left.dtype, const_type(value)));
                    preds.push(CompiledPred::Selection {
                        left: accessor(left),
                        op: *op,
                        value: value.clone(),
                    });
                }
                Partial::Join(left, op, right) => {
                    totals.push(cmp_is_total(*op, left.dtype, Some(right.dtype)));
                    if *op == Comparator::Eq
                        && left.sub.is_none()
                        && right.sub.is_none()
                        && left.alias != right.alias
                        && types_compatible(left.dtype, right.dtype)
                    {
                        equi.push(EquiCandidate {
                            left_atom: left.alias,
                            left_field: left.field,
                            right_atom: right.alias,
                            right_field: right.field,
                        });
                    }
                    preds.push(CompiledPred::Join {
                        left: accessor(left),
                        op: *op,
                        right: accessor(right),
                    });
                }
            }
        }

        let all_total = totals.iter().all(|t| *t);
        if !all_total {
            equi.clear();
        }
        Some(CompiledPredicates {
            atoms,
            schema_names,
            preds,
            totals,
            groups,
            equi,
        })
    }

    /// The extracted equality conjuncts usable as hash-join keys.
    pub fn equi_candidates(&self) -> &[EquiCandidate] {
        &self.equi
    }

    /// Number of compiled predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the set is empty (every composite satisfies it).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Non-strict evaluation, mirroring
    /// [`crate::predicate::satisfies_available`]: predicates whose atoms
    /// are not all present are skipped; the rest must hold under a single
    /// group-row mapping.
    pub fn eval(
        &self,
        composite: &CompositeTuple,
        s: &mut EvalScratch,
    ) -> Result<bool, QueryError> {
        // Locate each compiled atom in this composite.
        s.comp_idx.clear();
        for a in &self.atoms {
            let pos = composite
                .atoms
                .iter()
                .position(|x| x == a)
                .unwrap_or(usize::MAX);
            s.comp_idx.push(pos);
        }

        // Active-predicate filter, in predicate order.
        s.active.clear();
        for (i, p) in self.preds.iter().enumerate() {
            let present = match p {
                CompiledPred::Selection { left, .. } => s.comp_idx[left.atom_idx] != usize::MAX,
                CompiledPred::Join { left, right, .. } => {
                    s.comp_idx[left.atom_idx] != usize::MAX
                        && s.comp_idx[right.atom_idx] != usize::MAX
                }
            };
            if present {
                s.active.push(i);
            }
        }
        if s.active.is_empty() {
            return Ok(true);
        }

        // Collect the groups referenced by active predicates; slot order
        // is the interpreter's sorted order.
        s.group_used.clear();
        s.group_used.resize(self.groups.len(), false);
        for &i in &s.active {
            match &self.preds[i] {
                CompiledPred::Selection { left, .. } => {
                    if left.sub.is_some() {
                        s.group_used[left.group_slot] = true;
                    }
                }
                CompiledPred::Join { left, right, .. } => {
                    if left.sub.is_some() {
                        s.group_used[left.group_slot] = true;
                    }
                    if right.sub.is_some() {
                        s.group_used[right.group_slot] = true;
                    }
                }
            }
        }
        s.counts.clear();
        s.counts.resize(self.groups.len(), 0);
        s.order.clear();
        for (slot, g) in self.groups.iter().enumerate() {
            if !s.group_used[slot] {
                continue;
            }
            let n = composite.components[s.comp_idx[g.atom_idx]]
                .group_at(g.field)
                .len();
            if n == 0 {
                // No mapping exists for an empty referenced group.
                return Ok(false);
            }
            s.counts[slot] = n;
            s.order.push(slot);
        }

        // Odometer over row choices; order[0] advances fastest.
        s.rows.clear();
        s.rows.resize(self.groups.len(), 0);
        loop {
            let mut all_hold = true;
            for &i in &s.active {
                let holds = match &self.preds[i] {
                    CompiledPred::Selection { left, op, value } => {
                        let lv = self.value_of(left, composite, s)?;
                        op.eval(lv, value).map_err(QueryError::Model)?
                    }
                    CompiledPred::Join { left, op, right } => {
                        let lv = self.value_of(left, composite, s)?;
                        let rv = self.value_of(right, composite, s)?;
                        op.eval(lv, rv).map_err(QueryError::Model)?
                    }
                };
                if !holds {
                    all_hold = false;
                    break;
                }
            }
            if all_hold {
                return Ok(true);
            }
            let mut k = 0;
            loop {
                if k == s.order.len() {
                    return Ok(false);
                }
                let slot = s.order[k];
                s.rows[slot] += 1;
                if s.rows[slot] < s.counts[slot] {
                    break;
                }
                s.rows[slot] = 0;
                k += 1;
            }
        }
    }

    /// Compiles a vectorized evaluation plan for the common join/filter
    /// shape: a *fixed* composite (zero or more atoms, constant across a
    /// batch) paired row-by-row with a *varying* side whose referenced
    /// attributes are available as typed columns.
    ///
    /// Returns `None` — caller stays on the scalar path — when any
    /// predicate active under `fixed ∪ varying` is grouped or not
    /// statically total, or when the two atom sets overlap. Predicates
    /// referencing atoms outside both sets are inactive for every row of
    /// the batch and are skipped, exactly like [`Self::eval`]'s
    /// active-predicate filter.
    pub fn batch_plan(
        &self,
        fixed_atoms: &[Symbol],
        varying_atoms: &[Symbol],
    ) -> Option<BatchPlan> {
        if fixed_atoms.iter().any(|a| varying_atoms.contains(a)) {
            return None;
        }
        enum Resolved {
            Absent,
            Grouped,
            Operand(BatchOperand),
        }
        let mut cols: Vec<(Symbol, usize)> = Vec::new();
        let mut preds = Vec::new();
        for (i, p) in self.preds.iter().enumerate() {
            let mut resolve = |acc: &Accessor| -> Resolved {
                let atom = self.atoms[acc.atom_idx];
                let fixed = fixed_atoms.contains(&atom);
                if !fixed && !varying_atoms.contains(&atom) {
                    return Resolved::Absent;
                }
                if acc.sub.is_some() {
                    return Resolved::Grouped;
                }
                if fixed {
                    Resolved::Operand(BatchOperand::Fixed {
                        atom,
                        field: acc.field,
                    })
                } else {
                    let col = match cols.iter().position(|c| *c == (atom, acc.field)) {
                        Some(c) => c,
                        None => {
                            cols.push((atom, acc.field));
                            cols.len() - 1
                        }
                    };
                    Resolved::Operand(BatchOperand::Varying { col })
                }
            };
            match p {
                CompiledPred::Selection { left, op, value } => match resolve(left) {
                    Resolved::Absent => continue,
                    Resolved::Grouped => return None,
                    Resolved::Operand(l) => {
                        if !self.totals[i] {
                            return None;
                        }
                        preds.push(BatchPred {
                            left: l,
                            op: *op,
                            right: BatchOperand::Const(value.clone()),
                        });
                    }
                },
                CompiledPred::Join { left, op, right } => match (resolve(left), resolve(right)) {
                    (Resolved::Absent, _) | (_, Resolved::Absent) => continue,
                    (Resolved::Grouped, _) | (_, Resolved::Grouped) => return None,
                    (Resolved::Operand(l), Resolved::Operand(r)) => {
                        if !self.totals[i] {
                            return None;
                        }
                        preds.push(BatchPred {
                            left: l,
                            op: *op,
                            right: r,
                        });
                    }
                },
            }
        }
        Some(BatchPlan { cols, preds })
    }

    fn value_of<'t>(
        &self,
        acc: &Accessor,
        composite: &'t CompositeTuple,
        s: &EvalScratch,
    ) -> Result<&'t Value, QueryError> {
        let tuple = &composite.components[s.comp_idx[acc.atom_idx]];
        match acc.sub {
            None => Ok(tuple.atomic_at(acc.field)),
            Some(sub) => {
                let row = s.rows[acc.group_slot];
                tuple
                    .group_at(acc.field)
                    .get(row)
                    .and_then(|r| r.values.get(sub))
                    .ok_or_else(|| {
                        QueryError::Model(seco_model::ModelError::SchemaViolation {
                            service: self.schema_names[acc.atom_idx].clone(),
                            detail: format!("group `{}` has no row {row}", acc.attr),
                        })
                    })
            }
        }
    }
}

/// Operand of a batch predicate.
#[derive(Debug, Clone)]
enum BatchOperand {
    /// Atomic field of the fixed composite, read once per kernel call.
    Fixed { atom: Symbol, field: usize },
    /// Column of the varying side (index into [`BatchPlan::columns`]).
    Varying { col: usize },
    /// Constant from a selection predicate.
    Const(Value),
}

#[derive(Debug, Clone)]
struct BatchPred {
    left: BatchOperand,
    op: Comparator,
    right: BatchOperand,
}

/// A vectorized evaluation plan produced by
/// [`CompiledPredicates::batch_plan`]: the active predicates with
/// operands resolved to fixed-composite fields, varying-side columns,
/// or constants.
///
/// The kernels are a batch mirror of the scalar conjunction: predicates
/// refine the selection in compile order, rows drop out at their first
/// failing predicate, and any pair the scalar evaluator would *error*
/// on (`NaN` under numeric promotion, incompatible variants hiding in a
/// `Mixed` column) makes the kernel report a fallback instead of a
/// result — the caller then re-runs the scalar path, which reproduces
/// the error exactly.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Distinct `(varying atom, field slot)` columns the kernels read.
    cols: Vec<(Symbol, usize)>,
    preds: Vec<BatchPred>,
}

/// An unpacked scalar operand: one row of a column, a fixed field, or a
/// constant, without the `Value` allocation.
#[derive(Clone, Copy)]
enum Cell<'a> {
    Null,
    B(bool),
    I(i64),
    F(f64),
    T(&'a str),
    D(seco_model::Date),
}

impl<'a> Cell<'a> {
    #[inline(always)]
    fn of(v: &'a Value) -> Cell<'a> {
        match v {
            Value::Null => Cell::Null,
            Value::Bool(b) => Cell::B(*b),
            Value::Int(i) => Cell::I(*i),
            Value::Float(f) => Cell::F(*f),
            Value::Text(s) => Cell::T(s.as_str()),
            Value::Date(d) => Cell::D(*d),
        }
    }
}

/// Row `i` of a column as a [`Cell`].
#[inline(always)]
fn cell_at<'a>(col: &ColumnRef<'a>, i: usize) -> Cell<'a> {
    match col {
        ColumnRef::Int(v, n) => {
            if n.get(i) {
                Cell::Null
            } else {
                Cell::I(v[i])
            }
        }
        ColumnRef::Float(v, n) => {
            if n.get(i) {
                Cell::Null
            } else {
                Cell::F(v[i])
            }
        }
        ColumnRef::Bool(v, n) => {
            if n.get(i) {
                Cell::Null
            } else {
                Cell::B(v[i])
            }
        }
        ColumnRef::Text(v, n) => {
            if n.get(i) {
                Cell::Null
            } else {
                Cell::T(v[i].as_str())
            }
        }
        ColumnRef::Date(v, n) => {
            if n.get(i) {
                Cell::Null
            } else {
                Cell::D(v[i])
            }
        }
        ColumnRef::Mixed(v) => Cell::of(&v[i]),
    }
}

#[inline(always)]
fn ord_keep(op: Comparator, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        Comparator::Eq => ord == Ordering::Equal,
        Comparator::Lt => ord == Ordering::Less,
        Comparator::Le => ord != Ordering::Greater,
        Comparator::Gt => ord == Ordering::Greater,
        Comparator::Ge => ord != Ordering::Less,
        Comparator::Like => unreachable!("Like handled before ordering"),
    }
}

#[inline(always)]
fn float_keep(op: Comparator, a: f64, b: f64, fallback: &mut bool) -> bool {
    match a.partial_cmp(&b) {
        Some(o) => ord_keep(op, o),
        // NaN: the scalar evaluator raises `IncomparableValues` here.
        None => {
            *fallback = true;
            false
        }
    }
}

/// Batch mirror of [`Comparator::eval`] over unpacked cells. Pairs the
/// scalar evaluator would error on set `fallback` (and return `false`);
/// the caller must then discard the batch result.
#[inline(always)]
fn cell_keep(op: Comparator, l: Cell<'_>, r: Cell<'_>, fallback: &mut bool) -> bool {
    use Cell::*;
    if op == Comparator::Like {
        return match (l, r) {
            (T(s), T(p)) => like_match(s, p),
            (Null, _) | (_, Null) => false,
            _ => {
                *fallback = true;
                false
            }
        };
    }
    match (l, r) {
        // SQL `WHERE` null semantics, as in the scalar evaluator.
        (Null, Null) => op == Comparator::Eq,
        (Null, _) | (_, Null) => false,
        (I(a), I(b)) => ord_keep(op, a.cmp(&b)),
        (B(a), B(b)) => ord_keep(op, a.cmp(&b)),
        (D(a), D(b)) => ord_keep(op, a.cmp(&b)),
        (T(a), T(b)) => ord_keep(op, a.cmp(b)),
        (I(a), F(b)) => float_keep(op, a as f64, b, fallback),
        (F(a), I(b)) => float_keep(op, a, b as f64, fallback),
        (F(a), F(b)) => float_keep(op, a, b, fallback),
        _ => {
            *fallback = true;
            false
        }
    }
}

/// A batch evaluation target: a dense selection mask or a sparse
/// candidate-index list (the hash-probe residual path).
trait BatchTarget {
    fn refine(&mut self, keep: impl FnMut(usize) -> bool);
    fn drop_all(&mut self);
    fn drained(&self) -> bool;
}

impl BatchTarget for BitMask {
    fn refine(&mut self, keep: impl FnMut(usize) -> bool) {
        self.retain_with(keep);
    }
    fn drop_all(&mut self) {
        self.clear_all();
    }
    fn drained(&self) -> bool {
        self.none_set()
    }
}

impl BatchTarget for Vec<usize> {
    fn refine(&mut self, mut keep: impl FnMut(usize) -> bool) {
        self.retain(|&i| keep(i));
    }
    fn drop_all(&mut self) {
        self.clear();
    }
    fn drained(&self) -> bool {
        self.is_empty()
    }
}

/// One side of a predicate resolved for a kernel call.
enum Side<'a> {
    Val(Cell<'a>),
    Col(ColumnRef<'a>),
}

impl BatchPlan {
    /// The distinct `(varying atom, field slot)` columns the kernels
    /// read; `eval_mask`/`eval_indices` take `ColumnRef`s in this order.
    pub fn columns(&self) -> &[(Symbol, usize)] {
        &self.cols
    }

    /// True when no predicate is active for this batch shape (every row
    /// trivially passes).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Refines `mask` (callers preset it, typically to all ones) to the
    /// rows of the varying side that satisfy every active predicate
    /// against `fixed`. Returns `false` when the batch path cannot
    /// decide (a pair the scalar evaluator errors on, or a fixed atom
    /// missing at runtime): the mask is then unspecified and the caller
    /// must re-evaluate with [`CompiledPredicates::eval`].
    #[must_use]
    pub fn eval_mask(
        &self,
        fixed: Option<&CompositeTuple>,
        cols: &[ColumnRef<'_>],
        mask: &mut BitMask,
    ) -> bool {
        self.run(fixed, cols, mask)
    }

    /// Sparse variant of [`Self::eval_mask`] for index-selected
    /// candidates: retains only the row indices satisfying every active
    /// predicate. Same fallback contract.
    #[must_use]
    pub fn eval_indices(
        &self,
        fixed: Option<&CompositeTuple>,
        cols: &[ColumnRef<'_>],
        indices: &mut Vec<usize>,
    ) -> bool {
        self.run(fixed, cols, indices)
    }

    fn run<T: BatchTarget>(
        &self,
        fixed: Option<&CompositeTuple>,
        cols: &[ColumnRef<'_>],
        target: &mut T,
    ) -> bool {
        debug_assert_eq!(cols.len(), self.cols.len());
        let mut fallback = false;
        for p in &self.preds {
            let (Some(left), Some(right)) = (
                self.side(&p.left, fixed, cols),
                self.side(&p.right, fixed, cols),
            ) else {
                return false;
            };
            match (left, right) {
                (Side::Val(a), Side::Val(b)) => {
                    // Constant under this batch: decide once.
                    if !cell_keep(p.op, a, b, &mut fallback) && !fallback {
                        target.drop_all();
                    }
                }
                (Side::Val(a), Side::Col(c)) => match (p.op, a, c) {
                    // Branch-free fast path: non-null integer scalar
                    // against an integer column never errors.
                    (op, Cell::I(k), ColumnRef::Int(v, nulls)) if op != Comparator::Like => {
                        target.refine(|i| !nulls.get(i) & ord_keep(op, k.cmp(&v[i])));
                    }
                    (op, a, c) => {
                        target.refine(|i| cell_keep(op, a, cell_at(&c, i), &mut fallback));
                    }
                },
                (Side::Col(c), Side::Val(b)) => match (p.op, c, b) {
                    (op, ColumnRef::Int(v, nulls), Cell::I(k)) if op != Comparator::Like => {
                        target.refine(|i| !nulls.get(i) & ord_keep(op, v[i].cmp(&k)));
                    }
                    (op, c, b) => {
                        target.refine(|i| cell_keep(op, cell_at(&c, i), b, &mut fallback));
                    }
                },
                (Side::Col(c), Side::Col(d)) => match (p.op, c, d) {
                    (op, ColumnRef::Int(v, vn), ColumnRef::Int(w, wn))
                        if op != Comparator::Like =>
                    {
                        target.refine(|i| !(vn.get(i) | wn.get(i)) & ord_keep(op, v[i].cmp(&w[i])));
                    }
                    (op, c, d) => {
                        target.refine(|i| {
                            cell_keep(op, cell_at(&c, i), cell_at(&d, i), &mut fallback)
                        });
                    }
                },
            }
            if fallback {
                return false;
            }
            if target.drained() {
                // Every row already failed; the scalar evaluator would
                // short-circuit before the remaining predicates too.
                return true;
            }
        }
        true
    }

    fn side<'a>(
        &self,
        o: &'a BatchOperand,
        fixed: Option<&'a CompositeTuple>,
        cols: &[ColumnRef<'a>],
    ) -> Option<Side<'a>> {
        match o {
            BatchOperand::Const(v) => Some(Side::Val(Cell::of(v))),
            BatchOperand::Varying { col } => Some(Side::Col(cols[*col])),
            BatchOperand::Fixed { atom, field } => {
                let f = fixed?;
                let pos = f.atoms.iter().position(|a| a == atom)?;
                match f.components[pos].fields.get(*field)? {
                    seco_model::tuple::FieldSlot::Atomic(v) => Some(Side::Val(Cell::of(v))),
                    seco_model::tuple::FieldSlot::Group(_) => None,
                }
            }
        }
    }

    /// Gathers the plan's needed columns out of a slice of composites
    /// (for batches that arrive row-wise, e.g. engine selection nodes).
    /// Returns `None` when any composite lacks a referenced atom or
    /// atomic field — the caller stays scalar.
    pub fn gather_columns(&self, composites: &[CompositeTuple]) -> Option<Vec<Column>> {
        self.cols
            .iter()
            .map(|(atom, field)| {
                let mut vals: Vec<&Value> = Vec::with_capacity(composites.len());
                for c in composites {
                    let pos = c.atoms.iter().position(|a| a == atom)?;
                    match c.components[pos].fields.get(*field)? {
                        seco_model::tuple::FieldSlot::Atomic(v) => vals.push(v),
                        seco_model::tuple::FieldSlot::Group(_) => return None,
                    }
                }
                Some(Column::build(vals.len(), |i| vals[i]))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::JoinPredicate;
    use crate::predicate::satisfies_available;
    use seco_model::{AttributePath, ServiceSchema};
    use seco_services::table::chapter_semantics_example;
    use seco_services::Service;

    fn setup() -> (
        Vec<seco_model::SharedTuple>,
        Vec<seco_model::SharedTuple>,
        ServiceSchema,
        ServiceSchema,
    ) {
        let (s1, s2) = chapter_semantics_example();
        (
            s1.rows().to_vec(),
            s2.rows().to_vec(),
            s1.interface().schema.clone(),
            s2.interface().schema.clone(),
        )
    }

    fn schema_map<'a>(entries: &[(&str, &'a ServiceSchema)]) -> SchemaMap<'a> {
        entries.iter().map(|(a, s)| ((*a).to_owned(), *s)).collect()
    }

    #[test]
    fn compiled_matches_interpreter_on_the_chapter_example() {
        // Q1 selections (grouped paths) and Q2 joins over S1/S2.
        let (s1_rows, s2_rows, s1_schema, s2_schema) = setup();
        let schemas = schema_map(&[("S1", &s1_schema), ("S2", &s2_schema)]);
        let preds = vec![
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
                op: Comparator::Eq,
                right: QualifiedPath::new("S2", AttributePath::sub("R", "A")),
            }),
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "B")),
                op: Comparator::Eq,
                right: QualifiedPath::new("S2", AttributePath::sub("R", "B")),
            }),
        ];
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let mut scratch = EvalScratch::default();
        for x in &s1_rows {
            for y in &s2_rows {
                let c = CompositeTuple::single("S1", x.clone()).extend_with("S2", y.clone());
                let interp = satisfies_available(&preds, &c, &schemas).unwrap();
                let comp = compiled.eval(&c, &mut scratch).unwrap();
                assert_eq!(interp, comp, "divergence on {c}");
            }
        }
        // Grouped paths must not become equi candidates.
        assert!(compiled.equi_candidates().is_empty());
    }

    #[test]
    fn compiled_skips_predicates_with_missing_atoms() {
        let (s1_rows, _, s1_schema, s2_schema) = setup();
        let schemas = schema_map(&[("S1", &s1_schema), ("S2", &s2_schema)]);
        let preds = vec![ResolvedPredicate::Join(JoinPredicate {
            left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
            op: Comparator::Eq,
            right: QualifiedPath::new("S2", AttributePath::sub("R", "A")),
        })];
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let mut scratch = EvalScratch::default();
        let partial = CompositeTuple::single("S1", s1_rows[0].clone());
        assert!(compiled.eval(&partial, &mut scratch).unwrap());
        assert!(satisfies_available(&preds, &partial, &schemas).unwrap());
    }

    #[test]
    fn selection_on_grouped_path_matches_interpreter() {
        let (s1_rows, _, s1_schema, _) = setup();
        let schemas = schema_map(&[("S1", &s1_schema)]);
        let preds = vec![
            ResolvedPredicate::Selection {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
                op: Comparator::Eq,
                value: Value::Int(1),
            },
            ResolvedPredicate::Selection {
                left: QualifiedPath::new("S1", AttributePath::sub("R", "B")),
                op: Comparator::Eq,
                value: Value::text("x"),
            },
        ];
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let mut scratch = EvalScratch::default();
        for row in &s1_rows {
            let c = CompositeTuple::single("S1", row.clone());
            assert_eq!(
                satisfies_available(&preds, &c, &schemas).unwrap(),
                compiled.eval(&c, &mut scratch).unwrap(),
            );
        }
    }

    #[test]
    fn unknown_atom_fails_compilation() {
        let (_, _, s1_schema, _) = setup();
        let schemas = schema_map(&[("S1", &s1_schema)]);
        let preds = vec![ResolvedPredicate::Selection {
            left: QualifiedPath::new("Nope", AttributePath::atomic("X")),
            op: Comparator::Eq,
            value: Value::Int(1),
        }];
        assert!(CompiledPredicates::compile(&preds, &schemas).is_none());
    }

    #[test]
    fn equi_candidates_require_atomic_distinct_compatible_sides() {
        use seco_model::{Adornment, AttributeDef, DataType};
        let left = ServiceSchema::new(
            "L1",
            vec![
                AttributeDef::atomic("Key", DataType::Text, Adornment::Output),
                AttributeDef::atomic("N", DataType::Int, Adornment::Output),
            ],
        )
        .unwrap();
        let right = ServiceSchema::new(
            "R1",
            vec![
                AttributeDef::atomic("Key", DataType::Text, Adornment::Output),
                AttributeDef::atomic("M", DataType::Float, Adornment::Output),
                AttributeDef::atomic("Flag", DataType::Bool, Adornment::Output),
            ],
        )
        .unwrap();
        let schemas = schema_map(&[("L", &left), ("R", &right)]);
        let preds = vec![
            // Text = Text: candidate.
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("Key")),
                op: Comparator::Eq,
                right: QualifiedPath::new("R", AttributePath::atomic("Key")),
            }),
            // Int = Float: numeric promotion, still a candidate.
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("N")),
                op: Comparator::Eq,
                right: QualifiedPath::new("R", AttributePath::atomic("M")),
            }),
            // Lt: not an equality, but total — does not block the others.
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("N")),
                op: Comparator::Lt,
                right: QualifiedPath::new("R", AttributePath::atomic("M")),
            }),
        ];
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let equi = compiled.equi_candidates();
        assert_eq!(equi.len(), 2);
        assert!(equi[0].left_atom.is("L") && equi[0].right_atom.is("R"));
        assert_eq!(equi[0].left_field, 0);
        assert_eq!(equi[0].right_field, 0);
        assert_eq!(equi[1].left_field, 1);
        assert_eq!(equi[1].right_field, 1);

        // An incomparable predicate (Int = Bool) makes the interpreter
        // error at runtime; its presence suppresses every equi key so the
        // fallback path keeps erroring on the same pairs.
        let with_incomparable = [
            preds[0].clone(),
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("N")),
                op: Comparator::Eq,
                right: QualifiedPath::new("R", AttributePath::atomic("Flag")),
            }),
        ];
        let compiled = CompiledPredicates::compile(&with_incomparable, &schemas).expect("compiles");
        assert!(compiled.equi_candidates().is_empty());
    }

    use seco_model::{Adornment, AttributeDef, ChunkColumns, DataType, SharedTuple, Tuple};

    fn flat_pair() -> (ServiceSchema, ServiceSchema) {
        let left = ServiceSchema::new(
            "L1",
            vec![
                AttributeDef::atomic("Key", DataType::Text, Adornment::Output),
                AttributeDef::atomic("N", DataType::Int, Adornment::Output),
            ],
        )
        .unwrap();
        let right = ServiceSchema::new(
            "R1",
            vec![
                AttributeDef::atomic("Key", DataType::Text, Adornment::Output),
                AttributeDef::atomic("M", DataType::Float, Adornment::Output),
                AttributeDef::atomic("Name", DataType::Text, Adornment::Output),
            ],
        )
        .unwrap();
        (left, right)
    }

    fn flat_preds() -> Vec<ResolvedPredicate> {
        vec![
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("Key")),
                op: Comparator::Eq,
                right: QualifiedPath::new("R", AttributePath::atomic("Key")),
            }),
            ResolvedPredicate::Join(JoinPredicate {
                left: QualifiedPath::new("L", AttributePath::atomic("N")),
                op: Comparator::Le,
                right: QualifiedPath::new("R", AttributePath::atomic("M")),
            }),
            ResolvedPredicate::Selection {
                left: QualifiedPath::new("R", AttributePath::atomic("M")),
                op: Comparator::Gt,
                value: Value::Float(0.25),
            },
            ResolvedPredicate::Selection {
                left: QualifiedPath::new("R", AttributePath::atomic("Name")),
                op: Comparator::Like,
                value: Value::text("a%"),
            },
        ]
    }

    fn right_rows(schema: &ServiceSchema) -> Vec<Tuple> {
        let keys = ["k0", "k1", "k2", "k0", "k1"];
        let ms = [
            Value::Float(0.1),
            Value::Float(0.5),
            Value::Null,
            Value::Float(2.0),
            Value::Float(-0.0),
        ];
        let names = ["alpha", "beta", "aleph", "a", "omega"];
        (0..keys.len())
            .map(|i| {
                Tuple::builder(schema)
                    .set("Key", Value::text(keys[i]))
                    .set("M", ms[i].clone())
                    .set("Name", Value::text(names[i]))
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_mask_and_indices_match_scalar_eval() {
        let (l_schema, r_schema) = flat_pair();
        let schemas = schema_map(&[("L", &l_schema), ("R", &r_schema)]);
        let preds = flat_preds();
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let plan = compiled
            .batch_plan(&[Symbol::intern("L")], &[Symbol::intern("R")])
            .expect("flat total predicates batch");

        let r_rows = right_rows(&r_schema);
        let cols_owned = ChunkColumns::from_tuples(&r_rows).unwrap();
        let cols: Vec<_> = plan
            .columns()
            .iter()
            .map(|(_, field)| cols_owned.column(*field).unwrap())
            .collect();

        let l_rows = [
            Tuple::builder(&l_schema)
                .set("Key", Value::text("k0"))
                .set("N", Value::Int(0))
                .build()
                .unwrap(),
            Tuple::builder(&l_schema)
                .set("Key", Value::text("k1"))
                .set("N", Value::Int(1))
                .build()
                .unwrap(),
            Tuple::builder(&l_schema).build().unwrap(), // nulls
        ];
        let mut scratch = EvalScratch::default();
        for x in &l_rows {
            let fixed = CompositeTuple::single("L", x.clone());
            let mut mask = seco_model::BitMask::ones(r_rows.len());
            assert!(plan.eval_mask(Some(&fixed), &cols, &mut mask));
            let mut indices: Vec<usize> = (0..r_rows.len()).collect();
            assert!(plan.eval_indices(Some(&fixed), &cols, &mut indices));
            for (j, y) in r_rows.iter().enumerate() {
                let c = fixed.extend_with("R", y.clone());
                let scalar = compiled.eval(&c, &mut scratch).unwrap();
                assert_eq!(mask.get(j), scalar, "mask row {j} vs {c}");
                assert_eq!(indices.contains(&j), scalar, "indices row {j}");
            }
        }
    }

    #[test]
    fn batch_gathers_columns_from_composites() {
        let (l_schema, r_schema) = flat_pair();
        let schemas = schema_map(&[("L", &l_schema), ("R", &r_schema)]);
        // Only the varying-side selections are active without L.
        let preds = flat_preds();
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let plan = compiled
            .batch_plan(&[], &[Symbol::intern("R")])
            .expect("selection-only batch");
        let r_rows = right_rows(&r_schema);
        let composites: Vec<CompositeTuple> = r_rows
            .iter()
            .map(|t| CompositeTuple::single("R", SharedTuple::from(t.clone())))
            .collect();
        let gathered = plan.gather_columns(&composites).expect("gathers");
        let cols: Vec<_> = gathered.iter().map(|c| c.as_ref()).collect();
        let mut mask = seco_model::BitMask::ones(composites.len());
        assert!(plan.eval_mask(None, &cols, &mut mask));
        let mut scratch = EvalScratch::default();
        for (j, c) in composites.iter().enumerate() {
            assert_eq!(mask.get(j), compiled.eval(c, &mut scratch).unwrap());
        }
    }

    #[test]
    fn batch_falls_back_on_nan_exactly_when_scalar_errors() {
        let (l_schema, r_schema) = flat_pair();
        let schemas = schema_map(&[("L", &l_schema), ("R", &r_schema)]);
        let preds = vec![ResolvedPredicate::Selection {
            left: QualifiedPath::new("R", AttributePath::atomic("M")),
            op: Comparator::Gt,
            value: Value::Float(0.0),
        }];
        let compiled = CompiledPredicates::compile(&preds, &schemas).expect("compiles");
        let plan = compiled
            .batch_plan(&[Symbol::intern("L")], &[Symbol::intern("R")])
            .expect("total on paper");
        // A raw NaN smuggled past `Value::float` normalisation.
        let rows = vec![
            Tuple::builder(&r_schema)
                .set("M", Value::Float(1.0))
                .build()
                .unwrap(),
            Tuple::builder(&r_schema)
                .set("M", Value::Float(f64::NAN))
                .build()
                .unwrap(),
        ];
        let chunk = ChunkColumns::from_tuples(&rows).unwrap();
        let cols: Vec<_> = plan
            .columns()
            .iter()
            .map(|(_, field)| chunk.column(*field).unwrap())
            .collect();
        let mut mask = seco_model::BitMask::ones(rows.len());
        assert!(
            !plan.eval_mask(None, &cols, &mut mask),
            "NaN must force the scalar fallback"
        );
        // ... and the scalar path indeed errors on that row.
        let c = CompositeTuple::single("R", rows[1].clone());
        let mut scratch = EvalScratch::default();
        assert!(compiled.eval(&c, &mut scratch).is_err());
    }

    #[test]
    fn grouped_or_nontotal_predicates_do_not_batch() {
        let (s1_rows, _, s1_schema, s2_schema) = setup();
        let _ = s1_rows;
        let schemas = schema_map(&[("S1", &s1_schema), ("S2", &s2_schema)]);
        let grouped = vec![ResolvedPredicate::Join(JoinPredicate {
            left: QualifiedPath::new("S1", AttributePath::sub("R", "A")),
            op: Comparator::Eq,
            right: QualifiedPath::new("S2", AttributePath::sub("R", "A")),
        })];
        let compiled = CompiledPredicates::compile(&grouped, &schemas).expect("compiles");
        assert!(compiled
            .batch_plan(&[Symbol::intern("S1")], &[Symbol::intern("S2")])
            .is_none());
        // ...but inactive grouped predicates do not block a batch over
        // unrelated atoms.
        assert!(compiled
            .batch_plan(&[], &[Symbol::intern("Other")])
            .is_some());
        // Overlapping fixed/varying sets are rejected.
        let (l_schema, r_schema) = flat_pair();
        let schemas = schema_map(&[("L", &l_schema), ("R", &r_schema)]);
        let compiled = CompiledPredicates::compile(&flat_preds(), &schemas).expect("compiles");
        assert!(compiled
            .batch_plan(&[Symbol::intern("R")], &[Symbol::intern("R")])
            .is_none());
    }
}
