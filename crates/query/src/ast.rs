//! Query abstract syntax (§3.1).
//!
//! A query consists of a set of *atoms* (service-interface uses with
//! aliases — "the same service can occur several times with a different
//! renaming"), selection predicates `A op const`, join predicates
//! `A op B`, and references to connection patterns which expand into
//! join predicates. Constants may be `INPUT` variables whose values are
//! supplied at execution time.

use std::collections::BTreeMap;
use std::fmt;

use seco_model::{AttributePath, Comparator, Value};
use seco_services::ServiceRegistry;

use crate::error::QueryError;
use crate::ranking::RankingFunction;

/// One use of a service interface in a query, under an alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAtom {
    /// Alias, unique in the query (e.g. `M`).
    pub alias: String,
    /// The service-interface name (e.g. `Movie1`).
    pub service: String,
}

impl QueryAtom {
    /// Creates an atom.
    pub fn new(alias: impl Into<String>, service: impl Into<String>) -> Self {
        QueryAtom {
            alias: alias.into(),
            service: service.into(),
        }
    }
}

/// An attribute path qualified by the atom it belongs to: `M.Genres.Genre`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QualifiedPath {
    /// Atom alias.
    pub atom: String,
    /// Path within the atom's service schema.
    pub path: AttributePath,
}

impl QualifiedPath {
    /// Creates a qualified path.
    pub fn new(atom: impl Into<String>, path: AttributePath) -> Self {
        QualifiedPath {
            atom: atom.into(),
            path,
        }
    }
}

impl fmt::Display for QualifiedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.atom, self.path)
    }
}

/// Right-hand side of a selection predicate: a literal constant or an
/// `INPUT` variable resolved at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Literal constant.
    Const(Value),
    /// Named input variable (`INPUT1`, `INPUT2`, …).
    Input(String),
}

impl Operand {
    /// Resolves the operand against the input assignment.
    pub fn resolve(&self, inputs: &BTreeMap<String, Value>) -> Result<Value, QueryError> {
        match self {
            Operand::Const(v) => Ok(v.clone()),
            Operand::Input(name) => inputs
                .get(name)
                .cloned()
                .ok_or_else(|| QueryError::UnboundInput(name.clone())),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(v) => write!(f, "{v}"),
            Operand::Input(name) => write!(f, "{name}"),
        }
    }
}

/// Selection predicate `A op const` (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionPredicate {
    /// The attribute being constrained.
    pub left: QualifiedPath,
    /// Comparator.
    pub op: Comparator,
    /// Constant or `INPUT` variable.
    pub right: Operand,
}

impl fmt::Display for SelectionPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// Join predicate `A op B` (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPredicate {
    /// Left attribute.
    pub left: QualifiedPath,
    /// Comparator.
    pub op: Comparator,
    /// Right attribute.
    pub right: QualifiedPath,
}

impl JoinPredicate {
    /// The predicate with its sides swapped (comparator mirrored), so
    /// `left` belongs to the requested atom when possible.
    pub fn oriented_from(&self, atom: &str) -> JoinPredicate {
        if self.left.atom == atom {
            self.clone()
        } else {
            let op = match self.op {
                Comparator::Lt => Comparator::Gt,
                Comparator::Le => Comparator::Ge,
                Comparator::Gt => Comparator::Lt,
                Comparator::Ge => Comparator::Le,
                other => other,
            };
            JoinPredicate {
                left: self.right.clone(),
                op,
                right: self.left.clone(),
            }
        }
    }

    /// True when the predicate connects the two given atoms (in either
    /// orientation).
    pub fn connects(&self, a: &str, b: &str) -> bool {
        (self.left.atom == a && self.right.atom == b)
            || (self.left.atom == b && self.right.atom == a)
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// Reference to a connection pattern: `Shows(M, T)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternRef {
    /// Pattern name.
    pub pattern: String,
    /// Atom playing the pattern's first (from) role.
    pub from_atom: String,
    /// Atom playing the pattern's second (to) role.
    pub to_atom: String,
}

impl fmt::Display for PatternRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, {})", self.pattern, self.from_atom, self.to_atom)
    }
}

/// A conjunctive query over service interfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The service atoms, in declaration order.
    pub atoms: Vec<QueryAtom>,
    /// Selection predicates.
    pub selections: Vec<SelectionPredicate>,
    /// Explicit join predicates.
    pub joins: Vec<JoinPredicate>,
    /// Connection-pattern references (compact join syntax).
    pub patterns: Vec<PatternRef>,
    /// Values of the `INPUT` variables (supplied at execution time).
    pub inputs: BTreeMap<String, Value>,
    /// Global ranking function (weights per atom, §3.1).
    pub ranking: RankingFunction,
    /// Number of answer combinations requested (the optimization
    /// parameter `k`, §3.2).
    pub k: usize,
}

impl Query {
    /// Looks up an atom by alias.
    pub fn atom(&self, alias: &str) -> Result<&QueryAtom, QueryError> {
        self.atoms
            .iter()
            .find(|a| a.alias == alias)
            .ok_or_else(|| QueryError::UnknownAtom(alias.to_owned()))
    }

    /// Index of an atom by alias.
    pub fn atom_index(&self, alias: &str) -> Result<usize, QueryError> {
        self.atoms
            .iter()
            .position(|a| a.alias == alias)
            .ok_or_else(|| QueryError::UnknownAtom(alias.to_owned()))
    }

    /// Validates alias uniqueness and that predicates/pattern refs only
    /// mention declared atoms.
    pub fn validate(&self) -> Result<(), QueryError> {
        for (i, a) in self.atoms.iter().enumerate() {
            if self.atoms[..i].iter().any(|b| b.alias == a.alias) {
                return Err(QueryError::DuplicateAtom(a.alias.clone()));
            }
        }
        for s in &self.selections {
            self.atom(&s.left.atom)?;
        }
        for j in &self.joins {
            self.atom(&j.left.atom)?;
            self.atom(&j.right.atom)?;
        }
        for p in &self.patterns {
            self.atom(&p.from_atom)?;
            self.atom(&p.to_atom)?;
        }
        Ok(())
    }

    /// Expands connection-pattern references into explicit join
    /// predicates, returning the *full* join list (explicit joins first,
    /// then expanded pattern joins, §3.1's "more compact" formulation).
    pub fn expanded_joins(
        &self,
        registry: &ServiceRegistry,
    ) -> Result<Vec<JoinPredicate>, QueryError> {
        let mut joins = self.joins.clone();
        for pref in &self.patterns {
            let pattern = registry.pattern(&pref.pattern)?;
            for pair in &pattern.pairs {
                joins.push(JoinPredicate {
                    left: QualifiedPath::new(pref.from_atom.clone(), pair.from.clone()),
                    op: pair.op,
                    right: QualifiedPath::new(pref.to_atom.clone(), pair.to.clone()),
                });
            }
        }
        Ok(joins)
    }

    /// Estimated selectivity of the join between two atoms: the product
    /// of the connection-pattern selectivities linking them, with
    /// default comparator selectivities for explicit join predicates.
    pub fn join_selectivity(
        &self,
        registry: &ServiceRegistry,
        a: &str,
        b: &str,
    ) -> Result<f64, QueryError> {
        let mut sel = 1.0;
        let mut any = false;
        for pref in &self.patterns {
            if (pref.from_atom == a && pref.to_atom == b)
                || (pref.from_atom == b && pref.to_atom == a)
            {
                sel *= registry.pattern(&pref.pattern)?.selectivity;
                any = true;
            }
        }
        for j in &self.joins {
            if j.connects(a, b) {
                sel *= j.op.default_selectivity();
                any = true;
            }
        }
        Ok(if any { sel } else { 1.0 })
    }

    /// All `INPUT` variable names mentioned by the query.
    pub fn input_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .selections
            .iter()
            .filter_map(|s| match &s.right {
                Operand::Input(n) => Some(n.as_str()),
                Operand::Const(_) => None,
            })
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Select ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} As {}", a.service, a.alias)?;
        }
        write!(f, " where ")?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, " and ")
            }
        };
        for p in &self.patterns {
            sep(f)?;
            write!(f, "{p}")?;
        }
        for j in &self.joins {
            sep(f)?;
            write!(f, "{j}")?;
        }
        for s in &self.selections {
            sep(f)?;
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_services::domains::entertainment;

    fn sample() -> Query {
        Query {
            atoms: vec![
                QueryAtom::new("M", "Movie1"),
                QueryAtom::new("T", "Theatre1"),
            ],
            selections: vec![SelectionPredicate {
                left: QualifiedPath::new("M", AttributePath::sub("Genres", "Genre")),
                op: Comparator::Eq,
                right: Operand::Input("INPUT1".into()),
            }],
            joins: vec![JoinPredicate {
                left: QualifiedPath::new("M", AttributePath::atomic("Title")),
                op: Comparator::Eq,
                right: QualifiedPath::new("T", AttributePath::sub("Movie", "Title")),
            }],
            patterns: vec![],
            inputs: BTreeMap::new(),
            ranking: RankingFunction::uniform(2),
            k: 10,
        }
    }

    #[test]
    fn atom_lookup_and_validation() {
        let q = sample();
        assert!(q.validate().is_ok());
        assert_eq!(q.atom("M").unwrap().service, "Movie1");
        assert!(q.atom("X").is_err());
        assert_eq!(q.atom_index("T").unwrap(), 1);
    }

    #[test]
    fn duplicate_alias_rejected() {
        let mut q = sample();
        q.atoms.push(QueryAtom::new("M", "Movie1"));
        assert!(matches!(q.validate(), Err(QueryError::DuplicateAtom(_))));
    }

    #[test]
    fn predicates_must_reference_declared_atoms() {
        let mut q = sample();
        q.joins.push(JoinPredicate {
            left: QualifiedPath::new("Z", AttributePath::atomic("A")),
            op: Comparator::Eq,
            right: QualifiedPath::new("M", AttributePath::atomic("Title")),
        });
        assert!(matches!(q.validate(), Err(QueryError::UnknownAtom(_))));
    }

    #[test]
    fn pattern_expansion_adds_joins() {
        let reg = entertainment::build_registry(1).unwrap();
        let mut q = sample();
        q.joins.clear();
        q.patterns.push(PatternRef {
            pattern: "Shows".into(),
            from_atom: "M".into(),
            to_atom: "T".into(),
        });
        let joins = q.expanded_joins(&reg).unwrap();
        assert_eq!(joins.len(), 1);
        assert_eq!(
            joins[0].left,
            QualifiedPath::new("M", AttributePath::atomic("Title"))
        );
        assert_eq!(
            joins[0].right,
            QualifiedPath::new("T", AttributePath::sub("Movie", "Title"))
        );
    }

    #[test]
    fn join_selectivity_uses_pattern_estimates() {
        let reg = entertainment::build_registry(1).unwrap();
        let mut q = sample();
        q.joins.clear();
        q.patterns.push(PatternRef {
            pattern: "Shows".into(),
            from_atom: "M".into(),
            to_atom: "T".into(),
        });
        let sel = q.join_selectivity(&reg, "M", "T").unwrap();
        assert!((sel - 0.02).abs() < 1e-12);
        // Unconnected atoms get the neutral selectivity 1.
        assert_eq!(q.join_selectivity(&reg, "M", "Z").unwrap(), 1.0);
    }

    #[test]
    fn operand_resolution() {
        let mut inputs = BTreeMap::new();
        inputs.insert("INPUT1".to_owned(), Value::text("comedy"));
        assert_eq!(
            Operand::Input("INPUT1".into()).resolve(&inputs).unwrap(),
            Value::text("comedy")
        );
        assert!(matches!(
            Operand::Input("INPUT9".into()).resolve(&inputs),
            Err(QueryError::UnboundInput(_))
        ));
        assert_eq!(
            Operand::Const(Value::Int(3)).resolve(&inputs).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn join_orientation_mirrors_comparators() {
        let j = JoinPredicate {
            left: QualifiedPath::new("A", AttributePath::atomic("X")),
            op: Comparator::Lt,
            right: QualifiedPath::new("B", AttributePath::atomic("Y")),
        };
        let o = j.oriented_from("B");
        assert_eq!(o.left.atom, "B");
        assert_eq!(o.op, Comparator::Gt);
        assert_eq!(j.oriented_from("A"), j);
        assert!(j.connects("A", "B") && j.connects("B", "A") && !j.connects("A", "C"));
    }

    #[test]
    fn display_round_trips_visually() {
        let q = sample();
        let txt = q.to_string();
        assert!(txt.contains("Select Movie1 As M, Theatre1 As T"));
        assert!(txt.contains("M.Title = T.Movie.Title"));
        assert!(txt.contains("M.Genres.Genre = INPUT1"));
    }

    #[test]
    fn input_names_are_sorted_and_deduped() {
        let mut q = sample();
        q.selections.push(q.selections[0].clone());
        assert_eq!(q.input_names(), vec!["INPUT1"]);
    }
}
