//! Parser for the chapter's concrete query syntax.
//!
//! The grammar covers the running example verbatim:
//!
//! ```text
//! Select Movie1 As M, Theatre1 as T, Restaurant1 as R
//! where Shows(M,T) and DinnerPlace(T,R) and
//! M.Genres.Genre=INPUT1 and M.Openings.Country=INPUT2 and
//! M.Openings.Date>INPUT3 and T.UAddress=INPUT4 and T.UCity=INPUT5
//! and T.TCountry=INPUT2 and T.Category.Name=INPUT6
//! ```
//!
//! plus two small extensions the chapter describes but gives no syntax
//! for: an optional `ranking (w1, …, wn)` clause (the weight sequence of
//! §3.1) and an optional `top K` clause (the optimization parameter `k`
//! of §3.2). Identifiers starting with `INPUT` are input variables.
//! Literals: `"strings"`, integers, floats, `YYYY-MM-DD` dates, `true` /
//! `false`.

use seco_model::{AttributePath, Comparator, Date, Value};

use crate::ast::{
    JoinPredicate, Operand, PatternRef, QualifiedPath, Query, QueryAtom, SelectionPredicate,
};
use crate::error::QueryError;
use crate::ranking::RankingFunction;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Date(Date),
    Comma,
    Dot,
    LParen,
    RParen,
    Op(Comparator),
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, detail: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn tokenize(mut self) -> Result<Vec<(usize, Token)>, QueryError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                return Ok(out);
            }
            let start = self.pos;
            let b = self.bytes[self.pos];
            let token = match b {
                b',' => {
                    self.pos += 1;
                    Token::Comma
                }
                b'.' => {
                    self.pos += 1;
                    Token::Dot
                }
                b'(' => {
                    self.pos += 1;
                    Token::LParen
                }
                b')' => {
                    self.pos += 1;
                    Token::RParen
                }
                b'=' => {
                    self.pos += 1;
                    Token::Op(Comparator::Eq)
                }
                b'<' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        Token::Op(Comparator::Le)
                    } else {
                        Token::Op(Comparator::Lt)
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        Token::Op(Comparator::Ge)
                    } else {
                        Token::Op(Comparator::Gt)
                    }
                }
                b'"' | b'\'' => {
                    let quote = b;
                    self.pos += 1;
                    let s = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    let text = self.src[s..self.pos].to_owned();
                    self.pos += 1;
                    Token::Str(text)
                }
                b'0'..=b'9' | b'-' => self.lex_number()?,
                _ if b.is_ascii_alphabetic() || b == b'_' => {
                    let s = self.pos;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos].is_ascii_alphanumeric()
                            || self.bytes[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    let word = &self.src[s..self.pos];
                    if word.eq_ignore_ascii_case("like") {
                        Token::Op(Comparator::Like)
                    } else {
                        Token::Ident(word.to_owned())
                    }
                }
                other => {
                    return Err(self.error(format!("unexpected character `{}`", other as char)))
                }
            };
            out.push((start, token));
        }
    }

    /// Lexes an integer, float, or `YYYY-MM-DD` date.
    fn lex_number(&mut self) -> Result<Token, QueryError> {
        let s = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        // Date: exactly 4 digits then '-'.
        if self.pos - s == 4 && self.bytes.get(self.pos) == Some(&b'-') {
            let year: i32 = self.src[s..self.pos]
                .parse()
                .map_err(|_| self.error("bad year in date literal"))?;
            self.pos += 1;
            let ms = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let month: u8 = self.src[ms..self.pos]
                .parse()
                .map_err(|_| self.error("bad month in date literal"))?;
            if self.bytes.get(self.pos) != Some(&b'-') {
                return Err(self.error("expected `-` in date literal"));
            }
            self.pos += 1;
            let ds = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let day: u8 = self.src[ds..self.pos]
                .parse()
                .map_err(|_| self.error("bad day in date literal"))?;
            return Ok(Token::Date(Date::new(year, month, day)));
        }
        // Float: digits '.' digits.
        if self.bytes.get(self.pos) == Some(&b'.')
            && self
                .bytes
                .get(self.pos + 1)
                .is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let v: f64 = self.src[s..self.pos]
                .parse()
                .map_err(|_| self.error("bad float literal"))?;
            return Ok(Token::Float(v));
        }
        let v: i64 = self.src[s..self.pos]
            .parse()
            .map_err(|_| self.error("bad int literal"))?;
        Ok(Token::Int(v))
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
}

impl Parser {
    fn error(&self, detail: impl Into<String>) -> QueryError {
        let offset = self
            .tokens
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(usize::MAX);
        QueryError::Parse {
            offset,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        match self.next() {
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(format!("expected keyword `{kw}`")))
            }
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Token::Ident(w)) => Ok(w),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    fn expect(&mut self, tok: Token, what: &str) -> Result<(), QueryError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(format!("expected {what}")))
            }
        }
    }

    /// `Select a1 As x1, a2 as x2, ...`
    fn parse_atoms(&mut self) -> Result<Vec<QueryAtom>, QueryError> {
        self.expect_keyword("select")?;
        let mut atoms = Vec::new();
        loop {
            let service = self.expect_ident()?;
            let alias = if self.at_keyword("as") {
                self.next();
                self.expect_ident()?
            } else {
                service.clone()
            };
            atoms.push(QueryAtom::new(alias, service));
            if self.peek() == Some(&Token::Comma) {
                self.next();
            } else {
                break;
            }
        }
        Ok(atoms)
    }

    /// Parses a dotted path whose head is an atom alias:
    /// `M.Title` or `M.Genres.Genre`.
    fn parse_qualified_path(&mut self, atoms: &[QueryAtom]) -> Result<QualifiedPath, QueryError> {
        let head = self.expect_ident()?;
        if !atoms.iter().any(|a| a.alias == head) {
            return Err(self.error(format!("`{head}` is not a declared query atom")));
        }
        self.expect(Token::Dot, "`.` after atom alias")?;
        let first = self.expect_ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.next();
            let second = self.expect_ident()?;
            Ok(QualifiedPath::new(head, AttributePath::sub(first, second)))
        } else {
            Ok(QualifiedPath::new(head, AttributePath::atomic(first)))
        }
    }

    /// One condition: pattern ref, selection, or join.
    fn parse_condition(
        &mut self,
        atoms: &[QueryAtom],
        selections: &mut Vec<SelectionPredicate>,
        joins: &mut Vec<JoinPredicate>,
        patterns: &mut Vec<PatternRef>,
    ) -> Result<(), QueryError> {
        // Pattern reference: Ident '(' ident ',' ident ')'.
        if let (Some(Token::Ident(_)), Some((_, Token::LParen))) =
            (self.peek(), self.tokens.get(self.pos + 1))
        {
            let pattern = self.expect_ident()?;
            self.expect(Token::LParen, "`(`")?;
            let from = self.expect_ident()?;
            self.expect(Token::Comma, "`,`")?;
            let to = self.expect_ident()?;
            self.expect(Token::RParen, "`)`")?;
            patterns.push(PatternRef {
                pattern,
                from_atom: from,
                to_atom: to,
            });
            return Ok(());
        }
        // Predicate: qualified-path op (qualified-path | literal | INPUT).
        let left = self.parse_qualified_path(atoms)?;
        let op = match self.next() {
            Some(Token::Op(op)) => op,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error("expected comparator"));
            }
        };
        match self.peek().cloned() {
            Some(Token::Ident(w)) => {
                if w.starts_with("INPUT") {
                    self.next();
                    selections.push(SelectionPredicate {
                        left,
                        op,
                        right: Operand::Input(w),
                    });
                } else if w.eq_ignore_ascii_case("true") || w.eq_ignore_ascii_case("false") {
                    self.next();
                    selections.push(SelectionPredicate {
                        left,
                        op,
                        right: Operand::Const(Value::Bool(w.eq_ignore_ascii_case("true"))),
                    });
                } else {
                    let right = self.parse_qualified_path(atoms)?;
                    joins.push(JoinPredicate { left, op, right });
                }
            }
            Some(Token::Str(s)) => {
                self.next();
                selections.push(SelectionPredicate {
                    left,
                    op,
                    right: Operand::Const(Value::Text(s)),
                });
            }
            Some(Token::Int(v)) => {
                self.next();
                selections.push(SelectionPredicate {
                    left,
                    op,
                    right: Operand::Const(Value::Int(v)),
                });
            }
            Some(Token::Float(v)) => {
                self.next();
                selections.push(SelectionPredicate {
                    left,
                    op,
                    right: Operand::Const(Value::float(v)),
                });
            }
            Some(Token::Date(d)) => {
                self.next();
                selections.push(SelectionPredicate {
                    left,
                    op,
                    right: Operand::Const(Value::Date(d)),
                });
            }
            _ => return Err(self.error("expected literal, INPUT variable, or attribute path")),
        }
        Ok(())
    }

    fn parse_query(&mut self) -> Result<Query, QueryError> {
        let atoms = self.parse_atoms()?;
        let mut selections = Vec::new();
        let mut joins = Vec::new();
        let mut patterns = Vec::new();
        if self.at_keyword("where") {
            self.next();
            loop {
                self.parse_condition(&atoms, &mut selections, &mut joins, &mut patterns)?;
                if self.at_keyword("and") {
                    self.next();
                } else {
                    break;
                }
            }
        }
        // Optional extensions: `ranking (w1, ..., wn)` and `top K`.
        let mut ranking = RankingFunction::uniform(atoms.len());
        let mut k = 10usize;
        loop {
            if self.at_keyword("ranking") {
                self.next();
                self.expect(Token::LParen, "`(` after ranking")?;
                let mut weights = Vec::new();
                loop {
                    match self.next() {
                        Some(Token::Float(v)) => weights.push(v),
                        Some(Token::Int(v)) => weights.push(v as f64),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.error("expected numeric weight"));
                        }
                    }
                    if self.peek() == Some(&Token::Comma) {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.expect(Token::RParen, "`)` after weights")?;
                if weights.len() != atoms.len() {
                    return Err(QueryError::BadRanking(format!(
                        "{} weights for {} atoms",
                        weights.len(),
                        atoms.len()
                    )));
                }
                ranking = RankingFunction::new(weights)?;
            } else if self.at_keyword("top") {
                self.next();
                match self.next() {
                    Some(Token::Int(v)) if v > 0 => k = v as usize,
                    _ => {
                        self.pos = self.pos.saturating_sub(1);
                        return Err(self.error("expected positive integer after `top`"));
                    }
                }
            } else {
                break;
            }
        }
        if self.pos != self.tokens.len() {
            return Err(self.error("unexpected trailing input"));
        }
        let query = Query {
            atoms,
            selections,
            joins,
            patterns,
            inputs: Default::default(),
            ranking,
            k,
        };
        query.validate()?;
        Ok(query)
    }
}

/// Parses a query in the chapter's syntax.
pub fn parse_query(src: &str) -> Result<Query, QueryError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser { tokens, pos: 0 }.parse_query()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example, exactly as printed in §3.1 (compact form).
    const RUNNING_EXAMPLE: &str = r#"
        Select Movie1 As M, Theatre1 as T, Restaurant1 as R
        where Shows(M,T) and DinnerPlace(T,R) and
        M.Genres.Genre=INPUT1 and M.Openings.Country=INPUT2 and
        M.Openings.Date>INPUT3 and T.UAddress=INPUT4 and T.UCity=INPUT5
        and T.TCountry=INPUT2 and R.Category.Name=INPUT6
    "#;

    #[test]
    fn parses_the_running_example() {
        let q = parse_query(RUNNING_EXAMPLE).unwrap();
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.atoms[0], QueryAtom::new("M", "Movie1"));
        assert_eq!(q.atoms[2], QueryAtom::new("R", "Restaurant1"));
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(q.patterns[0].to_string(), "Shows(M, T)");
        assert_eq!(q.selections.len(), 7);
        assert_eq!(q.joins.len(), 0);
        // The date predicate keeps its > comparator.
        let date = q
            .selections
            .iter()
            .find(|s| s.left.path == AttributePath::sub("Openings", "Date"))
            .unwrap();
        assert_eq!(date.op, Comparator::Gt);
        assert_eq!(date.right, Operand::Input("INPUT3".into()));
    }

    #[test]
    fn parses_the_explicit_join_form() {
        // The long form of §3.1 with explicit join conditions.
        let q = parse_query(
            r#"Select Movie1 As M, Theatre1 as T
               where M.Title=T.Movie.Title and M.Genres.Genre=INPUT1"#,
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].left.to_string(), "M.Title");
        assert_eq!(q.joins[0].right.to_string(), "T.Movie.Title");
        assert_eq!(q.selections.len(), 1);
    }

    #[test]
    fn parses_literals_of_every_type() {
        let q = parse_query(
            r#"Select S As A where A.T="text" and A.I=5 and A.F<=2.5
               and A.D>2009-03-29 and A.B=true and A.L like "pat%""#,
        )
        .unwrap();
        assert_eq!(q.selections.len(), 6);
        let vals: Vec<&Operand> = q.selections.iter().map(|s| &s.right).collect();
        assert_eq!(vals[0], &Operand::Const(Value::text("text")));
        assert_eq!(vals[1], &Operand::Const(Value::Int(5)));
        assert_eq!(vals[2], &Operand::Const(Value::float(2.5)));
        assert_eq!(
            vals[3],
            &Operand::Const(Value::Date(Date::new(2009, 3, 29)))
        );
        assert_eq!(vals[4], &Operand::Const(Value::Bool(true)));
        assert_eq!(q.selections[5].op, Comparator::Like);
    }

    #[test]
    fn parses_ranking_and_top_extensions() {
        let q =
            parse_query("Select A as X, B as Y where X.P=Y.Q ranking (0.3, 0.7) top 25").unwrap();
        assert_eq!(q.ranking.weights(), &[0.3, 0.7]);
        assert_eq!(q.k, 25);
    }

    #[test]
    fn alias_defaults_to_service_name() {
        let q = parse_query("Select Movie1 where Movie1.Title=INPUT1").unwrap();
        assert_eq!(q.atoms[0].alias, "Movie1");
    }

    #[test]
    fn rejects_unknown_alias_in_predicate() {
        let err = parse_query("Select A as X where Z.P=1").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }), "{err}");
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = parse_query(r#"Select A as X where X.P="oops"#).unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse_query("Select A as X where X.P=1 banana").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn rejects_wrong_weight_count() {
        let err = parse_query("Select A as X ranking (0.5, 0.5)").unwrap_err();
        assert!(matches!(err, QueryError::BadRanking(_)));
    }

    #[test]
    fn negative_and_date_lexing_disambiguates() {
        let q = parse_query("Select A as X where X.P = -7").unwrap();
        assert_eq!(q.selections[0].right, Operand::Const(Value::Int(-7)));
    }

    #[test]
    fn like_keyword_is_case_insensitive() {
        let q = parse_query(r#"Select A as X where X.P LIKE "a%""#).unwrap();
        assert_eq!(q.selections[0].op, Comparator::Like);
    }

    #[test]
    fn three_part_paths_are_group_subattributes() {
        let q = parse_query("Select A as X where X.G.S=1").unwrap();
        assert_eq!(q.selections[0].left.path, AttributePath::sub("G", "S"));
    }
}
