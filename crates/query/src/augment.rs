//! Query augmentation (§2.3): answering infeasible queries with
//! off-query services.
//!
//! "For some queries, it may happen that no permissible choice of
//! access patterns exists. Although, in this case, the original user
//! query cannot be answered, it may still be possible to obtain a
//! subset of the answers to the original user query by invoking
//! services that are not necessarily mentioned in the query, but that
//! are available in the schema. In particular, such 'off-query' services
//! may be invoked so that their output fields provide useful bindings
//! for the input fields of the services in the query with the same
//! abstract domain."
//!
//! This module implements the *non-recursive* core of that idea: for
//! each unbound input, search the registry for a service with an output
//! attribute of the same abstract domain whose own inputs are already
//! coverable (no inputs, or inputs whose domains match constants the
//! query binds elsewhere). The chapter notes that the general case
//! "requires the evaluation of a recursive query plan even if the
//! initial query was non-recursive"; we iterate the one-step rule up to
//! a configurable bound, which covers chains of off-query services but
//! not genuinely recursive plans, and — as the chapter warns — yields
//! an *approximation* (a subset of the original query's answers).

use seco_model::{AttributePath, Comparator};
use seco_services::ServiceRegistry;

use crate::ast::{JoinPredicate, QualifiedPath, Query, QueryAtom, SelectionPredicate};
use crate::error::QueryError;
use crate::feasibility::analyze;

/// Options of the augmentation search.
#[derive(Debug, Clone, Copy)]
pub struct AugmentOptions {
    /// Maximum number of off-query atoms to add.
    pub max_added: usize,
}

impl Default for AugmentOptions {
    fn default() -> Self {
        AugmentOptions { max_added: 3 }
    }
}

/// Result of a successful augmentation.
#[derive(Debug, Clone)]
pub struct Augmented {
    /// The feasible, augmented query (an approximation of the original).
    pub query: Query,
    /// Aliases of the added off-query atoms, in addition order.
    pub added: Vec<String>,
}

/// Parses `"alias.path"` back into structured form (the
/// [`QueryError::Infeasible`] payload is stringly for display purposes).
fn parse_unbound(s: &str) -> Option<(String, AttributePath)> {
    let (alias, rest) = s.split_once('.')?;
    Some((alias.to_owned(), AttributePath::parse(rest)?))
}

/// Tries to make an infeasible query feasible by adding off-query
/// service atoms. Returns the query unchanged (zero additions) when it
/// is already feasible.
pub fn augment_query(
    query: &Query,
    registry: &ServiceRegistry,
    options: AugmentOptions,
) -> Result<Augmented, QueryError> {
    let mut current = query.clone();
    let mut added = Vec::new();

    for round in 0..=options.max_added {
        let unbound = match analyze(&current, registry) {
            Ok(_) => {
                return Ok(Augmented {
                    query: current,
                    added,
                })
            }
            Err(QueryError::Infeasible { unbound_inputs, .. }) => unbound_inputs,
            Err(e) => return Err(e),
        };
        if round == options.max_added {
            break;
        }
        // Pick the first unbound input we can cover.
        let mut progressed = false;
        'inputs: for raw in &unbound {
            let Some((alias, input_path)) = parse_unbound(raw) else {
                continue;
            };
            let atom = current.atom(&alias)?.clone();
            let schema = &registry.interface(&atom.service)?.schema;
            let Some(needed_domain) = schema.domain_of(&input_path)?.map(str::to_owned) else {
                continue; // untagged inputs cannot be matched
            };
            // Candidate off-query interfaces, fewest inputs first.
            let mut candidates: Vec<&str> = registry.service_names();
            candidates.sort_by_key(|n| {
                registry
                    .interface(n)
                    .map(|i| i.input_arity())
                    .unwrap_or(usize::MAX)
            });
            for candidate_name in candidates {
                let candidate = registry.interface(candidate_name)?;
                // An output attribute of the needed domain?
                let Some(out_path) = candidate.schema.output_paths().into_iter().find(|p| {
                    candidate.schema.domain_of(p).ok().flatten() == Some(needed_domain.as_str())
                }) else {
                    continue;
                };
                // Every candidate input must be coverable by a constant
                // the query already binds on the same domain.
                let mut selections = Vec::new();
                let mut coverable = true;
                for cin in candidate.schema.input_paths() {
                    let cin_domain = candidate.schema.domain_of(&cin)?.map(str::to_owned);
                    let reuse = cin_domain.as_deref().and_then(|d| {
                        current.selections.iter().find(|s| {
                            let satom = current.atom(&s.left.atom).ok();
                            let sschema = satom
                                .and_then(|a| registry.interface(&a.service).ok())
                                .map(|i| &i.schema);
                            sschema.and_then(|sc| sc.domain_of(&s.left.path).ok().flatten())
                                == Some(d)
                        })
                    });
                    match reuse {
                        Some(s) => selections.push(SelectionPredicate {
                            left: QualifiedPath::new(format!("AUG{}", added.len() + 1), cin),
                            op: s.op,
                            right: s.right.clone(),
                        }),
                        None => {
                            coverable = false;
                            break;
                        }
                    }
                }
                if !coverable {
                    continue;
                }
                // Add the off-query atom, its reused selections, and the
                // binding join.
                let aug_alias = format!("AUG{}", added.len() + 1);
                current
                    .atoms
                    .push(QueryAtom::new(aug_alias.clone(), candidate_name));
                current.selections.extend(selections);
                current.joins.push(JoinPredicate {
                    left: QualifiedPath::new(aug_alias.clone(), out_path),
                    op: Comparator::Eq,
                    right: QualifiedPath::new(alias.clone(), input_path.clone()),
                });
                // Keep the ranking arity in sync (weight 0: off-query
                // services do not contribute to the global ranking).
                let mut weights = current.ranking.weights().to_vec();
                weights.push(0.0);
                current.ranking = crate::ranking::RankingFunction::new(weights)?;
                added.push(aug_alias);
                progressed = true;
                break 'inputs;
            }
        }
        if !progressed {
            break;
        }
    }

    // Could not be repaired: surface the original infeasibility.
    match analyze(query, registry) {
        Err(e) => Err(e),
        Ok(_) => Ok(Augmented {
            query: current,
            added,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use seco_model::{
        Adornment, AttributeDef, DataType, Date, ScoreDecay, ServiceInterface, ServiceKind,
        ServiceSchema, ServiceStats, Value,
    };
    use seco_services::synthetic::{DomainMap, SyntheticService, ValueDomain};
    use std::sync::Arc;

    /// A registry with a Flight service whose `To` input is tagged with
    /// the `city` domain, and a zero-input CityDirectory producing
    /// `city`-tagged outputs.
    fn registry() -> ServiceRegistry {
        let mut reg = ServiceRegistry::new();
        let flight_schema = ServiceSchema::new(
            "Flight1",
            vec![
                AttributeDef::atomic("To", DataType::Text, Adornment::Input).with_domain("city"),
                AttributeDef::atomic("Date", DataType::Date, Adornment::Input).with_domain("date"),
                AttributeDef::atomic("Price", DataType::Float, Adornment::Output),
                AttributeDef::atomic("Convenience", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap();
        let flight = ServiceInterface::new(
            "Flight1",
            "Flight",
            flight_schema,
            ServiceKind::Search,
            ServiceStats::new(30.0, 10, 100.0, 1.0).unwrap(),
            ScoreDecay::Linear,
        )
        .unwrap();
        let dir_schema = ServiceSchema::new(
            "CityDirectory1",
            vec![
                AttributeDef::atomic("City", DataType::Text, Adornment::Output).with_domain("city"),
                AttributeDef::atomic("Population", DataType::Int, Adornment::Output),
            ],
        )
        .unwrap();
        let dir = ServiceInterface::new(
            "CityDirectory1",
            "CityDirectory",
            dir_schema,
            ServiceKind::Exact { chunked: false },
            ServiceStats::new(12.0, 12, 30.0, 1.0).unwrap(),
            ScoreDecay::Constant(1.0),
        )
        .unwrap();
        let city = ValueDomain::new("city", 12);
        reg.register_service(Arc::new(SyntheticService::new(
            flight,
            DomainMap::new().with(AttributePath::atomic("To"), city.clone()),
            1,
        )))
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(
            dir,
            DomainMap::new().with(AttributePath::atomic("City"), city),
            2,
        )))
        .unwrap();
        reg
    }

    fn infeasible_flight_query() -> Query {
        // Only the date is bound; the destination city is not.
        QueryBuilder::new()
            .atom("F", "Flight1")
            .select_const(
                "F",
                "Date",
                Comparator::Eq,
                Value::Date(Date::new(2009, 7, 1)),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn augmentation_repairs_the_unbound_city_input() {
        let reg = registry();
        let q = infeasible_flight_query();
        assert!(matches!(
            analyze(&q, &reg),
            Err(QueryError::Infeasible { .. })
        ));

        let augmented = augment_query(&q, &reg, AugmentOptions::default()).unwrap();
        assert_eq!(augmented.added, vec!["AUG1"]);
        assert_eq!(augmented.query.atoms.len(), 2);
        assert_eq!(
            augmented.query.atom("AUG1").unwrap().service,
            "CityDirectory1"
        );
        // The augmented query is feasible and the directory feeds the
        // flight's destination.
        let report = analyze(&augmented.query, &reg).unwrap();
        assert_eq!(report.pipe_edges, vec![("AUG1".to_owned(), "F".to_owned())]);
        // The off-query service carries ranking weight 0.
        assert_eq!(augmented.query.ranking.weights().last(), Some(&0.0));
    }

    #[test]
    fn augmented_query_actually_executes() {
        let reg = registry();
        let q = infeasible_flight_query();
        let augmented = augment_query(&q, &reg, AugmentOptions::default()).unwrap();
        let answers = crate::semantics::evaluate_oracle(&augmented.query, &reg).unwrap();
        assert!(
            !answers.is_empty(),
            "the approximation should produce flights"
        );
        // Every answer's flight destination equals the directory city
        // that bound it.
        for a in &answers {
            let f = a.component("F").unwrap();
            let d = a.component("AUG1").unwrap();
            let fschema = &reg.interface("Flight1").unwrap().schema;
            let dschema = &reg.interface("CityDirectory1").unwrap().schema;
            assert_eq!(
                f.first_value_at(fschema, &AttributePath::atomic("To"))
                    .unwrap(),
                d.first_value_at(dschema, &AttributePath::atomic("City"))
                    .unwrap()
            );
        }
    }

    #[test]
    fn feasible_queries_pass_through_unchanged() {
        let reg = registry();
        let q = QueryBuilder::new()
            .atom("F", "Flight1")
            .select_const(
                "F",
                "Date",
                Comparator::Eq,
                Value::Date(Date::new(2009, 7, 1)),
            )
            .select_const("F", "To", Comparator::Eq, Value::text("city-3"))
            .build()
            .unwrap();
        let augmented = augment_query(&q, &reg, AugmentOptions::default()).unwrap();
        assert!(augmented.added.is_empty());
        assert_eq!(augmented.query, q);
    }

    #[test]
    fn unrepairable_queries_keep_their_infeasibility_error() {
        let mut reg = registry();
        // Add a service whose unbound input's domain nothing provides.
        let schema = ServiceSchema::new(
            "Isbn1",
            vec![
                AttributeDef::atomic("Isbn", DataType::Text, Adornment::Input).with_domain("isbn"),
                AttributeDef::atomic("Title", DataType::Text, Adornment::Output),
            ],
        )
        .unwrap();
        let iface = ServiceInterface::new(
            "Isbn1",
            "Isbn",
            schema,
            ServiceKind::Exact { chunked: false },
            ServiceStats::new(1.0, 1, 10.0, 1.0).unwrap(),
            ScoreDecay::Constant(1.0),
        )
        .unwrap();
        reg.register_service(Arc::new(SyntheticService::new(iface, DomainMap::new(), 3)))
            .unwrap();
        let q = QueryBuilder::new().atom("B", "Isbn1").build().unwrap();
        let err = augment_query(&q, &reg, AugmentOptions::default()).unwrap_err();
        assert!(matches!(err, QueryError::Infeasible { .. }));
    }

    #[test]
    fn max_added_bounds_the_search() {
        let reg = registry();
        let q = infeasible_flight_query();
        let err = augment_query(&q, &reg, AugmentOptions { max_added: 0 }).unwrap_err();
        assert!(matches!(err, QueryError::Infeasible { .. }));
    }
}
