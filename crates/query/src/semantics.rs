//! Reference query evaluator (the oracle).
//!
//! Implements the declarative semantics of §3.1 by brute force: atoms
//! are visited in a reachability order, every binding combination is
//! fully fetched (all chunks, up to a safety cap), and candidate
//! composites are filtered with the repeating-group mapping semantics of
//! [`crate::predicate`]. The result is "the largest set of composite
//! tuples t1 · … · tn" satisfying the predicate set, sorted by the
//! global ranking function.
//!
//! The oracle is deliberately naive — no chunk budgeting, no join
//! strategy, no ranking-aware early termination. Its job is to define
//! correct answers; `seco-join` and `seco-engine` are tested against it
//! (every tuple they emit must be in the oracle's result, E16).

use std::collections::BTreeMap;

use seco_model::{Comparator, CompositeTuple};
use seco_services::invocation::{Bindings, Request};
use seco_services::{Service, ServiceRegistry};

use crate::ast::Query;
use crate::error::QueryError;
use crate::feasibility::{analyze, BindingSource};
use crate::predicate::{resolve_predicates, satisfies_available, SchemaMap};

/// Hard cap on chunk fetches per binding combination — the oracle
/// materializes full result lists, and runaway services (or bugs) must
/// not hang the tests.
const MAX_CHUNKS_PER_CALL: usize = 1_000;

/// Evaluates a query exhaustively against the registry.
///
/// Returns all answer combinations, sorted by decreasing global score
/// (ties broken by the components' source ranks for determinism).
pub fn evaluate_oracle(
    query: &Query,
    registry: &ServiceRegistry,
) -> Result<Vec<CompositeTuple>, QueryError> {
    let report = analyze(query, registry)?;
    let joins = query.expanded_joins(registry)?;
    let predicates = resolve_predicates(query, &joins)?;

    let mut schemas: SchemaMap<'_> = BTreeMap::new();
    for atom in &query.atoms {
        schemas.insert(
            atom.alias.clone(),
            &registry.interface(&atom.service)?.schema,
        );
    }

    // Composites under construction; starts with the single empty
    // composite (the user's one input tuple, §3.2).
    let mut partials = vec![CompositeTuple {
        atoms: Vec::new(),
        components: Vec::new(),
    }];

    for alias in &report.order {
        let atom = query.atom(alias)?;
        let service = registry.service(&atom.service)?;
        let mut extended = Vec::new();
        for partial in &partials {
            // Assemble the request from this atom's binding sources.
            let mut request = Request::first(Bindings::new());
            for dep in report.bindings_of(alias) {
                match &dep.source {
                    BindingSource::Constant { operand, op } => {
                        let value = operand.resolve(&query.inputs)?;
                        if *op == Comparator::Eq {
                            request = request.bind(dep.input.clone(), value);
                        } else {
                            request = request.constrain(dep.input.clone(), *op, value);
                        }
                    }
                    BindingSource::Piped {
                        from_atom,
                        from_path,
                    } => {
                        let from_schema = schemas
                            .get(from_atom)
                            .ok_or_else(|| QueryError::UnknownAtom(from_atom.clone()))?;
                        let tuple = partial
                            .component(from_atom)
                            .ok_or_else(|| QueryError::UnknownAtom(from_atom.clone()))?;
                        let value = tuple.first_value_at(from_schema, from_path)?;
                        request = request.bind(dep.input.clone(), value);
                    }
                }
            }
            // Fetch the full result list under these bindings.
            let mut chunk = 0;
            loop {
                let resp = service.fetch(&request.at_chunk(chunk))?;
                for tuple in resp.tuples() {
                    let candidate = partial.extend_with(alias.as_str(), tuple.clone());
                    if satisfies_available(&predicates, &candidate, &schemas)? {
                        extended.push(candidate);
                    }
                }
                if !resp.has_more() || chunk + 1 >= MAX_CHUNKS_PER_CALL {
                    break;
                }
                chunk += 1;
            }
        }
        partials = extended;
    }

    // Order components canonically (atom declaration order) and sort by
    // the ranking function.
    let weights = query.ranking.weights();
    let mut out: Vec<CompositeTuple> = partials
        .into_iter()
        .map(|c| reorder(&c, query))
        .collect::<Result<_, _>>()?;
    out.sort_by(|a, b| {
        let sa = a.global_score(weights);
        let sb = b.global_score(weights);
        sb.partial_cmp(&sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| rank_key(a).cmp(&rank_key(b)))
    });
    Ok(out)
}

fn rank_key(c: &CompositeTuple) -> Vec<usize> {
    c.components.iter().map(|t| t.source_rank).collect()
}

/// Reorders a composite's components into the query's atom order.
fn reorder(c: &CompositeTuple, query: &Query) -> Result<CompositeTuple, QueryError> {
    let mut atoms = Vec::with_capacity(query.atoms.len());
    let mut components = Vec::with_capacity(query.atoms.len());
    for atom in &query.atoms {
        let t = c
            .component(&atom.alias)
            .ok_or_else(|| QueryError::UnknownAtom(atom.alias.clone()))?;
        atoms.push(seco_model::Symbol::from(&atom.alias));
        components.push(t.clone());
    }
    Ok(CompositeTuple { atoms, components })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use seco_model::{AttributePath, Comparator, Value};
    use seco_services::domains::travel;
    use seco_services::table::chapter_semantics_example;
    use seco_services::{Service, ServiceRegistry};
    use std::sync::Arc;

    fn chapter_registry() -> ServiceRegistry {
        let (s1, s2) = chapter_semantics_example();
        let mut reg = ServiceRegistry::new();
        reg.register_service(Arc::new(s1)).unwrap();
        reg.register_service(Arc::new(s2)).unwrap();
        reg
    }

    #[test]
    fn q1_oracle_matches_the_chapter() {
        // Q1: select S1 where S1.R.A=1 and S1.R.B=x  =>  {t1}
        let reg = chapter_registry();
        let q = QueryBuilder::new()
            .atom("S1", "S1")
            .select_const("S1", "R.A", Comparator::Eq, Value::Int(1))
            .select_const("S1", "R.B", Comparator::Eq, Value::text("x"))
            .build()
            .unwrap();
        let result = evaluate_oracle(&q, &reg).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(
            result[0].components[0].group_at(0).len(),
            2,
            "the survivor is t1"
        );
    }

    #[test]
    fn q2_oracle_matches_the_chapter() {
        // Q2: join on R.A and R.B  =>  {t1·t3, t1·t4, t2·t4}
        let reg = chapter_registry();
        let q = QueryBuilder::new()
            .atom("S1", "S1")
            .atom("S2", "S2")
            .join("S1", "R.A", Comparator::Eq, "S2", "R.A")
            .join("S1", "R.B", Comparator::Eq, "S2", "R.B")
            .build()
            .unwrap();
        let result = evaluate_oracle(&q, &reg).unwrap();
        assert_eq!(result.len(), 3, "exactly t1·t3, t1·t4, t2·t4");
    }

    #[test]
    fn pipe_chain_with_selection_matches_manual_count() {
        // Conference -> Weather with AvgTemp > 26: the oracle must agree
        // with a hand-rolled loop over the same services.
        let reg = travel::build_registry(5).unwrap();
        let q = QueryBuilder::new()
            .atom("C", "Conference1")
            .atom("W", "Weather1")
            .pattern("Forecast", "C", "W")
            .select_const("C", "Topic", Comparator::Eq, Value::text("databases"))
            .select_const("W", "AvgTemp", Comparator::Gt, Value::Int(26))
            .build()
            .unwrap();
        let result = evaluate_oracle(&q, &reg).unwrap();

        // Manual: fetch 20 conferences, call weather per (city, date).
        let conf = reg.service("Conference1").unwrap();
        let weather = reg.service("Weather1").unwrap();
        let creq =
            Request::unbound().bind(AttributePath::atomic("Topic"), Value::text("databases"));
        let conferences = conf.fetch(&creq).unwrap().shared_tuples();
        let cschema = &conf.interface().schema;
        let mut expected = 0;
        for c in &conferences {
            let city = c
                .first_value_at(cschema, &AttributePath::atomic("City"))
                .unwrap();
            let date = c
                .first_value_at(cschema, &AttributePath::atomic("Date"))
                .unwrap();
            let wreq = Request::unbound()
                .bind(AttributePath::atomic("City"), city)
                .bind(AttributePath::atomic("Date"), date);
            for w in weather.fetch(&wreq).unwrap().tuples() {
                if let Value::Int(t) = w.atomic_at(2) {
                    if *t > 26 {
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(result.len(), expected);
        assert!(expected > 0, "the scenario should keep some conferences");
    }

    #[test]
    fn results_are_sorted_by_global_score() {
        let reg = travel::build_registry(9).unwrap();
        let q = QueryBuilder::new()
            .atom("C", "Conference1")
            .atom("H", "Hotel1")
            .pattern("StayAt", "C", "H")
            .select_const("C", "Topic", Comparator::Eq, Value::text("ai"))
            .ranking(vec![0.0, 1.0])
            .build()
            .unwrap();
        let result = evaluate_oracle(&q, &reg).unwrap();
        assert!(!result.is_empty());
        let scores: Vec<f64> = result.iter().map(|c| c.global_score(&[0.0, 1.0])).collect();
        for w in scores.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "oracle output must be globally sorted"
            );
        }
    }

    #[test]
    fn infeasible_query_errors() {
        let reg = travel::build_registry(9).unwrap();
        let q = QueryBuilder::new().atom("H", "Hotel1").build().unwrap();
        assert!(matches!(
            evaluate_oracle(&q, &reg),
            Err(QueryError::Infeasible { .. })
        ));
    }
}
