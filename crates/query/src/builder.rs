//! Fluent programmatic construction of queries.
//!
//! The parser covers the chapter's concrete syntax; this builder is the
//! ergonomic API for examples, tests, and generated workloads (the
//! optimizer experiments build thousands of random queries through it).

use std::collections::BTreeMap;

use seco_model::{AttributePath, Comparator, Value};

use crate::ast::{
    JoinPredicate, Operand, PatternRef, QualifiedPath, Query, QueryAtom, SelectionPredicate,
};
use crate::error::QueryError;
use crate::ranking::RankingFunction;

/// Builder returned by [`QueryBuilder::new`].
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    atoms: Vec<QueryAtom>,
    selections: Vec<SelectionPredicate>,
    joins: Vec<JoinPredicate>,
    patterns: Vec<PatternRef>,
    inputs: BTreeMap<String, Value>,
    weights: Option<Vec<f64>>,
    k: usize,
}

impl QueryBuilder {
    /// Starts an empty query with `k = 10` (the chapter's default
    /// optimization parameter).
    pub fn new() -> Self {
        QueryBuilder {
            k: 10,
            ..Default::default()
        }
    }

    /// Adds a service atom `service As alias`.
    pub fn atom(mut self, alias: &str, service: &str) -> Self {
        self.atoms.push(QueryAtom::new(alias, service));
        self
    }

    /// Adds a selection `atom.path op const`.
    pub fn select_const(mut self, atom: &str, path: &str, op: Comparator, value: Value) -> Self {
        if let Some(path) = AttributePath::parse(path) {
            self.selections.push(SelectionPredicate {
                left: QualifiedPath::new(atom, path),
                op,
                right: Operand::Const(value),
            });
        }
        self
    }

    /// Adds a selection `atom.path op INPUTname`.
    pub fn select_input(mut self, atom: &str, path: &str, op: Comparator, input: &str) -> Self {
        if let Some(path) = AttributePath::parse(path) {
            self.selections.push(SelectionPredicate {
                left: QualifiedPath::new(atom, path),
                op,
                right: Operand::Input(input.to_owned()),
            });
        }
        self
    }

    /// Adds an explicit join `a.pa op b.pb`.
    pub fn join(mut self, a: &str, pa: &str, op: Comparator, b: &str, pb: &str) -> Self {
        if let (Some(pa), Some(pb)) = (AttributePath::parse(pa), AttributePath::parse(pb)) {
            self.joins.push(JoinPredicate {
                left: QualifiedPath::new(a, pa),
                op,
                right: QualifiedPath::new(b, pb),
            });
        }
        self
    }

    /// Adds a connection-pattern reference `pattern(from, to)`.
    pub fn pattern(mut self, pattern: &str, from: &str, to: &str) -> Self {
        self.patterns.push(PatternRef {
            pattern: pattern.to_owned(),
            from_atom: from.to_owned(),
            to_atom: to.to_owned(),
        });
        self
    }

    /// Supplies a value for an `INPUT` variable.
    pub fn input(mut self, name: &str, value: Value) -> Self {
        self.inputs.insert(name.to_owned(), value);
        self
    }

    /// Sets the ranking weights (one per atom, in atom order).
    pub fn ranking(mut self, weights: Vec<f64>) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Sets the number of requested answers `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Validates and builds the [`Query`].
    pub fn build(self) -> Result<Query, QueryError> {
        let ranking = match self.weights {
            Some(w) => {
                if w.len() != self.atoms.len() {
                    return Err(QueryError::BadRanking(format!(
                        "{} weights for {} atoms",
                        w.len(),
                        self.atoms.len()
                    )));
                }
                RankingFunction::new(w)?
            }
            None => RankingFunction::uniform(self.atoms.len()),
        };
        let query = Query {
            atoms: self.atoms,
            selections: self.selections,
            joins: self.joins,
            patterns: self.patterns,
            inputs: self.inputs,
            ranking,
            k: self.k,
        };
        query.validate()?;
        Ok(query)
    }
}

/// Builds the chapter's running example query (§3.1) in its compact,
/// connection-pattern form, with the `(0.3, 0.5, 0.2)` ranking function
/// and a standard set of `INPUT` values.
///
/// Two bindings are added beyond the chapter's verbatim text, which the
/// chapter itself glosses over while asserting feasibility ("all input
/// places of Movie11 and Restaurant11 are associated with INPUT
/// variables"): the §5.6 adorned listing marks `Movie1.Language` and
/// `Theatre1.UCountry` as inputs, so an executable query must bind them
/// too. We bind `T.UCountry = INPUT2` (the user's country, same as the
/// openings country) and `M.Language = INPUT7`.
pub fn running_example() -> Query {
    QueryBuilder::new()
        .atom("M", "Movie1")
        .atom("T", "Theatre1")
        .atom("R", "Restaurant1")
        .pattern("Shows", "M", "T")
        .pattern("DinnerPlace", "T", "R")
        .select_input("M", "Genres.Genre", Comparator::Eq, "INPUT1")
        .select_input("M", "Openings.Country", Comparator::Eq, "INPUT2")
        .select_input("M", "Openings.Date", Comparator::Gt, "INPUT3")
        .select_input("T", "UAddress", Comparator::Eq, "INPUT4")
        .select_input("T", "UCity", Comparator::Eq, "INPUT5")
        .select_input("T", "TCountry", Comparator::Eq, "INPUT2")
        .select_input("R", "Category.Name", Comparator::Eq, "INPUT6")
        .select_input("T", "UCountry", Comparator::Eq, "INPUT2")
        .select_input("M", "Language", Comparator::Eq, "INPUT7")
        .input("INPUT1", Value::text("comedy"))
        .input("INPUT2", Value::text("country-0"))
        .input("INPUT3", Value::Date(seco_model::Date::new(2009, 3, 1)))
        .input("INPUT4", Value::text("via Golgi 42"))
        .input("INPUT5", Value::text("Milano"))
        .input("INPUT6", Value::text("pizzeria"))
        .input("INPUT7", Value::text("en"))
        .ranking(vec![0.3, 0.5, 0.2])
        .k(10)
        .build()
        .expect("the running example is a valid query")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_a_query() {
        let q = QueryBuilder::new()
            .atom("A", "SvcA")
            .atom("B", "SvcB")
            .select_const("A", "X", Comparator::Eq, Value::Int(1))
            .join("A", "Y", Comparator::Eq, "B", "Z")
            .k(5)
            .build()
            .unwrap();
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.selections.len(), 1);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.k, 5);
        assert_eq!(q.ranking.arity(), 2);
    }

    #[test]
    fn ranking_arity_must_match() {
        let err = QueryBuilder::new()
            .atom("A", "S")
            .ranking(vec![0.5, 0.5])
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::BadRanking(_)));
    }

    #[test]
    fn duplicate_atoms_rejected_at_build() {
        let err = QueryBuilder::new()
            .atom("A", "S")
            .atom("A", "S")
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::DuplicateAtom(_)));
    }

    #[test]
    fn running_example_matches_the_chapter() {
        let q = running_example();
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(q.selections.len(), 9);
        assert_eq!(q.ranking.weights(), &[0.3, 0.5, 0.2]);
        assert_eq!(q.k, 10);
        assert_eq!(
            q.input_names(),
            vec!["INPUT1", "INPUT2", "INPUT3", "INPUT4", "INPUT5", "INPUT6", "INPUT7"]
        );
        // INPUT2 covers movie openings country, theatre country, and
        // the user's country input.
        let uses = q
            .selections
            .iter()
            .filter(|s| matches!(&s.right, Operand::Input(n) if n == "INPUT2"))
            .count();
        assert_eq!(uses, 3);
    }

    #[test]
    fn k_is_at_least_one() {
        let q = QueryBuilder::new().atom("A", "S").k(0).build().unwrap();
        assert_eq!(q.k, 1);
    }
}
