//! The global ranking function (§3.1).
//!
//! "The query is associated with a ranking function f expressed as a
//! sequence (w1, …, wn) of non-negative weights for the scores used in
//! the query. […] the ranking function of the formed combination
//! t1 · … · tn is given as w1·S1 + … + wn·Sn; the weight of unranked
//! services is set equal to 0."

use seco_model::CompositeTuple;

use crate::error::QueryError;

/// Weight vector over the query's atoms, in atom order.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingFunction {
    weights: Vec<f64>,
}

impl RankingFunction {
    /// Builds a ranking function; weights must be non-negative and at
    /// least one must be positive.
    pub fn new(weights: Vec<f64>) -> Result<Self, QueryError> {
        if weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return Err(QueryError::BadRanking(
                "weights must be non-negative and finite".into(),
            ));
        }
        if weights.iter().all(|w| *w == 0.0) {
            return Err(QueryError::BadRanking(
                "at least one weight must be positive".into(),
            ));
        }
        Ok(RankingFunction { weights })
    }

    /// Equal weights `1/n` for `n` atoms.
    pub fn uniform(n: usize) -> Self {
        RankingFunction {
            weights: vec![1.0 / n.max(1) as f64; n.max(1)],
        }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of weights (must equal the query's atom count).
    pub fn arity(&self) -> usize {
        self.weights.len()
    }

    /// Applies the weighted sum to a composite tuple.
    pub fn score(&self, t: &CompositeTuple) -> f64 {
        t.global_score(&self.weights)
    }

    /// Replaces the weights (the chapter allows rankings to be "altered
    /// dynamically through the query interface"; only definition-time
    /// rankings participate in optimization).
    pub fn reweigh(&mut self, weights: Vec<f64>) -> Result<(), QueryError> {
        *self = RankingFunction::new(weights)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::{Adornment, AttributeDef, DataType, ServiceSchema, Tuple};

    fn composite(scores: &[f64]) -> CompositeTuple {
        let schema = ServiceSchema::new(
            "S",
            vec![AttributeDef::atomic("A", DataType::Int, Adornment::Output)],
        )
        .unwrap();
        let mut atoms = Vec::new();
        let mut components = Vec::new();
        for (i, s) in scores.iter().enumerate() {
            atoms.push(seco_model::Symbol::from(format!("a{i}")));
            components.push(seco_model::SharedTuple::new(
                Tuple::builder(&schema).score(*s).build().unwrap(),
            ));
        }
        CompositeTuple { atoms, components }
    }

    #[test]
    fn weighted_sum_matches_the_chapter_formula() {
        // The running example's (0.3, 0.5, 0.2) ranking.
        let f = RankingFunction::new(vec![0.3, 0.5, 0.2]).unwrap();
        let c = composite(&[1.0, 0.5, 0.0]);
        assert!((f.score(&c) - (0.3 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_weights() {
        assert!(RankingFunction::new(vec![-0.1, 1.0]).is_err());
        assert!(RankingFunction::new(vec![0.0, 0.0]).is_err());
        assert!(RankingFunction::new(vec![f64::NAN]).is_err());
        assert!(RankingFunction::new(vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn uniform_splits_evenly() {
        let f = RankingFunction::uniform(4);
        assert_eq!(f.arity(), 4);
        assert!((f.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Degenerate n=0 still yields a usable function.
        assert_eq!(RankingFunction::uniform(0).arity(), 1);
    }

    #[test]
    fn reweigh_replaces_weights() {
        let mut f = RankingFunction::uniform(2);
        f.reweigh(vec![0.9, 0.1]).unwrap();
        assert_eq!(f.weights(), &[0.9, 0.1]);
        assert!(f.reweigh(vec![-1.0, 2.0]).is_err());
    }
}
