//! # seco-query — the conjunctive query language over service interfaces
//!
//! Implements §3.1 of the chapter: select-join queries over service
//! interfaces with selection predicates (`A op const`), join predicates
//! (`A op B`), connection-pattern references (`Shows(M,T)`), `INPUT`
//! variables, and a global ranking function given as a weight vector
//! over the services' scores.
//!
//! The crate provides:
//!
//! * [`ast`] — the query abstract syntax, with pattern expansion against
//!   a service registry;
//! * [`parser`] — a hand-rolled parser for the chapter's concrete syntax
//!   (the running example parses verbatim);
//! * [`predicate`] — predicate evaluation under the chapter's
//!   *repeating-group mapping semantics*: all predicates referencing the
//!   same repeating group of the same atom must be satisfied by a single
//!   row of that group;
//! * [`feasibility`] — reachability analysis over access patterns
//!   (binding patterns, §2.3), producing the I/O dependencies that
//!   drive plan construction;
//! * [`semantics`] — a naive full-materialization reference evaluator,
//!   the oracle the engine and join methods are tested against;
//! * [`ranking`] — the weighted-sum global ranking function;
//! * [`builder`] — a fluent programmatic query builder.

pub mod ast;
pub mod augment;
pub mod builder;
pub mod compile;
pub mod error;
pub mod feasibility;
pub mod parser;
pub mod predicate;
pub mod ranking;
pub mod semantics;

pub use ast::{
    JoinPredicate, Operand, PatternRef, QualifiedPath, Query, QueryAtom, SelectionPredicate,
};
pub use augment::{augment_query, AugmentOptions, Augmented};
pub use builder::QueryBuilder;
pub use compile::{BatchPlan, CompiledPredicates, EquiCandidate, EvalScratch};
pub use error::QueryError;
pub use feasibility::{FeasibilityReport, IoDependency};
pub use parser::parse_query;
pub use ranking::RankingFunction;
pub use semantics::evaluate_oracle;

/// Result alias for query-layer operations.
pub type Result<T> = std::result::Result<T, QueryError>;
