//! Error type of the query layer.

use std::fmt;

use seco_model::ModelError;
use seco_services::ServiceError;

/// Errors raised while parsing, analysing, or evaluating queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Underlying model error.
    Model(ModelError),
    /// Underlying service error.
    Service(ServiceError),
    /// Syntax error from the parser.
    Parse {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// What the parser expected or found.
        detail: String,
    },
    /// An atom alias was referenced but never declared in `Select`.
    UnknownAtom(String),
    /// An atom alias was declared twice.
    DuplicateAtom(String),
    /// An `INPUT` variable used by the query has no value assigned.
    UnboundInput(String),
    /// The query is infeasible: some services can never become
    /// reachable under the available access patterns (§3.1).
    Infeasible {
        /// Atoms that could not be reached.
        unreachable: Vec<String>,
        /// The input paths that remained unbound, as `atom.path` strings.
        unbound_inputs: Vec<String>,
    },
    /// A ranking weight vector mismatches the query's atoms.
    BadRanking(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Model(e) => write!(f, "model error: {e}"),
            QueryError::Service(e) => write!(f, "service error: {e}"),
            QueryError::Parse { offset, detail } => {
                write!(f, "parse error at byte {offset}: {detail}")
            }
            QueryError::UnknownAtom(a) => write!(f, "unknown query atom `{a}`"),
            QueryError::DuplicateAtom(a) => write!(f, "duplicate query atom `{a}`"),
            QueryError::UnboundInput(v) => write!(f, "INPUT variable `{v}` has no value"),
            QueryError::Infeasible { unreachable, unbound_inputs } => write!(
                f,
                "query is infeasible: atoms {unreachable:?} unreachable, unbound inputs {unbound_inputs:?}"
            ),
            QueryError::BadRanking(d) => write!(f, "bad ranking function: {d}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Model(e) => Some(e),
            QueryError::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for QueryError {
    fn from(e: ModelError) -> Self {
        QueryError::Model(e)
    }
}

impl From<ServiceError> for QueryError {
    fn from(e: ServiceError) -> Self {
        QueryError::Service(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QueryError::Infeasible {
            unreachable: vec!["R".into()],
            unbound_inputs: vec!["R.UCity".into()],
        };
        assert!(e.to_string().contains("R.UCity"));
        let e = QueryError::Parse {
            offset: 10,
            detail: "expected identifier".into(),
        };
        assert!(e.to_string().contains("byte 10"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: QueryError = ModelError::UnknownName("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: QueryError = ServiceError::UnknownService("s".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
