//! The rank-join operator: provable early stopping for top-k joins.
//!
//! The chapter's executor is *emission-ordered*: it emits combinations
//! in tile order and stops counting at `k`, which yields "k good
//! tuples" but not the top-k. This operator closes that gap with the
//! classic rank-join (HRJN-style) threshold scheme over the same tile
//! space:
//!
//! * both chunk streams must be **score-sorted** (non-increasing score
//!   within and across chunks — exactly what ranked search services
//!   produce, and what the engine enforces for buffered intermediates
//!   by sorting them before the join);
//! * every fetched chunk contributes its head score (the §4.1 tile
//!   *representative*) and its tail score (the last tuple seen on that
//!   axis);
//! * the **threshold** `T` is the best possible score product of any
//!   combination not yet enumerable:
//!
//!   ```text
//!   T = max( ux · topY ,  uy · topX )
//!   ```
//!
//!   where `ux`/`uy` bound any unfetched tuple of an axis (the observed
//!   tail of its last non-empty chunk, by sortedness) and `topX`/`topY`
//!   bound *every* tuple of the opposite axis (the first non-empty
//!   chunk's representative, which also dominates that axis's own
//!   unfetched tail — so the both-unfetched case is covered by either
//!   term);
//! * the run stops fetching the moment the k-th best buffered result
//!   **strictly** exceeds `T`: every combination never enumerated then
//!   scores strictly below the buffered k-th, so the sorted buffer's
//!   first `k` entries are exactly the first `k` entries of the sorted
//!   full enumeration (ties included — anything tying the k-th is in
//!   the buffer).
//!
//! Inside the fetched rectangle the operator reuses the binary tile
//! kernel (`join_tile`) unchanged, and skips whole tiles whose
//! representative the full score frontier strictly dominates — the same
//! strict bound, so skipped pairs cannot displace buffered ones.

use std::cmp::Ordering;

use seco_model::CompositeTuple;
use seco_query::CompiledPredicates;

use crate::error::JoinError;
use crate::executor::{chunk_rows_materialized, CompositeChunk};
use crate::executor::{ChunkStream, JoinOutcome, ParallelJoinExecutor, RunState};
use crate::index::JoinIndexMode;
use crate::strategy::{CallScheduler, CallTarget, Pacing, TilePruner};
use crate::tile::{Tile, TileSpace};

/// The canonical score order on combinations: decreasing score product
/// (`f64::total_cmp`), ties broken by the per-component
/// `(atom, source_rank)` sequence — a deterministic total order on
/// distinct combinations, shared by the rank join, its tests, and the
/// benchmarks' sorted-baseline.
pub fn score_order(a: &CompositeTuple, b: &CompositeTuple) -> Ordering {
    b.score_product()
        .total_cmp(&a.score_product())
        .then_with(|| {
            let ka = a
                .atoms
                .iter()
                .zip(&a.components)
                .map(|(s, c)| (s.as_str(), c.source_rank));
            let kb = b
                .atoms
                .iter()
                .zip(&b.components)
                .map(|(s, c)| (s.as_str(), c.source_rank));
            ka.cmp(kb)
        })
}

/// Per-axis bookkeeping of the pull loop.
struct Axis {
    chunks: Vec<CompositeChunk>,
    more: bool,
    calls: usize,
    /// Highest head score among fetched non-empty chunks — bounds every
    /// tuple of the axis, fetched or not (sorted streams).
    top: Option<f64>,
    /// Last tuple score of the last fetched non-empty chunk — bounds
    /// every *unfetched* tuple of the axis.
    tail: Option<f64>,
    /// Tuples fetched so far.
    tuples: usize,
}

impl Axis {
    fn new() -> Axis {
        Axis {
            chunks: Vec::new(),
            more: true,
            calls: 0,
            top: None,
            tail: None,
            tuples: 0,
        }
    }

    fn absorb(&mut self, chunk: CompositeChunk) {
        self.calls += 1;
        self.more = chunk.has_more;
        if !chunk.is_empty() {
            let head = chunk.representative;
            self.top = Some(self.top.map_or(head, |t| t.max(head)));
            self.tail = chunk.composites.last().map(CompositeTuple::score_product);
            self.tuples += chunk.len();
        }
        self.chunks.push(chunk);
    }

    /// Upper bound on any unfetched tuple's score, `None` when the axis
    /// is exhausted (nothing unseen remains).
    fn unseen_cap(&self) -> Option<f64> {
        if !self.more {
            return None;
        }
        // Before the first non-empty chunk arrives nothing bounds the
        // stream; infinity keeps the threshold conservative.
        Some(self.tail.unwrap_or(f64::INFINITY))
    }

    /// Upper bound on *any* tuple of the axis (fetched or not), `None`
    /// when the axis provably holds no tuples at all.
    fn any_cap(&self) -> Option<f64> {
        match (self.top, self.unseen_cap()) {
            (Some(t), Some(u)) => Some(t.max(u)),
            (Some(t), None) => Some(t),
            (None, Some(u)) => Some(u),
            (None, None) => None,
        }
    }
}

/// `a · b` guarded against `∞ · 0 = NaN`: an unknown factor makes the
/// whole bound unknown (infinite), never NaN.
fn bound_mul(a: f64, b: f64) -> f64 {
    if a.is_infinite() || b.is_infinite() {
        f64::INFINITY
    } else {
        a * b
    }
}

/// Best possible score product of a combination not yet enumerable, or
/// `None` when no such combination exists (both axes drained, or one
/// drained empty).
fn threshold(ax: &Axis, ay: &Axis) -> Option<f64> {
    let mut t: Option<f64> = None;
    if let (Some(ux), Some(ycap)) = (ax.unseen_cap(), ay.any_cap()) {
        let term = bound_mul(ux, ycap);
        t = Some(t.map_or(term, |v: f64| v.max(term)));
    }
    if let (Some(uy), Some(xcap)) = (ay.unseen_cap(), ax.any_cap()) {
        let term = bound_mul(uy, xcap);
        t = Some(t.map_or(term, |v: f64| v.max(term)));
    }
    t
}

/// The rank-join operator: a [`ParallelJoinExecutor`] configuration
/// (whose `k` must be positive) driven by the threshold bound instead
/// of the emit-count target.
///
/// Results come back in [`score_order`] — the true top-k prefix of the
/// full enumeration — rather than tile-emission order.
pub struct RankJoin<'p> {
    /// The underlying join configuration: predicates, schemas,
    /// invocation pacing, index and columnar options, and the `k`
    /// target (must be > 0 — a rank join without a target would just be
    /// the full enumeration).
    pub join: ParallelJoinExecutor<'p>,
    /// Optional model of the two streams' full extents. Used only to
    /// report `chunks_saved` (total chunks minus fetched); the stopping
    /// bound itself relies exclusively on *observed* scores, because
    /// synthetic scoring models may disagree with live data.
    pub space: Option<TileSpace>,
}

impl RankJoin<'_> {
    /// Runs the rank join to its provable stopping point.
    pub fn run(
        &self,
        x: &mut dyn ChunkStream,
        y: &mut dyn ChunkStream,
    ) -> Result<JoinOutcome, JoinError> {
        let k = self.join.k;
        if k == 0 {
            return Err(JoinError::BadMethod {
                detail: "rank join requires a positive k target".into(),
            });
        }
        let scheduler = CallScheduler::new(self.join.invocation, self.join.h.max(1))?;
        let mut pacer: Box<dyn Pacing> = Box::new(scheduler);
        let compiled = match self.join.options.mode {
            JoinIndexMode::Off => None,
            JoinIndexMode::Hash => {
                CompiledPredicates::compile(self.join.predicates, self.join.schemas)
            }
        };
        let start = std::time::Instant::now();
        let mut st = RunState::default();
        let mut frontier = TilePruner::new(k);
        let mut ax = Axis::new();
        let mut ay = Axis::new();
        let mut processed: Vec<Tile> = Vec::new();
        let mut tile_reps: Vec<f64> = Vec::new();
        let mut results: Vec<CompositeTuple> = Vec::new();

        loop {
            // An axis drained without a single tuple admits no
            // combination at all; and two drained axes leave nothing to
            // fetch (every tile of the rectangle is already processed).
            if (!ax.more && ax.tuples == 0) || (!ay.more && ay.tuples == 0) {
                break;
            }
            st.stats.bound_checks += 1;
            match threshold(&ax, &ay) {
                None => break,
                // Strict domination: the k-th buffered score exceeds the
                // best possible unseen one, ties stay in the buffer.
                Some(t) if frontier.can_skip(t) => break,
                Some(_) => {}
            }
            if !ax.more && !ay.more {
                break;
            }
            let mut target = pacer.next_target(ax.calls, ay.calls);
            if target == CallTarget::X && !ax.more {
                target = CallTarget::Y;
            }
            if target == CallTarget::Y && !ay.more {
                target = CallTarget::X;
            }
            match target {
                CallTarget::X => {
                    let chunk = x.fetch_chunk(ax.calls)?;
                    st.stats.rows_materialized += chunk_rows_materialized(&chunk);
                    ax.absorb(chunk);
                    let xi = ax.chunks.len() - 1;
                    for yi in 0..ay.chunks.len() {
                        self.process_tile(
                            compiled.as_ref(),
                            &ax.chunks[xi],
                            &ay.chunks[yi],
                            xi,
                            yi,
                            &mut st,
                            &mut frontier,
                            &mut processed,
                            &mut tile_reps,
                            &mut results,
                        )?;
                    }
                }
                CallTarget::Y => {
                    let chunk = y.fetch_chunk(ay.calls)?;
                    st.stats.rows_materialized += chunk_rows_materialized(&chunk);
                    ay.absorb(chunk);
                    let yi = ay.chunks.len() - 1;
                    for xi in 0..ax.chunks.len() {
                        self.process_tile(
                            compiled.as_ref(),
                            &ax.chunks[xi],
                            &ay.chunks[yi],
                            xi,
                            yi,
                            &mut st,
                            &mut frontier,
                            &mut processed,
                            &mut tile_reps,
                            &mut results,
                        )?;
                    }
                }
            }
        }

        if results.len() >= k {
            st.stats.time_to_kth_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        }
        results.sort_by(score_order);
        results.truncate(k);
        st.stats.chunks_fetched = (ax.calls + ay.calls) as u64;
        if let Some(space) = &self.space {
            st.stats.chunks_saved =
                (space.nx.saturating_sub(ax.calls) + space.ny.saturating_sub(ay.calls)) as u64;
        }
        let exhausted = !ax.more && !ay.more;
        Ok(JoinOutcome {
            results,
            calls_x: ax.calls,
            calls_y: ay.calls,
            tiles: processed,
            tile_representatives: tile_reps,
            exhausted,
            degraded: false,
            stats: st.stats,
        })
    }

    /// Processes one tile of the fetched rectangle: skip it when the
    /// full score frontier strictly dominates its representative, join
    /// it otherwise, feeding every emission back into the frontier.
    #[allow(clippy::too_many_arguments)]
    fn process_tile(
        &self,
        compiled: Option<&CompiledPredicates>,
        cx: &CompositeChunk,
        cy: &CompositeChunk,
        xi: usize,
        yi: usize,
        st: &mut RunState,
        frontier: &mut TilePruner,
        processed: &mut Vec<Tile>,
        tile_reps: &mut Vec<f64>,
        results: &mut Vec<CompositeTuple>,
    ) -> Result<(), JoinError> {
        processed.push(Tile::new(xi, yi));
        let rep = cx.representative * cy.representative;
        tile_reps.push(rep);
        if cx.is_empty() || cy.is_empty() {
            return Ok(());
        }
        if frontier.can_skip(rep) {
            st.stats.tiles_pruned += 1;
            st.stats.pairs_skipped += (cx.len() * cy.len()) as u64;
            return Ok(());
        }
        let before = results.len();
        self.join.join_tile(compiled, cx, cy, xi, yi, st, results)?;
        for r in &results[before..] {
            frontier.observe(r.score_product());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::MemoryStream;
    use crate::index::{ColumnarOptions, JoinIndexOptions};
    use seco_model::{
        Adornment, AttributeDef, AttributePath, Comparator, DataType, ScoreDecay, ServiceSchema,
        Tuple, Value,
    };
    use seco_plan::{Completion, Invocation};
    use seco_query::predicate::{ResolvedPredicate, SchemaMap};
    use seco_query::{JoinPredicate, QualifiedPath};

    fn schema(name: &str) -> ServiceSchema {
        ServiceSchema::new(
            name,
            vec![
                AttributeDef::atomic("City", DataType::Text, Adornment::Output),
                AttributeDef::atomic("Score", DataType::Float, Adornment::Ranked),
            ],
        )
        .unwrap()
    }

    fn stream_data(
        atom: &str,
        schema: &ServiceSchema,
        n: usize,
        decay: ScoreDecay,
    ) -> Vec<CompositeTuple> {
        let f = seco_model::ScoringFunction::new(decay, n, 2).unwrap();
        (0..n)
            .map(|i| {
                let t = Tuple::builder(schema)
                    .set("City", Value::Text(format!("city-{}", i % 3)))
                    .set("Score", Value::float(f.score_at(i)))
                    .score(f.score_at(i))
                    .source_rank(i)
                    .build()
                    .unwrap();
                CompositeTuple::single(atom, t)
            })
            .collect()
    }

    fn setup<'a>(
        sa: &'a ServiceSchema,
        sb: &'a ServiceSchema,
    ) -> (Vec<ResolvedPredicate>, SchemaMap<'a>) {
        let preds = vec![ResolvedPredicate::Join(JoinPredicate {
            left: QualifiedPath::new("A", AttributePath::atomic("City")),
            op: Comparator::Eq,
            right: QualifiedPath::new("B", AttributePath::atomic("City")),
        })];
        let mut schemas = SchemaMap::new();
        schemas.insert("A".into(), sa);
        schemas.insert("B".into(), sb);
        (preds, schemas)
    }

    fn exec<'p>(
        preds: &'p [ResolvedPredicate],
        schemas: &'p SchemaMap<'p>,
        k: usize,
    ) -> ParallelJoinExecutor<'p> {
        ParallelJoinExecutor {
            predicates: preds,
            schemas,
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Triangular,
            h: 1,
            k,
            options: JoinIndexOptions::default(),
            columnar: ColumnarOptions::default(),
            pool: None,
        }
    }

    /// The full enumeration, sorted by the canonical score order.
    fn sorted_baseline(
        preds: &[ResolvedPredicate],
        schemas: &SchemaMap<'_>,
        a: &[CompositeTuple],
        b: &[CompositeTuple],
        chunk: usize,
    ) -> Vec<CompositeTuple> {
        let full = ParallelJoinExecutor {
            k: 0,
            completion: Completion::Rectangular,
            ..exec(preds, schemas, 0)
        };
        let mut sx = MemoryStream::new(a.to_vec(), chunk);
        let mut sy = MemoryStream::new(b.to_vec(), chunk);
        let mut out = full.run(&mut sx, &mut sy).unwrap().results;
        out.sort_by(score_order);
        out
    }

    #[test]
    fn top_k_is_the_sorted_baseline_prefix() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let a = stream_data("A", &sa, 24, ScoreDecay::Linear);
        let b = stream_data("B", &sb, 24, ScoreDecay::Quadratic);
        let baseline = sorted_baseline(&preds, &schemas, &a, &b, 4);
        for k in [1usize, 5, 20] {
            let rj = RankJoin {
                join: exec(&preds, &schemas, k),
                space: None,
            };
            let mut sx = MemoryStream::new(a.clone(), 4);
            let mut sy = MemoryStream::new(b.clone(), 4);
            let out = rj.run(&mut sx, &mut sy).unwrap();
            let want: Vec<_> = baseline.iter().take(k).cloned().collect();
            assert_eq!(out.results, want, "k={k}");
            assert!(out.stats.bound_checks > 0);
            assert_eq!(out.stats.chunks_fetched, (out.calls_x + out.calls_y) as u64);
        }
    }

    #[test]
    fn early_stopping_saves_chunks_on_deep_streams() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        // Steep decay: nearly everything relevant is in the first chunks.
        let decay = ScoreDecay::Step {
            h: 2,
            high: 0.95,
            low: 0.02,
        };
        let a = stream_data("A", &sa, 120, decay);
        let b = stream_data("B", &sb, 120, decay);
        let rj = RankJoin {
            join: exec(&preds, &schemas, 5),
            space: None,
        };
        let mut sx = MemoryStream::new(a.clone(), 4);
        let mut sy = MemoryStream::new(b.clone(), 4);
        let out = rj.run(&mut sx, &mut sy).unwrap();
        assert!(
            out.calls_x + out.calls_y < 30,
            "stopped after {} + {} of 60 chunks",
            out.calls_x,
            out.calls_y
        );
        let baseline = sorted_baseline(&preds, &schemas, &a, &b, 4);
        assert_eq!(out.results.as_slice(), &baseline[..5]);
        assert!(out.stats.time_to_kth_us > 0);
    }

    #[test]
    fn chunks_saved_reports_against_the_space() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let a = stream_data("A", &sa, 40, ScoreDecay::Linear);
        let b = stream_data("B", &sb, 40, ScoreDecay::Linear);
        let fx = seco_model::ScoringFunction::new(ScoreDecay::Linear, 40, 4).unwrap();
        let fy = seco_model::ScoringFunction::new(ScoreDecay::Linear, 40, 4).unwrap();
        let rj = RankJoin {
            join: exec(&preds, &schemas, 1),
            space: Some(TileSpace::new(fx, fy)),
        };
        let mut sx = MemoryStream::new(a, 4);
        let mut sy = MemoryStream::new(b, 4);
        let out = rj.run(&mut sx, &mut sy).unwrap();
        assert_eq!(
            out.stats.chunks_saved,
            (20 - out.calls_x - out.calls_y) as u64
        );
        assert!(out.stats.chunks_saved > 0, "k=1 must stop early");
    }

    #[test]
    fn k_zero_is_rejected() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let rj = RankJoin {
            join: exec(&preds, &schemas, 0),
            space: None,
        };
        let mut sx = MemoryStream::new(Vec::new(), 2);
        let mut sy = MemoryStream::new(Vec::new(), 2);
        assert!(matches!(
            rj.run(&mut sx, &mut sy),
            Err(JoinError::BadMethod { .. })
        ));
    }

    #[test]
    fn empty_axis_terminates_immediately() {
        let sa = schema("A1");
        let sb = schema("B1");
        let (preds, schemas) = setup(&sa, &sb);
        let rj = RankJoin {
            join: exec(&preds, &schemas, 3),
            space: None,
        };
        let mut sx = MemoryStream::new(Vec::new(), 2);
        let mut sy = MemoryStream::new(stream_data("B", &sb, 50, ScoreDecay::Linear), 2);
        let out = rj.run(&mut sx, &mut sy).unwrap();
        assert!(out.results.is_empty());
        assert!(
            out.calls_y <= 1,
            "a provably empty X axis must stop Y fetches, got {}",
            out.calls_y
        );
    }
}
