//! The tile space of a binary join (Fig. 4).
//!
//! "We can represent the chunks extracted from two services SX and SY
//! over the axes of a Cartesian plan […]. The Cartesian plan is thus
//! divided into rectangles with nX·nY points […]. We call *tile* t(i,j)
//! the rectangular region that contains the points relative to chunks
//! cXi and cYj. Two tiles are said to be *adjacent* if they have one
//! edge in common."

use std::fmt;

use seco_model::ScoringFunction;

/// One tile: the pairs of chunk `x` of the first service with chunk `y`
/// of the second. Indices are 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tile {
    /// Chunk index on the first service's axis.
    pub x: usize,
    /// Chunk index on the second service's axis.
    pub y: usize,
}

impl Tile {
    /// Creates a tile.
    pub fn new(x: usize, y: usize) -> Self {
        Tile { x, y }
    }

    /// Sum of the chunk indices — the diagonal the tile lies on.
    /// Extraction-optimal methods extract adjacent tiles in
    /// non-decreasing index-sum order (§4.1).
    pub fn index_sum(&self) -> usize {
        self.x + self.y
    }

    /// True when the tiles share an edge.
    pub fn is_adjacent(&self, other: &Tile) -> bool {
        let dx = self.x.abs_diff(other.x);
        let dy = self.y.abs_diff(other.y);
        dx + dy == 1
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t({},{})", self.x, self.y)
    }
}

/// The (bounded) tile space of a join: `nx × ny` chunks with the two
/// services' scoring functions, providing tile representatives and
/// optimality references.
#[derive(Debug, Clone)]
pub struct TileSpace {
    /// Number of chunks on the first axis.
    pub nx: usize,
    /// Number of chunks on the second axis.
    pub ny: usize,
    /// Scoring function of the first service.
    pub fx: ScoringFunction,
    /// Scoring function of the second service.
    pub fy: ScoringFunction,
}

impl TileSpace {
    /// Creates a tile space covering the two services' full result
    /// lists.
    pub fn new(fx: ScoringFunction, fy: ScoringFunction) -> Self {
        TileSpace {
            nx: fx.chunk_count(),
            ny: fy.chunk_count(),
            fx,
            fy,
        }
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.nx * self.ny
    }

    /// True when the tile lies within the space.
    pub fn contains(&self, t: Tile) -> bool {
        t.x < self.nx && t.y < self.ny
    }

    /// The tile's ranking representative: the product of the two
    /// services' scores at the *first tuple* of each chunk ("using the
    /// ranking of the first tuple of the tile as representative for the
    /// entire tile", §4.1).
    pub fn representative(&self, t: Tile) -> f64 {
        self.fx.chunk_head_score(t.x) * self.fy.chunk_head_score(t.y)
    }

    /// All tiles in decreasing representative order (ties broken by
    /// index sum, then x) — the reference order for *global*
    /// extraction-optimality.
    pub fn optimal_order(&self) -> Vec<Tile> {
        let mut tiles: Vec<Tile> = (0..self.nx)
            .flat_map(|x| (0..self.ny).map(move |y| Tile::new(x, y)))
            .collect();
        tiles.sort_by(|a, b| {
            self.representative(*b)
                .partial_cmp(&self.representative(*a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index_sum().cmp(&b.index_sum()))
                .then(a.x.cmp(&b.x))
        });
        // The rank join's stopping bound relies on this order being a
        // true descent: the representative at any suffix position
        // upper-bounds every pair not yet examined.
        debug_assert!(
            tiles
                .windows(2)
                .all(|w| self.representative(w[0]) >= self.representative(w[1])),
            "optimal_order must be monotone non-increasing in representative"
        );
        tiles
    }

    /// The tiles available after `m` calls to the first and `n` calls
    /// to the second service: the `m × n` rectangle ("each rectangular
    /// region of size m·n represents the part of the search space that
    /// can be inspected after performing m request-responses to SX and
    /// n request-responses to SY").
    ///
    /// **Frontier invariant.** Because ranked streams decay along both
    /// axes, every tile *outside* the `m × n` rectangle is dominated by
    /// a tile on its frontier: `representative(t(i,j)) ≤
    /// representative(t(min(i, m−1), min(j, n−1)))`. The frontier row
    /// `t(m, ·)` and column `t(·, n)` therefore bound the best possible
    /// score of any unseen combination — the fact the rank join's
    /// threshold test is built on.
    pub fn available(&self, m: usize, n: usize) -> Vec<Tile> {
        let m = m.min(self.nx);
        let n = n.min(self.ny);
        let mut tiles = Vec::with_capacity(m * n);
        for x in 0..m {
            for y in 0..n {
                tiles.push(Tile::new(x, y));
            }
        }
        tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::ScoreDecay;

    fn space() -> TileSpace {
        let fx = ScoringFunction::new(ScoreDecay::Linear, 40, 10).unwrap();
        let fy = ScoringFunction::new(ScoreDecay::Quadratic, 30, 10).unwrap();
        TileSpace::new(fx, fy)
    }

    #[test]
    fn dimensions_follow_chunk_counts() {
        let s = space();
        assert_eq!((s.nx, s.ny), (4, 3));
        assert_eq!(s.tile_count(), 12);
        assert!(s.contains(Tile::new(3, 2)));
        assert!(!s.contains(Tile::new(4, 0)));
    }

    #[test]
    fn adjacency_is_edge_sharing() {
        let t = Tile::new(1, 1);
        assert!(t.is_adjacent(&Tile::new(0, 1)));
        assert!(t.is_adjacent(&Tile::new(1, 2)));
        assert!(
            !t.is_adjacent(&Tile::new(0, 0)),
            "diagonal tiles share no edge"
        );
        assert!(!t.is_adjacent(&t));
        assert_eq!(t.index_sum(), 2);
        assert_eq!(t.to_string(), "t(1,1)");
    }

    #[test]
    fn representative_decreases_along_both_axes() {
        let s = space();
        assert!(s.representative(Tile::new(0, 0)) >= s.representative(Tile::new(1, 0)));
        assert!(s.representative(Tile::new(0, 0)) >= s.representative(Tile::new(0, 1)));
        assert!(s.representative(Tile::new(1, 1)) >= s.representative(Tile::new(2, 2)));
    }

    #[test]
    fn optimal_order_starts_at_origin_and_is_monotone() {
        let s = space();
        let order = s.optimal_order();
        assert_eq!(order.len(), 12);
        assert_eq!(order[0], Tile::new(0, 0));
        for w in order.windows(2) {
            assert!(
                s.representative(w[0]) >= s.representative(w[1]) - 1e-12,
                "optimal order must be non-increasing"
            );
        }
    }

    #[test]
    fn adjacent_tiles_extract_in_index_sum_order() {
        // §4.1: "If two tiles are adjacent, then the one with smaller
        // index sum is extracted first by extraction-optimal methods."
        let s = space();
        let order = s.optimal_order();
        let pos = |t: Tile| order.iter().position(|x| *x == t).unwrap();
        for x in 0..s.nx {
            for y in 0..s.ny {
                let t = Tile::new(x, y);
                for adj in [(x + 1, y), (x, y + 1)] {
                    let a = Tile::new(adj.0, adj.1);
                    if s.contains(a) {
                        assert!(pos(t) < pos(a), "{t} must precede its larger neighbour {a}");
                    }
                }
            }
        }
    }

    #[test]
    fn available_is_the_m_by_n_rectangle() {
        let s = space();
        let avail = s.available(2, 2);
        assert_eq!(avail.len(), 4);
        assert!(avail.contains(&Tile::new(1, 1)));
        // Clamped by the space bounds.
        assert_eq!(s.available(10, 10).len(), 12);
        assert!(s.available(0, 5).is_empty());
    }
}
