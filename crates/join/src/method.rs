//! The join-method grid (§4.5): topology × invocation × completion.
//!
//! "This classification — topology, invocation and completion strategy —
//! gives rise to eight possible methods for the join of two services.
//! Note that not all combinations that would be theoretically possible
//! also make sense in practice."

use std::fmt;

use seco_plan::{Completion, Invocation};

/// Topology of a join (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Sequential: one service's output feeds the other's input.
    Pipe,
    /// Parallel: the services are invoked independently.
    Parallel,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Pipe => write!(f, "pipe"),
            Topology::Parallel => write!(f, "parallel"),
        }
    }
}

/// One of the eight join methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinMethod {
    /// Pipe or parallel invocation of the two services.
    pub topology: Topology,
    /// Order/frequency of service calls.
    pub invocation: Invocation,
    /// Order of tile processing.
    pub completion: Completion,
}

impl JoinMethod {
    /// The eight canonical methods (merge-scan instantiated at r=1/1).
    pub fn all() -> Vec<JoinMethod> {
        let mut out = Vec::with_capacity(8);
        for topology in [Topology::Pipe, Topology::Parallel] {
            for invocation in [Invocation::NestedLoop, Invocation::merge_scan_even()] {
                for completion in [Completion::Rectangular, Completion::Triangular] {
                    out.push(JoinMethod {
                        topology,
                        invocation,
                        completion,
                    });
                }
            }
        }
        out
    }

    /// Whether the chapter considers the combination practically
    /// sensible (§4.5):
    ///
    /// * merge-scan with rectangular completion "typically makes sense
    ///   for parallel joins";
    /// * "pipe joins are better performed via nested loops with
    ///   rectangular completion";
    /// * combining the diagonal (triangular) completion with nested
    ///   loop contradicts the nested-loop premise of draining the step
    ///   service first — the chapter's example of a method that "makes
    ///   little sense in practice". (The chapter's sentence literally
    ///   names "rectangular completion applied to nested loop", which
    ///   contradicts its own §4.4.1 endorsement of NL+rectangular for
    ///   pipe joins two paragraphs earlier; we read it as the obvious
    ///   slip for *triangular*.)
    pub fn makes_sense(&self) -> bool {
        !(self.invocation == Invocation::NestedLoop && self.completion == Completion::Triangular)
    }

    /// The recommended method for pipe joins: nested loop with
    /// rectangular completion ("retrieving the same number of fetches
    /// from the second service for each tuple in output from the first
    /// service", §4.5).
    pub fn pipe_default() -> JoinMethod {
        JoinMethod {
            topology: Topology::Pipe,
            invocation: Invocation::NestedLoop,
            completion: Completion::Rectangular,
        }
    }

    /// The recommended method for parallel joins of progressively
    /// scored services: even merge-scan with triangular completion
    /// (approximates an extraction-optimal strategy, §4.4.2).
    pub fn parallel_default() -> JoinMethod {
        JoinMethod {
            topology: Topology::Parallel,
            invocation: Invocation::merge_scan_even(),
            completion: Completion::Triangular,
        }
    }
}

impl fmt::Display for JoinMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}",
            self.topology, self.invocation, self.completion
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eight_methods() {
        let all = JoinMethod::all();
        assert_eq!(all.len(), 8);
        // Unique combinations.
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn sensibility_excludes_nl_triangular() {
        let sensible = JoinMethod::all()
            .into_iter()
            .filter(JoinMethod::makes_sense)
            .count();
        assert_eq!(sensible, 6, "NL+triangular is excluded for both topologies");
        assert!(JoinMethod::pipe_default().makes_sense());
        assert!(JoinMethod::parallel_default().makes_sense());
    }

    #[test]
    fn defaults_match_the_chapter_recommendations() {
        let p = JoinMethod::pipe_default();
        assert_eq!(p.topology, Topology::Pipe);
        assert_eq!(p.invocation, Invocation::NestedLoop);
        assert_eq!(p.completion, Completion::Rectangular);
        let q = JoinMethod::parallel_default();
        assert_eq!(q.topology, Topology::Parallel);
        assert_eq!(q.completion, Completion::Triangular);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(JoinMethod::pipe_default().to_string(), "pipe/NL/rect");
        assert_eq!(
            JoinMethod::parallel_default().to_string(),
            "parallel/MS(r=1/1)/tri"
        );
    }
}
