//! Completion strategies (§4.4): in which order loaded tiles are
//! processed.
//!
//! * **Rectangular** (§4.4.1) — "processes all the tiles as soon as the
//!   corresponding tuples are available". With an asymmetric invocation
//!   strategy this degenerates into the "long and thin" rectangles of
//!   Fig. 6 where "each I/O only adds one tile".
//! * **Triangular** (§4.4.2) — processes tiles diagonally: tile
//!   `t(x,y)` is admitted once `x·r2 + y·r1 < c`, where `c` starts at
//!   `r1·r2` and is progressively increased; within a wave, tiles are
//!   processed in non-decreasing index-sum order.
//!
//! [`explore`] simulates an invocation/completion pair over an
//! `nx × ny` tile space and records the call sequence, the tile
//! processing order, and the number of tiles enabled by each call — the
//! raw data behind the Fig. 5/6/7 reproductions (E3–E5).

use seco_plan::{Completion, Invocation};

use crate::error::JoinError;
use crate::strategy::{CallScheduler, CallTarget};
use crate::tile::Tile;

/// Trace of one exploration of a bounded tile space.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// The request-responses, in order.
    pub calls: Vec<CallTarget>,
    /// The tiles, in processing order (covers the whole space).
    pub order: Vec<Tile>,
    /// For each call, how many tiles its arrival enabled for
    /// processing (Fig. 6's degenerate case shows long runs of 1).
    pub tiles_per_call: Vec<usize>,
}

impl Exploration {
    /// Number of calls issued to each service: `(to X, to Y)`.
    pub fn call_counts(&self) -> (usize, usize) {
        let x = self.calls.iter().filter(|t| **t == CallTarget::X).count();
        (x, self.calls.len() - x)
    }
}

/// Simulates the exploration of the full `nx × ny` tile space under an
/// invocation strategy (with step parameter `h` for nested-loop) and a
/// completion strategy, with ratio `r1/r2` governing the triangular
/// wavefront.
pub fn explore(
    invocation: Invocation,
    completion: Completion,
    h: usize,
    nx: usize,
    ny: usize,
) -> Result<Exploration, JoinError> {
    if nx == 0 || ny == 0 {
        return Err(JoinError::BadMethod {
            detail: "tile space must be non-empty".into(),
        });
    }
    let scheduler = CallScheduler::new(invocation, h)?;
    let (r1, r2) = match invocation {
        Invocation::MergeScan { r1, r2 } => (r1 as usize, r2 as usize),
        Invocation::NestedLoop => (1, 1),
    };

    let mut calls = Vec::new();
    let mut order: Vec<Tile> = Vec::with_capacity(nx * ny);
    let mut tiles_per_call = Vec::new();
    let mut processed = vec![false; nx * ny];
    let (mut cx, mut cy) = (0usize, 0usize);
    // Triangular wavefront constant, starting at r1·r2 (§4.4.2).
    let mut c = r1 * r2;

    while order.len() < nx * ny {
        // Pick the next call target, flipping when an axis is drained.
        let mut target = scheduler.next_target(cx, cy);
        if target == CallTarget::X && cx == nx {
            target = CallTarget::Y;
        }
        if target == CallTarget::Y && cy == ny {
            target = CallTarget::X;
        }
        match target {
            CallTarget::X => cx += 1,
            CallTarget::Y => cy += 1,
        }
        calls.push(target);

        // Collect the tiles that become processable, in waves for the
        // triangular strategy.
        let enabled_before = order.len();
        loop {
            let mut wave: Vec<Tile> = Vec::new();
            for x in 0..cx {
                for y in 0..cy {
                    if processed[x * ny + y] {
                        continue;
                    }
                    let admitted = match completion {
                        Completion::Rectangular => true,
                        Completion::Triangular => x * r2 + y * r1 < c,
                    };
                    if admitted {
                        wave.push(Tile::new(x, y));
                    }
                }
            }
            if wave.is_empty() {
                // Triangular: grow the wavefront only if loaded tiles
                // are still waiting behind it.
                let waiting = (0..cx).any(|x| (0..cy).any(|y| !processed[x * ny + y]));
                if completion == Completion::Triangular && waiting {
                    c += 1;
                    continue;
                }
                break;
            }
            wave.sort_by_key(|t| (t.index_sum(), t.x));
            for t in wave {
                processed[t.x * ny + t.y] = true;
                order.push(t);
            }
            if completion == Completion::Rectangular {
                break;
            }
        }
        tiles_per_call.push(order.len() - enabled_before);
    }

    Ok(Exploration {
        calls,
        order,
        tiles_per_call,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::CallTarget::{X, Y};

    #[test]
    fn merge_scan_rectangular_grows_squares() {
        // Fig. 7: with r = 1/1 and rectangular completion the explored
        // region is a square of increasing size (1, 2, 3, 4 …).
        let e = explore(
            Invocation::merge_scan_even(),
            Completion::Rectangular,
            1,
            4,
            4,
        )
        .unwrap();
        assert_eq!(&e.calls[..4], &[X, Y, X, Y]);
        assert_eq!(e.order.len(), 16);
        // After 2 calls: the 1×1 square; after 4: the 2×2 square, etc.
        assert_eq!(e.order[0], Tile::new(0, 0));
        let after4: std::collections::BTreeSet<Tile> = e.order[..4].iter().copied().collect();
        assert_eq!(
            after4,
            [
                Tile::new(0, 0),
                Tile::new(1, 0),
                Tile::new(0, 1),
                Tile::new(1, 1)
            ]
            .into_iter()
            .collect()
        );
        let after9: std::collections::BTreeSet<Tile> = e.order[..9].iter().copied().collect();
        assert!(after9.contains(&Tile::new(2, 2)));
    }

    #[test]
    fn nested_loop_rectangular_drains_rows_first() {
        // Fig. 5a: h=3 — the three high-score X chunks are loaded
        // first, then each Y call completes a 3-tile column.
        let e = explore(Invocation::NestedLoop, Completion::Rectangular, 3, 3, 3).unwrap();
        assert_eq!(e.calls, vec![X, Y, X, X, Y, Y]);
        // First tile after X,Y; X calls add one tile each (the thin
        // rectangle); later Y calls add whole columns of 3.
        assert_eq!(e.tiles_per_call, vec![0, 1, 1, 1, 3, 3]);
        assert_eq!(e.order[0], Tile::new(0, 0));
        assert_eq!(e.order.len(), 9);
    }

    #[test]
    fn degenerate_thin_rectangle_adds_one_tile_per_call() {
        // Fig. 6's disadvantage: a strongly asymmetric strategy makes
        // each I/O add exactly one tile.
        let e = explore(Invocation::NestedLoop, Completion::Rectangular, 8, 8, 1).unwrap();
        let after_start = &e.tiles_per_call[2..];
        assert!(
            after_start.iter().all(|&n| n == 1),
            "every call past the start must add exactly one tile: {:?}",
            e.tiles_per_call
        );
    }

    #[test]
    fn triangular_processes_diagonally() {
        // Fig. 5b: the triangular wavefront admits tiles in
        // non-decreasing x+y order when r=1/1.
        let e = explore(
            Invocation::merge_scan_even(),
            Completion::Triangular,
            1,
            3,
            3,
        )
        .unwrap();
        assert_eq!(e.order.len(), 9);
        assert_eq!(e.order[0], Tile::new(0, 0));
        // The second and third processed tiles lie on the first
        // diagonal.
        assert!(e.order[1].index_sum() <= 1 && e.order[2].index_sum() <= 1);
        // Index sums never jump by more than the wavefront allows: each
        // processed tile is adjacent-or-behind the diagonal of its
        // predecessor.
        for w in e.order.windows(2) {
            assert!(
                w[1].index_sum() <= w[0].index_sum() + 1,
                "consecutive tiles must not jump diagonals: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn triangular_defers_far_corner_tiles() {
        // In a rectangular sweep t(1,1) of a 2×2 space is processed as
        // soon as loaded; triangular waits until the wavefront reaches
        // index sum 2 even though the tile is available earlier.
        let rect = explore(
            Invocation::merge_scan_even(),
            Completion::Rectangular,
            1,
            2,
            2,
        )
        .unwrap();
        let tri = explore(
            Invocation::merge_scan_even(),
            Completion::Triangular,
            1,
            2,
            2,
        )
        .unwrap();
        let pos = |e: &Exploration, t: Tile| e.order.iter().position(|x| *x == t).unwrap();
        assert!(pos(&tri, Tile::new(1, 1)) >= pos(&rect, Tile::new(1, 1)));
        // Both cover the full space exactly once.
        let uniq: std::collections::BTreeSet<Tile> = tri.order.iter().copied().collect();
        assert_eq!(uniq.len(), 4);
    }

    #[test]
    fn exploration_covers_every_tile_exactly_once() {
        for inv in [
            Invocation::NestedLoop,
            Invocation::MergeScan { r1: 2, r2: 3 },
        ] {
            for comp in [Completion::Rectangular, Completion::Triangular] {
                let e = explore(inv, comp, 2, 5, 4).unwrap();
                let uniq: std::collections::BTreeSet<Tile> = e.order.iter().copied().collect();
                assert_eq!(uniq.len(), 20, "{inv:?}/{comp:?} must cover all 20 tiles");
                assert_eq!(e.order.len(), 20);
                let (x, y) = e.call_counts();
                assert_eq!(x, 5, "{inv:?}/{comp:?} calls X once per chunk");
                assert_eq!(y, 4);
            }
        }
    }

    #[test]
    fn empty_space_is_rejected() {
        assert!(explore(Invocation::NestedLoop, Completion::Rectangular, 1, 0, 3).is_err());
    }
}
