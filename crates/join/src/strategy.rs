//! Invocation strategies (§4.3): who gets called next.
//!
//! The [`CallScheduler`] decides, given how many calls each service has
//! already received, which service the next request-response goes to:
//!
//! * **Nested-loop** (§4.3.1) — after the mandatory first call to each
//!   service ("the first two calls […] are always alternated so as to
//!   have at least one tile for starting the exploration", §4.4.1), all
//!   calls go to the step-scored first service until its `h` high-score
//!   chunks are drained, then to the second service.
//! * **Merge-scan** (§4.3.2) — calls alternate in the inter-service
//!   ratio `r = r1/r2`: each round issues `r1` calls to the first and
//!   `r2` to the second service.

use seco_plan::Invocation;

use crate::error::JoinError;

/// Which service the next call targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallTarget {
    /// The first service (X axis of the tile space).
    X,
    /// The second service (Y axis).
    Y,
}

/// Anything that can decide which service the next request-response
/// goes to, given the calls made so far.
///
/// [`CallScheduler`] is the strategy-driven implementation; execution
/// controllers (such as the clock units previewed in §4.3.2 and
/// implemented in `seco-engine`) provide pacing-driven ones. The join
/// executor accepts any pacer via
/// [`crate::executor::ParallelJoinExecutor::run_paced`].
pub trait Pacing {
    /// The target of the next call.
    fn next_target(&mut self, calls_x: usize, calls_y: usize) -> CallTarget;
}

impl Pacing for CallScheduler {
    fn next_target(&mut self, calls_x: usize, calls_y: usize) -> CallTarget {
        CallScheduler::next_target(self, calls_x, calls_y)
    }
}

/// Stateless next-call decision procedure for an invocation strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallScheduler {
    invocation: Invocation,
    /// Step position (in chunks) of the first service; used by
    /// nested-loop to decide when the "step" service is drained.
    h_first: usize,
}

impl CallScheduler {
    /// Creates a scheduler. `h_first` is the first service's step
    /// parameter in chunks; merge-scan ignores it. For nested-loop it
    /// must be positive.
    pub fn new(invocation: Invocation, h_first: usize) -> Result<Self, JoinError> {
        match invocation {
            Invocation::NestedLoop if h_first == 0 => Err(JoinError::BadMethod {
                detail: "nested-loop requires a positive step parameter h".into(),
            }),
            Invocation::MergeScan { r1, r2 } if r1 == 0 || r2 == 0 => Err(JoinError::BadMethod {
                detail: format!("merge-scan ratio must be positive, got {r1}/{r2}"),
            }),
            _ => Ok(CallScheduler {
                invocation,
                h_first,
            }),
        }
    }

    /// The target of the next call given the calls made so far.
    ///
    /// Exhaustion is the caller's concern: when the chosen axis has no
    /// more chunks the caller flips to the other one.
    pub fn next_target(&self, calls_x: usize, calls_y: usize) -> CallTarget {
        // Both strategies begin by loading one chunk from each side.
        if calls_x == 0 {
            return CallTarget::X;
        }
        if calls_y == 0 {
            return CallTarget::Y;
        }
        match self.invocation {
            Invocation::NestedLoop => {
                if calls_x < self.h_first {
                    CallTarget::X
                } else {
                    CallTarget::Y
                }
            }
            Invocation::MergeScan { r1, r2 } => {
                // Position within the current round of r1 + r2 calls.
                let total = calls_x + calls_y;
                let pos = (total as u32) % (r1 + r2);
                if pos < r1 {
                    CallTarget::X
                } else {
                    CallTarget::Y
                }
            }
        }
    }

    /// The full call sequence of length `n` (for golden tests and the
    /// Fig. 5 reproductions), assuming both services are inexhaustible.
    pub fn sequence(&self, n: usize) -> Vec<CallTarget> {
        let mut out = Vec::with_capacity(n);
        let (mut cx, mut cy) = (0, 0);
        for _ in 0..n {
            let t = self.next_target(cx, cy);
            match t {
                CallTarget::X => cx += 1,
                CallTarget::Y => cy += 1,
            }
            out.push(t);
        }
        out
    }
}

/// Derives a cost-based *variable* inter-service ratio (§4.3.2: the
/// ratio "could be fixed (e.g. r = 3/5) or variable"; Chapter 11's
/// methods derive it "based upon service costs").
///
/// The idea: calls should be distributed so both services contribute
/// tuples to the frontier at comparable *cost per tuple*. A service
/// with larger chunks or faster responses deserves proportionally more
/// of the call budget. We set
///
/// ```text
/// r1 / r2  ≈  (chunk_x / time_x) / (chunk_y / time_y)
/// ```
///
/// clamped into small integers (each side ≤ 6) so the resulting
/// schedule stays periodic and predictable.
pub fn cost_based_ratio(
    chunk_x: usize,
    response_ms_x: f64,
    chunk_y: usize,
    response_ms_y: f64,
) -> seco_plan::Invocation {
    let vx = chunk_x as f64 / response_ms_x.max(1e-9);
    let vy = chunk_y as f64 / response_ms_y.max(1e-9);
    let ratio = (vx / vy).max(1e-3);
    // Find the best small-integer approximation r1/r2 with r1, r2 ≤ 6.
    let mut best = (1u32, 1u32);
    let mut best_err = f64::INFINITY;
    for r1 in 1..=6u32 {
        for r2 in 1..=6u32 {
            let err = (r1 as f64 / r2 as f64 - ratio).abs();
            if err < best_err {
                best_err = err;
                best = (r1, r2);
            }
        }
    }
    seco_plan::Invocation::MergeScan {
        r1: best.0,
        r2: best.1,
    }
}

/// Score-frontier tile bound for top-`k` runs.
///
/// A tile's representative — the product of its two chunks' head scores
/// (§4.1) — upper-bounds the score product of every candidate pair in
/// the tile, because ranked streams decay within and across chunks. Once
/// `k` results have been emitted whose score products all exceed a
/// tile's representative, no pair of that tile can enter the top-`k`
/// frontier, so the whole tile can be skipped without changing the
/// result set.
///
/// Under the executor's emit-in-tile-order, stop-at-`k` semantics the
/// frontier can never *fill* while tiles are still being examined (the
/// run breaks the moment the `k`-th result is emitted), so this bound is
/// vacuously exact — it never fires, which the equivalence property
/// tests confirm by comparing pruned and unpruned runs byte-for-byte.
/// It is wired in behind `JoinIndexOptions::tile_prune` as the hook for
/// strategies that buffer and re-rank before emitting. `k = 0` means an
/// unbounded target: nothing is ever skipped.
#[derive(Debug, Clone, Default)]
pub struct TilePruner {
    k: usize,
    /// Min-heap over the `k` highest emitted score products.
    frontier: std::collections::BinaryHeap<std::cmp::Reverse<FrontierScore>>,
}

/// Total order over emitted score products (`f64::total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FrontierScore(f64);

impl Eq for FrontierScore {}

impl Ord for FrontierScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for FrontierScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TilePruner {
    /// Creates a pruner targeting `k` results (`0` = unbounded, never
    /// prunes).
    pub fn new(k: usize) -> Self {
        TilePruner {
            k,
            frontier: std::collections::BinaryHeap::new(),
        }
    }

    /// Records the score product of an emitted result.
    pub fn observe(&mut self, score_product: f64) {
        if self.k == 0 {
            return;
        }
        if self.frontier.len() < self.k {
            self.frontier
                .push(std::cmp::Reverse(FrontierScore(score_product)));
        } else if let Some(std::cmp::Reverse(min)) = self.frontier.peek() {
            if score_product > min.0 {
                self.frontier.pop();
                self.frontier
                    .push(std::cmp::Reverse(FrontierScore(score_product)));
            }
        }
    }

    /// True when a tile with this representative cannot contribute a
    /// top-`k` result: the frontier is full and strictly dominates it.
    pub fn can_skip(&self, representative: f64) -> bool {
        if self.k == 0 || self.frontier.len() < self.k {
            return false;
        }
        match self.frontier.peek() {
            Some(std::cmp::Reverse(min)) => representative < min.0,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CallTarget::{X, Y};

    #[test]
    fn nested_loop_drains_the_step_service_first() {
        // Fig. 5a: after the initial X,Y alternation, all calls go to X
        // until its h=3 chunks are drained, then to Y.
        let s = CallScheduler::new(Invocation::NestedLoop, 3).unwrap();
        assert_eq!(s.sequence(7), vec![X, Y, X, X, Y, Y, Y]);
    }

    #[test]
    fn merge_scan_even_alternates() {
        // Fig. 5b / Fig. 7: r = 1/1 alternates evenly.
        let s = CallScheduler::new(Invocation::merge_scan_even(), 1).unwrap();
        assert_eq!(s.sequence(6), vec![X, Y, X, Y, X, Y]);
    }

    #[test]
    fn merge_scan_respects_the_inter_service_ratio() {
        // r = 3/5: each round of 8 calls sends 3 to X and 5 to Y (the
        // chapter's example ratio r=3/5 in §4.3.2).
        let s = CallScheduler::new(Invocation::MergeScan { r1: 3, r2: 5 }, 1).unwrap();
        let seq = s.sequence(24);
        // The forced X,Y opening replaces one round-scheduled X, so the
        // first round sends 2 X; every steady-state round sends 3 of 8
        // calls to X.
        assert_eq!(&seq[..8], &[X, Y, X, Y, Y, Y, Y, Y]);
        assert_eq!(&seq[8..16], &[X, X, X, Y, Y, Y, Y, Y]);
        assert_eq!(&seq[16..24], &[X, X, X, Y, Y, Y, Y, Y]);
    }

    #[test]
    fn first_two_calls_always_alternate() {
        for inv in [
            Invocation::NestedLoop,
            Invocation::merge_scan_even(),
            Invocation::MergeScan { r1: 5, r2: 1 },
        ] {
            let s = CallScheduler::new(inv, 2).unwrap();
            let seq = s.sequence(2);
            assert_eq!(
                seq,
                vec![X, Y],
                "{inv:?} must open with one call per service"
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(CallScheduler::new(Invocation::NestedLoop, 0).is_err());
        assert!(CallScheduler::new(Invocation::MergeScan { r1: 0, r2: 1 }, 1).is_err());
        assert!(CallScheduler::new(Invocation::MergeScan { r1: 1, r2: 0 }, 1).is_err());
    }

    #[test]
    fn nested_loop_with_h_one_behaves_like_outer_probe() {
        let s = CallScheduler::new(Invocation::NestedLoop, 1).unwrap();
        assert_eq!(s.sequence(5), vec![X, Y, Y, Y, Y]);
    }

    #[test]
    fn tile_pruner_skips_only_dominated_tiles_behind_a_full_frontier() {
        let mut p = TilePruner::new(2);
        assert!(!p.can_skip(0.1), "empty frontier never skips");
        p.observe(0.9);
        assert!(!p.can_skip(0.1), "frontier not full yet");
        p.observe(0.8);
        assert!(p.can_skip(0.5));
        assert!(!p.can_skip(0.8), "ties are not skipped");
        p.observe(0.95); // evicts 0.8
        assert!(p.can_skip(0.85));
        let mut unbounded = TilePruner::new(0);
        unbounded.observe(1.0);
        assert!(!unbounded.can_skip(0.0));
    }

    #[test]
    fn cost_based_ratio_favours_the_cheaper_richer_service() {
        // Equal services -> even alternation.
        assert_eq!(
            cost_based_ratio(10, 100.0, 10, 100.0),
            Invocation::MergeScan { r1: 1, r2: 1 }
        );
        // X has double the chunk size at the same latency: call it twice
        // as often.
        assert_eq!(
            cost_based_ratio(20, 100.0, 10, 100.0),
            Invocation::MergeScan { r1: 2, r2: 1 }
        );
        // X is three times slower at the same chunk size: call it a
        // third as often.
        assert_eq!(
            cost_based_ratio(10, 300.0, 10, 100.0),
            Invocation::MergeScan { r1: 1, r2: 3 }
        );
        // The chapter's example ratio 3/5 arises from matching costs.
        assert_eq!(
            cost_based_ratio(6, 100.0, 10, 100.0),
            Invocation::MergeScan { r1: 3, r2: 5 }
        );
        // Extreme asymmetry clamps at 6.
        assert_eq!(
            cost_based_ratio(100, 1.0, 1, 100.0),
            Invocation::MergeScan { r1: 6, r2: 1 }
        );
    }
}
