//! Pipe joins (§4.2.1): sequential composition of service invocations.
//!
//! "Pipe joins use the fact that the access patterns of certain search
//! services accept input parameters. […] A subset of the attributes of
//! these tuples is the set of join attributes of a pipe join, whose
//! values are passed, or 'piped', to another service that appears later
//! in the sequence."
//!
//! The recommended execution is nested-loop with rectangular completion:
//! the same number of fetches `F` is retrieved from the downstream
//! service for each tuple flowing out of the upstream one (§4.5).

use std::collections::BTreeMap;

use seco_model::{BitMask, ColumnRef, Comparator, CompositeTuple, Symbol, Value};
use seco_query::feasibility::{BindingSource, IoDependency};
use seco_query::predicate::{satisfies_available, ResolvedPredicate, SchemaMap};
use seco_query::{CompiledPredicates, EvalScratch};
use seco_services::invocation::Request;
use seco_services::Service;

use crate::error::JoinError;
use crate::index::{ColumnarOptions, JoinStats};

/// Outcome of a pipe-join stage.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeOutcome {
    /// Extended composites, in input order (then service rank order).
    pub results: Vec<CompositeTuple>,
    /// Request-responses issued to the downstream service.
    pub calls: usize,
    /// Sum of the responses' reported elapsed times, in virtual ms.
    /// Cache hits and coalesced waits report 0, so under a caching
    /// fetch stack this is the stage's *residual* service time.
    pub busy_ms: f64,
    /// True when failure tolerance absorbed at least one service error:
    /// `results` is then a (possibly empty) partial answer.
    pub degraded: bool,
    /// Join-kernel work counters. Pipe stages move `predicate_evals`
    /// and the columnar-plane counters (`columns_scanned`,
    /// `batch_evals`, `rows_materialized`); index counters stay zero.
    pub stats: JoinStats,
}

/// A configured pipe-join stage: extends each input composite with the
/// matching tuples of one downstream service (the query atom `atom`).
///
/// Replaces the previous nine-argument free function with a parameter
/// struct the executors fill in once and run per batch of inputs.
///
/// * `bindings` — the atom's input bindings from the feasibility
///   analysis (constants and pipes);
/// * `query_inputs` — values of the `INPUT` variables;
/// * `fetches` — chunks fetched per input composite (the fetch factor
///   `F` of §5.5);
/// * `keep_first` — keep only the first (best-ranked) surviving result
///   per input composite (the §5.6 `Restaurant` choice);
/// * `tolerate_failures` — graceful degradation: a service error stops
///   the fetch loop for the failing input composite (marking the
///   outcome degraded) instead of aborting the whole stage. Pairs with
///   the resilience middleware: once a breaker opens, the remaining
///   inputs short-circuit instantly and the stage returns whatever was
///   joined before the outage.
pub struct PipeJoin<'a> {
    /// Alias of the query atom being joined in.
    pub atom: &'a str,
    /// Input bindings of the atom (constants and pipes).
    pub bindings: &'a [&'a IoDependency],
    /// Values of the query's `INPUT` variables.
    pub query_inputs: &'a BTreeMap<String, Value>,
    /// Predicates to check on each candidate composite.
    pub predicates: &'a [ResolvedPredicate],
    /// Alias → schema map for value extraction.
    pub schemas: &'a SchemaMap<'a>,
    /// Fetch factor `F` (chunks per input composite), min 1.
    pub fetches: usize,
    /// Keep only the best-ranked surviving result per input.
    pub keep_first: bool,
    /// Absorb service failures into a degraded partial outcome.
    pub tolerate_failures: bool,
    /// Columnar data-plane options. With `batch_eval` on (and
    /// `keep_first` off), whole response chunks are filtered by a
    /// vectorized kernel over the body's typed columns, and chunks with
    /// no survivors never materialize their row view at all.
    pub columnar: ColumnarOptions,
}

impl PipeJoin<'_> {
    /// Runs the stage over a batch of input composites.
    pub fn run(
        &self,
        inputs: &[CompositeTuple],
        service: &dyn Service,
    ) -> Result<PipeOutcome, JoinError> {
        let fetches = self.fetches.max(1);
        let mut results = Vec::new();
        let mut calls = 0usize;
        let mut busy_ms = 0.0f64;
        let mut degraded = false;
        let mut stats = JoinStats::default();

        // Compile the predicate set once per stage run. The compiled
        // evaluator mirrors `satisfies_available` exactly; when the set
        // does not compile (unknown atom, unresolvable path) the
        // interpreted path below keeps the original error behavior.
        let compiled = CompiledPredicates::compile(self.predicates, self.schemas);
        let mut scratch = EvalScratch::default();
        let atom_sym = Symbol::intern(self.atom);
        let mut mask = BitMask::default();

        for input in inputs {
            // Batch plan for this input shape: the input composite is
            // the fixed side, the fetched atom the varying side. Only
            // without `keep_first` — its early exit stops evaluation
            // mid-chunk, which a whole-chunk kernel cannot reproduce.
            let batch_plan =
                if self.columnar.columnar && self.columnar.batch_eval && !self.keep_first {
                    compiled
                        .as_ref()
                        .and_then(|c| c.batch_plan(&input.atoms, std::slice::from_ref(&atom_sym)))
                } else {
                    None
                };
            // Assemble the request for this input composite.
            let mut request = Request::unbound();
            for dep in self.bindings {
                match &dep.source {
                    BindingSource::Constant { operand, op } => {
                        let value = operand
                            .resolve(self.query_inputs)
                            .map_err(JoinError::Query)?;
                        if *op == Comparator::Eq {
                            request = request.bind(dep.input.clone(), value);
                        } else {
                            request = request.constrain(dep.input.clone(), *op, value);
                        }
                    }
                    BindingSource::Piped {
                        from_atom,
                        from_path,
                    } => {
                        let schema = self.schemas.get(from_atom).ok_or_else(|| {
                            JoinError::Query(seco_query::QueryError::UnknownAtom(from_atom.clone()))
                        })?;
                        let tuple = input.component(from_atom).ok_or_else(|| {
                            JoinError::Query(seco_query::QueryError::UnknownAtom(from_atom.clone()))
                        })?;
                        let value = tuple
                            .first_value_at(schema, from_path)
                            .map_err(JoinError::Model)?;
                        request = request.bind(dep.input.clone(), value);
                    }
                }
            }

            // Fetch F chunks (rectangular completion per input tuple).
            'chunks: for c in 0..fetches {
                let resp = match service.fetch(&request.at_chunk(c)) {
                    Ok(resp) => resp,
                    Err(error) if self.tolerate_failures => {
                        // This input composite loses its extension; the
                        // stage carries on with the remaining inputs.
                        let _ = error;
                        degraded = true;
                        break 'chunks;
                    }
                    Err(error) => return Err(JoinError::Service(error)),
                };
                calls += 1;
                busy_ms += resp.elapsed_ms;
                let has_more = resp.has_more();
                let body = resp.body();
                let mut handled = false;
                if let (Some(plan), Some(cc)) = (&batch_plan, body.columns()) {
                    // Body-backed columns only: every plan column must
                    // come off the fetched atom's typed columns.
                    let cols: Option<Vec<ColumnRef<'_>>> = plan
                        .columns()
                        .iter()
                        .map(|(a, f)| if *a == atom_sym { cc.column(*f) } else { None })
                        .collect();
                    if let Some(cols) = cols.filter(|_| !cc.is_empty()) {
                        mask.reset_ones(cc.len());
                        if plan.eval_mask(Some(input), &cols, &mut mask) {
                            stats.predicate_evals += cc.len() as u64;
                            stats.batch_evals += 1;
                            stats.columns_scanned += cols.len() as u64;
                            if !mask.none_set() {
                                // Only surviving chunks pay the row view.
                                if !body.rows_ready() {
                                    stats.rows_materialized += body.len() as u64;
                                }
                                let tuples = body.tuples();
                                for j in mask.iter_ones() {
                                    results.push(input.extend_with(self.atom, tuples[j].clone()));
                                }
                            }
                            handled = true;
                        }
                    }
                }
                if !handled {
                    if body.is_columnar() && !body.rows_ready() && !body.is_empty() {
                        stats.rows_materialized += body.len() as u64;
                    }
                    for tuple in resp.tuples() {
                        let candidate = input.extend_with(self.atom, tuple.clone());
                        stats.predicate_evals += 1;
                        let keep = match &compiled {
                            Some(c) => c.eval(&candidate, &mut scratch)?,
                            None => satisfies_available(self.predicates, &candidate, self.schemas)?,
                        };
                        if keep {
                            results.push(candidate);
                            if self.keep_first {
                                // This input has its extension: stop its
                                // fetch budget here and move to the next
                                // input — no further chunks are issued
                                // for a satisfied composite.
                                break 'chunks;
                            }
                        }
                    }
                }
                if !has_more {
                    break;
                }
            }
        }

        Ok(PipeOutcome {
            results,
            calls,
            busy_ms,
            degraded,
            stats,
        })
    }
}

/// Executes one pipe-join stage (strict mode: any service error aborts).
///
/// Convenience wrapper over [`PipeJoin`] kept for call sites that do
/// not need degradation.
#[allow(clippy::too_many_arguments)]
pub fn pipe_join(
    inputs: &[CompositeTuple],
    atom: &str,
    service: &dyn Service,
    bindings: &[&IoDependency],
    query_inputs: &BTreeMap<String, Value>,
    predicates: &[ResolvedPredicate],
    schemas: &SchemaMap<'_>,
    fetches: usize,
    keep_first: bool,
) -> Result<PipeOutcome, JoinError> {
    PipeJoin {
        atom,
        bindings,
        query_inputs,
        predicates,
        schemas,
        fetches,
        keep_first,
        tolerate_failures: false,
        columnar: ColumnarOptions::default(),
    }
    .run(inputs, service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seco_model::AttributePath;
    use seco_query::builder::running_example;
    use seco_query::feasibility::analyze;
    use seco_query::predicate::resolve_predicates;
    use seco_services::domains::entertainment;
    use seco_services::invocation::Request;

    /// Fetches the first theatre chunk and pipes it into Restaurant.
    fn setup_theatre_inputs(reg: &seco_services::ServiceRegistry) -> Vec<CompositeTuple> {
        let theatre = reg.service("Theatre1").unwrap();
        let req = Request::unbound()
            .bind(
                AttributePath::atomic("UAddress"),
                Value::text("via Golgi 42"),
            )
            .bind(AttributePath::atomic("UCity"), Value::text("Milano"))
            .bind(AttributePath::atomic("UCountry"), Value::text("country-0"));
        use seco_services::Service as _;
        theatre
            .fetch(&req)
            .unwrap()
            .shared_tuples()
            .into_iter()
            .map(|t| CompositeTuple::single("T", t))
            .collect()
    }

    #[test]
    fn pipes_theatre_addresses_into_restaurant() {
        let reg = entertainment::build_registry(3).unwrap();
        let query = running_example();
        let report = analyze(&query, &reg).unwrap();
        let joins = query.expanded_joins(&reg).unwrap();
        let predicates = resolve_predicates(&query, &joins).unwrap();
        let mut schemas = SchemaMap::new();
        for a in &query.atoms {
            schemas.insert(a.alias.clone(), &reg.interface(&a.service).unwrap().schema);
        }
        let inputs = setup_theatre_inputs(&reg);
        assert_eq!(inputs.len(), 5);

        let restaurant = reg.service("Restaurant1").unwrap();
        let bindings = report.bindings_of("R");
        // Join predicates referencing M are skipped (M not present);
        // address equalities hold by construction of the pipe.
        let out = pipe_join(
            &inputs,
            "R",
            restaurant.as_ref(),
            &bindings,
            &query.inputs,
            &predicates,
            &schemas,
            1,
            true,
        )
        .unwrap();
        // One call per theatre.
        assert_eq!(out.calls, 5);
        // keep_first: at most one restaurant per theatre; DinnerPlace
        // selectivity keeps roughly 40% of them.
        assert!(out.results.len() <= 5);
        for r in &out.results {
            assert_eq!(r.arity(), 2);
            let t = r.component("T").unwrap();
            let rr = r.component("R").unwrap();
            let tschema = &reg.interface("Theatre1").unwrap().schema;
            let rschema = &reg.interface("Restaurant1").unwrap().schema;
            // The pipe carried the theatre address into the restaurant
            // lookup (echoed by the service).
            assert_eq!(
                t.first_value_at(tschema, &AttributePath::atomic("TAddress"))
                    .unwrap(),
                rr.first_value_at(rschema, &AttributePath::atomic("UAddress"))
                    .unwrap()
            );
        }
    }

    #[test]
    fn keep_first_caps_results_per_input() {
        let reg = entertainment::build_registry(3).unwrap();
        let query = running_example();
        let report = analyze(&query, &reg).unwrap();
        let predicates = Vec::new(); // no filtering: count raw results
        let mut schemas = SchemaMap::new();
        for a in &query.atoms {
            schemas.insert(a.alias.clone(), &reg.interface(&a.service).unwrap().schema);
        }
        let inputs = setup_theatre_inputs(&reg);
        let restaurant = reg.service("Restaurant1").unwrap();
        let bindings = report.bindings_of("R");

        let all = pipe_join(
            &inputs,
            "R",
            restaurant.as_ref(),
            &bindings,
            &query.inputs,
            &predicates,
            &schemas,
            1,
            false,
        )
        .unwrap();
        let first_only = pipe_join(
            &inputs,
            "R",
            restaurant.as_ref(),
            &bindings,
            &query.inputs,
            &predicates,
            &schemas,
            1,
            true,
        )
        .unwrap();
        assert!(first_only.results.len() <= inputs.len());
        assert!(all.results.len() >= first_only.results.len());
        // Non-empty restaurants return a whole chunk (5) vs 1.
        if !first_only.results.is_empty() {
            assert!(all.results.len() > first_only.results.len());
        }
    }

    #[test]
    fn fetch_factor_multiplies_calls() {
        let reg = entertainment::build_registry(3).unwrap();
        let query = running_example();
        let report = analyze(&query, &reg).unwrap();
        let mut schemas = SchemaMap::new();
        for a in &query.atoms {
            schemas.insert(a.alias.clone(), &reg.interface(&a.service).unwrap().schema);
        }
        let inputs = setup_theatre_inputs(&reg);
        let restaurant = reg.service("Restaurant1").unwrap();
        let bindings = report.bindings_of("R");
        let out = pipe_join(
            &inputs,
            "R",
            restaurant.as_ref(),
            &bindings,
            &query.inputs,
            &[],
            &schemas,
            3,
            false,
        )
        .unwrap();
        // Restaurants hold 5 = one chunk, so has_more=false stops the
        // fetch loop after one call per input; empty answers also stop
        // after one call. Calls stay at one per input here.
        assert_eq!(out.calls, 5);
    }

    #[test]
    fn tolerant_stage_degrades_instead_of_aborting() {
        use seco_services::FaultProfile;
        let reg = entertainment::build_registry(3).unwrap();
        let query = running_example();
        let report = analyze(&query, &reg).unwrap();
        let mut schemas = SchemaMap::new();
        for a in &query.atoms {
            schemas.insert(a.alias.clone(), &reg.interface(&a.service).unwrap().schema);
        }
        let inputs = setup_theatre_inputs(&reg);
        let bindings = report.bindings_of("R");
        // A restaurant service that is hard-down from the start.
        let downed = seco_services::SyntheticService::new(
            entertainment::restaurant_interface(),
            seco_services::DomainMap::new(),
            3,
        )
        .with_fault_profile(FaultProfile {
            outage: Some((0, u64::MAX)),
            ..FaultProfile::none()
        });
        let stage = |tolerate| PipeJoin {
            atom: "R",
            bindings: &bindings,
            query_inputs: &query.inputs,
            predicates: &[],
            schemas: &schemas,
            fetches: 1,
            keep_first: false,
            tolerate_failures: tolerate,
            columnar: ColumnarOptions::default(),
        };
        let strict = stage(false).run(&inputs, &downed);
        assert!(matches!(strict, Err(JoinError::Service(_))));
        let tolerant = stage(true).run(&inputs, &downed).unwrap();
        assert!(tolerant.degraded);
        assert!(tolerant.results.is_empty());
        assert_eq!(
            tolerant.calls, 0,
            "failed fetches are not counted as request-responses"
        );
        // A healthy service through the same stage is not degraded.
        let healthy = reg.service("Restaurant1").unwrap();
        let ok = stage(true).run(&inputs, healthy.as_ref()).unwrap();
        assert!(!ok.degraded);
    }

    #[test]
    fn empty_inputs_produce_no_calls() {
        let reg = entertainment::build_registry(3).unwrap();
        let query = running_example();
        let report = analyze(&query, &reg).unwrap();
        let schemas = SchemaMap::new();
        let restaurant = reg.service("Restaurant1").unwrap();
        let bindings = report.bindings_of("R");
        let out = pipe_join(
            &[],
            "R",
            restaurant.as_ref(),
            &bindings,
            &query.inputs,
            &[],
            &schemas,
            1,
            false,
        )
        .unwrap();
        assert_eq!(out.calls, 0);
        assert!(out.results.is_empty());
    }
}
